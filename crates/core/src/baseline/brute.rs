//! Brute-force facet enumeration: the `O(n^{d+1})` ground-truth oracle.
//!
//! Enumerates every `d`-subset of points and keeps it iff all remaining
//! points lie (weakly) on one side of its hyperplane, with at least one
//! strictly off it. Exact and dimension-generic; usable only for small `n`,
//! which is exactly its job: validating the real algorithms.

use crate::facet::facet_verts;
use crate::output::HullOutput;
use chull_geometry::predicates::orientd;
use chull_geometry::{PointSet, Sign};

/// All hull facets of `pts` by exhaustive search. Requires general position
/// for the output to be a simplicial complex (otherwise coplanar subsets
/// each report a facet).
pub fn hull_output(pts: &PointSet) -> HullOutput {
    let dim = pts.dim();
    let n = pts.len();
    assert!(n > dim, "too few points");
    let mut facets = Vec::new();
    let mut subset: Vec<usize> = (0..dim).collect();
    loop {
        if is_facet(pts, &subset) {
            let ids: Vec<u32> = subset.iter().map(|&i| i as u32).collect();
            facets.push(facet_verts(&ids));
        }
        // Next combination.
        let mut i = dim;
        loop {
            if i == 0 {
                return HullOutput { dim, facets };
            }
            i -= 1;
            if subset[i] != i + n - dim {
                subset[i] += 1;
                for j in (i + 1)..dim {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn is_facet(pts: &PointSet, subset: &[usize]) -> bool {
    let dim = pts.dim();
    let rows: Vec<&[i64]> = subset.iter().map(|&i| pts.point(i)).collect();
    let mut seen: Option<Sign> = None;
    let mut any_strict = false;
    for q in 0..pts.len() {
        if subset.contains(&q) {
            continue;
        }
        let mut all_rows = rows.clone();
        all_rows.push(pts.point(q));
        match orientd(dim, &all_rows) {
            Sign::Zero => {}
            s => {
                any_strict = true;
                match seen {
                    None => seen = Some(s),
                    Some(prev) if prev != s => return false,
                    _ => {}
                }
            }
        }
    }
    any_strict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::monotone_chain;
    use crate::seq::incremental_hull_run;
    use chull_geometry::generators;

    #[test]
    fn matches_monotone_chain_2d() {
        for seed in 0..3u64 {
            let pts2 = generators::disk_2d(14, 1 << 12, seed);
            let ps = PointSet::from_points2(&pts2);
            assert_eq!(
                hull_output(&ps).canonical(),
                monotone_chain::hull_output(&pts2).canonical(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn matches_incremental_3d() {
        for seed in 0..3u64 {
            let pts3 = generators::ball_3d(12, 1 << 12, seed);
            let ps = PointSet::from_points3(&pts3);
            let prepared = crate::context::prepare_points(&ps, seed);
            let run = incremental_hull_run(&prepared);
            assert_eq!(
                hull_output(&prepared).canonical(),
                run.output.canonical(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn simplex_has_d_plus_1_facets() {
        for dim in 2..=5usize {
            let mut rows = vec![vec![0i64; dim]];
            for i in 0..dim {
                let mut r = vec![0i64; dim];
                r[i] = 7;
                rows.push(r);
            }
            let ps = PointSet::from_rows(dim, &rows);
            assert_eq!(hull_output(&ps).num_facets(), dim + 1, "dim {dim}");
        }
    }

    #[test]
    fn matches_incremental_4d_and_5d() {
        for dim in [4usize, 5] {
            let ps = generators::cube_d(dim, 11, 1 << 10, 42);
            let prepared = crate::context::prepare_points(&ps, 1);
            let run = incremental_hull_run(&prepared);
            assert_eq!(
                hull_output(&prepared).canonical(),
                run.output.canonical(),
                "dim {dim}"
            );
        }
    }
}
