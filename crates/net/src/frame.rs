//! Incremental decoding of the length-prefixed frame format (`u32` LE
//! payload length, then the payload) used by the hull wire protocol.
//!
//! The blocking codec in `chull-service::wire` reads one whole frame per
//! call; a reactor instead feeds whatever bytes the socket had into a
//! [`FrameDecoder`] and pulls out zero or more complete frames — a
//! frame may arrive one byte at a time across many readiness events, or
//! many frames may land in one read (pipelining).

use crate::buf::ByteBuf;
use std::io::{self, Read};

/// Why an incremental decode failed; both are protocol violations that
/// should drop the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the decoder's frame cap.
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "declared frame length {n} exceeds cap"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Accumulates socket bytes and yields complete frame payloads.
pub struct FrameDecoder {
    buf: ByteBuf,
    max_frame: usize,
}

impl FrameDecoder {
    /// A decoder that rejects payloads over `max_frame` bytes.
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: ByteBuf::new(),
            max_frame,
        }
    }

    /// Feed raw socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// One non-blocking read from the socket into the decoder;
    /// `Ok(0)` is EOF, `WouldBlock` bubbles up.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        self.buf.read_from(r)
    }

    /// Pop the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; an [`FrameError`] means the
    /// peer is protocol-broken (the connection should be dropped — the
    /// decoder's buffer is poisoned past the bad prefix).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let s = self.buf.as_slice();
        if s.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as usize;
        if len > self.max_frame {
            return Err(FrameError::Oversized(len));
        }
        if s.len() < 4 + len {
            return Ok(None);
        }
        let payload = s[4..4 + len].to_vec();
        self.buf.consume(4 + len);
        Ok(Some(payload))
    }

    /// True when bytes of an incomplete frame are buffered — the signal
    /// the reactor uses to start (and keep) a frame deadline: a peer
    /// that dribbles a header and stalls is holding `has_partial` true
    /// until the deadline reaps it.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Append one encoded frame (prefix + payload) to `out`.
pub fn encode_frame_into(out: &mut ByteBuf, payload: &[u8]) {
    out.extend(&(payload.len() as u32).to_le_bytes());
    out.extend(payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let mut d = FrameDecoder::new(1024);
        let wire = frame(b"abc");
        for (i, &b) in wire.iter().enumerate() {
            assert_eq!(d.next_frame().unwrap(), None, "frame complete early at {i}");
            d.push(&[b]);
        }
        assert_eq!(d.next_frame().unwrap().unwrap(), b"abc");
        assert!(!d.has_partial());
    }

    #[test]
    fn many_frames_in_one_push() {
        let mut d = FrameDecoder::new(1024);
        let mut wire = Vec::new();
        for i in 0..50u8 {
            wire.extend_from_slice(&frame(&[i; 3]));
        }
        wire.extend_from_slice(&frame(b"")[..2]); // trailing partial
        d.push(&wire);
        for i in 0..50u8 {
            assert_eq!(d.next_frame().unwrap().unwrap(), vec![i; 3]);
        }
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.has_partial(), "partial trailing header not tracked");
    }

    #[test]
    fn empty_frames_are_legal() {
        let mut d = FrameDecoder::new(16);
        d.push(&frame(b""));
        assert_eq!(d.next_frame().unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut d = FrameDecoder::new(8);
        d.push(&9u32.to_le_bytes());
        assert_eq!(d.next_frame(), Err(FrameError::Oversized(9)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut out = ByteBuf::new();
        encode_frame_into(&mut out, b"ping");
        encode_frame_into(&mut out, b"");
        let mut d = FrameDecoder::new(64);
        d.push(out.as_slice());
        assert_eq!(d.next_frame().unwrap().unwrap(), b"ping");
        assert_eq!(d.next_frame().unwrap().unwrap(), b"");
        assert_eq!(d.next_frame().unwrap(), None);
    }
}
