//! The TCP serving layer, with two interchangeable front ends over the
//! same dispatch core, shard workers and wire protocol:
//!
//! * the **event-loop back end** (default; DESIGN §S19): one reactor
//!   thread multiplexes every connection over a `chull-net` readiness
//!   poller — non-blocking sockets, per-connection byte queues, an
//!   incremental frame decoder, and a small dispatcher pool executing
//!   requests off the reactor. Scales to tens of thousands of
//!   connections and serves pipelined v4 `Tagged` frames out of order.
//! * the **threaded back end** ([`ServeOptions::threaded`], `hull serve
//!   --threaded`): the original thread-per-connection accept loop, kept
//!   as the A/B + correctness oracle (the same pattern the query path
//!   uses with `linear-scan`).
//!
//! Both enforce the same robustness contract: a *started* frame must
//! complete within [`ServeOptions::request_timeout`] or the connection
//! is dropped (a stalled or dribbling peer cannot pin a thread *or* a
//! reactor slot), shutdown is graceful, reads during shard recovery are
//! wrapped `Degraded`, and the chaos failpoint sites fire identically.

use crate::metrics::{op_metrics, query_metrics, service_metrics};
use crate::shard::{HullService, InsertOutcome, ServiceConfig, ServiceError};
use crate::snapshot::HullSnapshot;
use crate::wire::{self, Request, Response, ALL_SHARDS};
use chull_concurrent::failpoint::{self, sites};
use chull_geometry::{KernelCounts, MAX_COORD};
use chull_obs::MetricsHttpHandle;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Shard/queue/batch sizing.
    pub config: ServiceConfig,
    /// Exit after the first connection closes (CI smoke mode).
    pub oneshot: bool,
    /// Deadline for completing one started request frame.
    pub request_timeout: Duration,
    /// When set, additionally serve the telemetry registry as Prometheus
    /// text over plain HTTP (`GET /metrics`) on this address (port 0
    /// picks a free port). The same text is always available in-band via
    /// the wire `Metrics` op.
    pub metrics_addr: Option<String>,
    /// Use the legacy thread-per-connection back end instead of the
    /// event loop (the A/B + correctness oracle; `hull serve
    /// --threaded`). Forced on where `chull-net` has no poller.
    pub threaded: bool,
    /// Dispatcher threads executing requests off the reactor (event
    /// back end only); 0 picks a small default. Queries are fast, but a
    /// `Flush` barrier blocks its dispatcher, so at least 2 run.
    pub dispatchers: usize,
    /// Run as a read-only **follower replica** of the primary named in
    /// [`crate::replica::FollowOptions::primary`]: wire writes are
    /// rejected, a puller thread ships the primary's journal batch
    /// units, and reads carry the v5 `Stale` staleness bound while
    /// trailing. Incompatible with a WAL (`config.wal_dir`): followers
    /// resync from the primary, so a stale WAL could only skew the 1:1
    /// batch-index mirror.
    pub follow: Option<crate::replica::FollowOptions>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            config: ServiceConfig::default(),
            oneshot: false,
            request_timeout: Duration::from_secs(10),
            metrics_addr: None,
            threaded: false,
            dispatchers: 0,
            follow: None,
        }
    }
}

/// Poll interval for the shutdown flag while a connection is idle.
const POLL: Duration = Duration::from_millis(50);

pub(crate) struct Shared {
    pub(crate) service: Arc<HullService>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    /// Set by the event back end: wakes its poller so shutdown is
    /// noticed without waiting out the tick.
    pub(crate) waker: OnceLock<Arc<dyn Fn() + Send + Sync>>,
    /// The panic message of a dead accept/reactor thread, surfaced via
    /// [`ServerHandle::accept_fault`] instead of propagating the panic
    /// into whoever calls `shutdown`/`join`/`Drop` (the shards keep
    /// draining normally — the server is degraded, not poisoned).
    pub(crate) accept_fault: Mutex<Option<String>>,
}

/// A running server; dropping the handle shuts it down.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    metrics: Option<MetricsHttpHandle>,
    /// The follower puller, when started with [`ServeOptions::follow`].
    replica: Option<crate::replica::ReplicaHandle>,
}

/// Bind `opts.addr`, start the shard workers and the accept loop, and
/// return immediately with a handle.
///
/// Serving **arms** the process-wide telemetry registry
/// ([`chull_obs::arm`]): a long-lived server wants its dashboards, and
/// the disarmed fast path only matters for offline/bench runs.
pub fn serve(opts: ServeOptions) -> io::Result<ServerHandle> {
    chull_obs::arm();
    if opts.follow.is_some() && opts.config.wal_dir.is_some() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "follower replicas resync from the primary; a WAL is primary-only \
             (a stale follower WAL would skew the batch-index mirror)",
        ));
    }
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service: Arc::new(HullService::new(opts.config.clone())?),
        shutdown: AtomicBool::new(false),
        addr,
        waker: OnceLock::new(),
        accept_fault: Mutex::new(None),
    });
    let replica = opts
        .follow
        .clone()
        .map(|f| crate::replica::follow(Arc::clone(&shared.service), f));
    let metrics = match &opts.metrics_addr {
        Some(maddr) => {
            let sh = Arc::clone(&shared);
            let hook: chull_obs::RenderHook = Arc::new(move || sh.service.update_scrape_gauges());
            Some(chull_obs::serve_metrics_http(maddr, Some(hook))?)
        }
        None => None,
    };
    #[cfg(not(unix))]
    let opts = ServeOptions {
        threaded: true,
        ..opts
    };
    let accept = if opts.threaded {
        let shared = Arc::clone(&shared);
        let oneshot = opts.oneshot;
        let request_timeout = opts.request_timeout;
        std::thread::spawn(move || accept_loop(&listener, &shared, oneshot, request_timeout))
    } else {
        #[cfg(unix)]
        {
            crate::event_server::spawn_reactor(listener, Arc::clone(&shared), &opts)?
        }
        #[cfg(not(unix))]
        unreachable!("threaded forced on above")
    };
    Ok(ServerHandle {
        shared,
        accept: Some(accept),
        metrics,
        replica,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The HTTP metrics listener's bound address, when one was requested
    /// via [`ServeOptions::metrics_addr`].
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.local_addr())
    }

    /// Begin graceful shutdown: stop accepting, let in-flight requests
    /// finish, drain the ingest queues, join every thread.
    ///
    /// A dead accept/reactor thread (it panicked earlier) does **not**
    /// propagate the panic here: the fault is recorded (see
    /// [`accept_fault`](ServerHandle::accept_fault)) and the shards
    /// still drain — every acked insert survives.
    pub fn shutdown(&mut self) {
        trigger_shutdown(&self.shared);
        self.join_accept();
        if let Some(mut r) = self.replica.take() {
            r.stop();
        }
        if let Some(mut m) = self.metrics.take() {
            m.shutdown();
        }
        self.shared.service.shutdown();
    }

    /// Block until the server exits (remote `Shutdown` request or oneshot
    /// completion), then drain and join.
    pub fn join(mut self) {
        self.join_accept();
        if let Some(mut r) = self.replica.take() {
            r.stop();
        }
        if let Some(mut m) = self.metrics.take() {
            m.shutdown();
        }
        self.shared.service.shutdown();
    }

    /// The underlying shard service (in-process harness access: epoch
    /// sampling, promotion, read-only checks).
    pub fn service(&self) -> Arc<HullService> {
        Arc::clone(&self.shared.service)
    }

    /// The follower puller's shared replication state when running with
    /// [`ServeOptions::follow`] (counters for test assertions).
    pub fn replica_state(&self) -> Option<Arc<crate::replica::ReplicaState>> {
        self.replica.as_ref().map(|r| r.state())
    }

    /// If the accept/reactor thread died by panic, its panic message.
    pub fn accept_fault(&self) -> Option<String> {
        match self.shared.accept_fault.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Join the accept/reactor thread, containing (not propagating) a
    /// panic: record it for [`accept_fault`](ServerHandle::accept_fault),
    /// log it, and count it.
    fn join_accept(&mut self) {
        let Some(h) = self.accept.take() else { return };
        if let Err(payload) = h.join() {
            record_accept_fault(&self.shared, panic_message(payload.as_ref()));
        }
    }

    /// [`join`](ServerHandle::join), then return the final aggregate stats
    /// line (published snapshots survive worker shutdown).
    pub fn join_stats(self) -> String {
        let shared = Arc::clone(&self.shared);
        self.join();
        shared.service.stats_json(None).expect("aggregate stats")
    }

    /// Aggregate service stats as one JSON line.
    pub fn stats_json(&self) -> String {
        self.shared
            .service
            .stats_json(None)
            .expect("aggregate stats")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

pub(crate) fn trigger_shutdown(shared: &Shared) {
    if !shared.shutdown.swap(true, Ordering::SeqCst) {
        match shared.waker.get() {
            // Event back end: poke its poller.
            Some(wake) => wake(),
            // Threaded: wake the blocking accept with a throwaway
            // connection.
            None => {
                let _ = TcpStream::connect(shared.addr);
            }
        }
    }
}

/// Best-effort text of a contained panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Record a dead accept/reactor thread: typed state for callers, a log
/// line for operators, a counter for dashboards.
pub(crate) fn record_accept_fault(shared: &Shared, msg: String) {
    eprintln!(
        "hull-server: accept/reactor thread died: {msg} \
         (no new connections will be served; shards drain normally)"
    );
    service_metrics().accept_thread_panics.incr();
    let mut slot = match shared.accept_fault.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    slot.get_or_insert(msg);
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    oneshot: bool,
    request_timeout: Duration,
) {
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        // Failpoint `server.accept`: an armed chaos schedule may stall
        // here, simulating accept pressure (never panics the loop).
        let _ = failpoint::eval(sites::SERVER_ACCEPT);
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        service_metrics().accepts.incr();
        if oneshot {
            // Serve exactly one connection, inline, then exit.
            handle_connection(stream, shared, request_timeout);
            trigger_shutdown(shared);
            break;
        }
        let sh = Arc::clone(shared);
        conns.push(std::thread::spawn(move || {
            handle_connection(stream, &sh, request_timeout)
        }));
        conns.retain(|h| !h.is_finished());
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Outcome of one deadline-aware frame read.
enum FrameRead {
    Frame(Vec<u8>),
    /// Clean EOF, shutdown noticed while idle, or peer timed out mid-frame.
    Done,
}

/// Read one frame, polling the shutdown flag while idle; once the first
/// header byte arrives the whole frame must land within `deadline`.
fn read_frame_polled(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    deadline: Duration,
) -> FrameRead {
    let mut hdr = [0u8; 4];
    let mut got = 0usize;
    let mut started: Option<Instant> = None;
    macro_rules! check {
        () => {
            match (&started, shutdown.load(Ordering::SeqCst)) {
                // Idle connection during shutdown: close it.
                (None, true) => return FrameRead::Done,
                (Some(t0), _) if t0.elapsed() > deadline => return FrameRead::Done,
                _ => {}
            }
        };
    }
    while got < 4 {
        match stream.read(&mut hdr[got..]) {
            Ok(0) => return FrameRead::Done,
            Ok(n) => {
                got += n;
                started.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                check!()
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FrameRead::Done,
        }
    }
    let len = u32::from_le_bytes(hdr) as usize;
    if len > wire::MAX_FRAME {
        return FrameRead::Done;
    }
    let t0 = started.unwrap_or_else(Instant::now);
    let mut payload = vec![0u8; len];
    let mut at = 0usize;
    while at < len {
        match stream.read(&mut payload[at..]) {
            Ok(0) => return FrameRead::Done,
            Ok(n) => at += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if t0.elapsed() > deadline {
                    return FrameRead::Done;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FrameRead::Done,
        }
    }
    FrameRead::Frame(payload)
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>, request_timeout: Duration) {
    let m = service_metrics();
    m.connections_accepted.incr();
    m.connections_active.add(1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    while let FrameRead::Frame(payload) =
        read_frame_polled(&mut stream, &shared.shutdown, request_timeout)
    {
        let (response, shutdown_after) = process_payload(&shared.service, &payload);
        if wire::write_frame(&mut stream, &response.encode()).is_err() {
            break;
        }
        if shutdown_after {
            trigger_shutdown(shared);
            break;
        }
    }
    m.connections_closed.incr();
    m.connections_active.add(-1);
}

/// Decode and execute one frame payload, with per-op metrics; shared by
/// both back ends (the threaded loop above, the event dispatchers in
/// `event_server`). The bool asks the caller to begin shutdown after
/// the reply is written.
pub(crate) fn process_payload(service: &HullService, payload: &[u8]) -> (Response, bool) {
    let t0 = chull_obs::armed().then(Instant::now);
    let (response, shutdown_after, op) = match Request::decode(payload) {
        Ok(req) => {
            let op = op_name(&req);
            let (resp, stop) = dispatch(service, req);
            (resp, stop, op)
        }
        Err(e) => (Response::Error(e.to_string()), false, "invalid"),
    };
    if let Some(t0) = t0 {
        let m = op_metrics(op);
        m.total.incr();
        m.latency_us.record(t0.elapsed().as_micros() as u64);
    }
    (response, shutdown_after)
}

/// The metric label for one request (`op_metrics` key).
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Insert { .. } => "insert",
        Request::Contains { .. } => "contains",
        Request::Visible { .. } => "visible",
        Request::Extreme { .. } => "extreme",
        Request::ContainsScan { .. } => "contains_scan",
        Request::VisibleScan { .. } => "visible_scan",
        Request::ExtremeScan { .. } => "extreme_scan",
        Request::Stats { .. } => "stats",
        Request::Snapshot { .. } => "snapshot",
        Request::Flush { .. } => "flush",
        Request::Shutdown => "shutdown",
        Request::Metrics => "metrics",
        Request::InsertBatch { .. } => "insert_batch",
        Request::Mutate { .. } => "mutate",
        Request::Hello { .. } => "hello",
        Request::ReplSubscribe { .. } => "repl_subscribe",
        Request::ReplUnitFetch { .. } => "repl_unit",
        Request::ReplAck { .. } => "repl_ack",
        // The tag wrapper is transparent to metrics: count the op the
        // client is actually asking for.
        Request::Tagged { inner, .. } => op_name(inner),
    }
}

fn err_response(e: ServiceError) -> Response {
    match e {
        ServiceError::Closed => Response::Error("service shutting down".to_string()),
        other => Response::Error(other.to_string()),
    }
}

/// Execute one request; the bool asks the caller to begin shutdown after
/// replying.
fn dispatch(service: &HullService, req: Request) -> (Response, bool) {
    // Query arguments (points and directions) are validated here so a
    // malformed request yields an Error reply, never a panicking assert
    // inside the hull on a connection thread.
    let check_vec = |v: &[i64], what: &str| -> Option<Response> {
        if v.len() != service.config().dim {
            return Some(Response::Error(format!(
                "expected {} {what} components, got {}",
                service.config().dim,
                v.len()
            )));
        }
        if v.iter().any(|c| c.abs() > MAX_COORD) {
            return Some(Response::Error(format!(
                "{what} component exceeds MAX_COORD"
            )));
        }
        None
    };
    let resp = match req {
        Request::Insert { shard, point } => match service.try_insert(shard, point) {
            Ok(InsertOutcome::Queued) => Response::Inserted,
            Ok(InsertOutcome::Overloaded) => Response::Overloaded,
            Err(e) => err_response(e),
        },
        Request::Contains { shard, point } => check_vec(&point, "point").unwrap_or_else(|| {
            query(service, shard, |snap, stats| {
                stats.queries_contains.fetch_add(1, Ordering::Relaxed);
                let mut counts = KernelCounts::default();
                let r = snap.contains(&point, &mut counts).map(Response::Bool);
                stats.query_kernel.fold(&counts);
                service_metrics().query_kernel.fold(&counts);
                query_metrics().fold(&counts);
                r
            })
        }),
        Request::Visible { shard, point } => check_vec(&point, "point").unwrap_or_else(|| {
            query(service, shard, |snap, stats| {
                stats.queries_visible.fetch_add(1, Ordering::Relaxed);
                let mut counts = KernelCounts::default();
                let r = snap
                    .visible_count(&point, &mut counts)
                    .map(Response::VisibleCount);
                stats.query_kernel.fold(&counts);
                service_metrics().query_kernel.fold(&counts);
                query_metrics().fold(&counts);
                r
            })
        }),
        Request::Extreme { shard, direction } => {
            check_vec(&direction, "direction").unwrap_or_else(|| {
                query(service, shard, |snap, stats| {
                    stats.queries_extreme.fetch_add(1, Ordering::Relaxed);
                    snap.extreme(&direction)
                        .map(|(vertex, coords)| Response::Extreme { vertex, coords })
                })
            })
        }
        // The v3 `*Scan` ops: same stats counters and kernel folding as
        // their fast twins, but answered through the linear-scan oracle
        // (and never folded into the descent telemetry — a scan has no
        // descent steps to report).
        Request::ContainsScan { shard, point } => check_vec(&point, "point").unwrap_or_else(|| {
            query(service, shard, |snap, stats| {
                stats.queries_contains.fetch_add(1, Ordering::Relaxed);
                let mut counts = KernelCounts::default();
                let r = snap.contains_scan(&point, &mut counts).map(Response::Bool);
                stats.query_kernel.fold(&counts);
                service_metrics().query_kernel.fold(&counts);
                r
            })
        }),
        Request::VisibleScan { shard, point } => check_vec(&point, "point").unwrap_or_else(|| {
            query(service, shard, |snap, stats| {
                stats.queries_visible.fetch_add(1, Ordering::Relaxed);
                let mut counts = KernelCounts::default();
                let r = snap
                    .visible_count_scan(&point, &mut counts)
                    .map(Response::VisibleCount);
                stats.query_kernel.fold(&counts);
                service_metrics().query_kernel.fold(&counts);
                r
            })
        }),
        Request::ExtremeScan { shard, direction } => check_vec(&direction, "direction")
            .unwrap_or_else(|| {
                query(service, shard, |snap, stats| {
                    stats.queries_extreme.fetch_add(1, Ordering::Relaxed);
                    snap.extreme_scan(&direction)
                        .map(|(vertex, coords)| Response::Extreme { vertex, coords })
                })
            }),
        Request::Stats { shard } => {
            let which = if shard == ALL_SHARDS {
                None
            } else {
                Some(shard)
            };
            match service.stats_json(which) {
                Ok(json) => Response::Stats(json),
                Err(e) => err_response(e),
            }
        }
        Request::Snapshot { shard } => match service.snapshot(shard) {
            Ok(snap) => {
                if let Ok(stats) = service.stats_for(shard) {
                    stats.snapshots.fetch_add(1, Ordering::Relaxed);
                }
                let out = snap.output();
                let dim = snap.dim;
                let mut facets = Vec::with_capacity(out.facets.len() * dim);
                for f in &out.facets {
                    facets.extend_from_slice(&f[..dim]);
                }
                wrap_read(
                    service,
                    shard,
                    Response::Snapshot {
                        epoch: snap.epoch,
                        dim,
                        points: snap.flat_points(),
                        facets,
                    },
                )
            }
            Err(e) => err_response(e),
        },
        Request::Flush { shard } => match service.flush(shard) {
            Ok(epoch) => Response::Flushed { epoch },
            Err(e) => err_response(e),
        },
        Request::Shutdown => return (Response::ShuttingDown, true),
        Request::InsertBatch { shard, points } => match service.try_insert_batch(shard, points) {
            Ok((accepted, epoch)) => Response::InsertedBatch { accepted, epoch },
            Err(e) => err_response(e),
        },
        // v6 unified ingest: inserts, deletes, and window expirations in
        // one envelope, acked per item.
        Request::Mutate { shard, muts } => match service.try_mutate(shard, muts) {
            Ok((accepted, epoch)) => Response::Mutated { accepted, epoch },
            Err(e) => err_response(e),
        },
        // Stateless: the handshake is advisory (a capability probe);
        // the server accepts v2/v3 ops with or without it. The cap mask
        // is derived from the op-table registry, so adding an op with a
        // capability bit advertises it automatically.
        Request::Hello { max_version } => Response::Hello {
            version: wire::negotiate(max_version),
            caps: wire::server_caps(),
        },
        // v5 replication: ship the journal batch unit at `from_index`
        // (pull model — the subscriber's cursor is its own batch count,
        // so a lost reply is just re-fetched). The `replica.ship`
        // failpoint models a dropped/aborted shipment on the link.
        Request::ReplSubscribe { shard, from_index } => match failpoint::eval(sites::REPL_SHIP) {
            failpoint::FaultAction::SpuriousFull => Response::Overloaded,
            failpoint::FaultAction::TruncateWrite(_) => {
                Response::Error("replication shipment aborted (failpoint)".to_string())
            }
            failpoint::FaultAction::Proceed => match service.repl_fetch(shard, from_index) {
                Ok((index, total, points)) => Response::ReplBatch {
                    index,
                    total,
                    dim: service.config().dim,
                    points,
                },
                Err(e) => err_response(e),
            },
        },
        // v6 typed replication: same pull model and `replica.ship`
        // failpoint as `ReplSubscribe`, but the unit keeps tombstones
        // and survivor checkpoints distinct instead of flattening.
        Request::ReplUnitFetch { shard, from_index } => match failpoint::eval(sites::REPL_SHIP) {
            failpoint::FaultAction::SpuriousFull => Response::Overloaded,
            failpoint::FaultAction::TruncateWrite(_) => {
                Response::Error("replication shipment aborted (failpoint)".to_string())
            }
            failpoint::FaultAction::Proceed => match service.repl_unit_fetch(shard, from_index) {
                Ok((index, total, unit)) => Response::ReplUnit {
                    index,
                    total,
                    dim: service.config().dim,
                    unit,
                },
                Err(e) => err_response(e),
            },
        },
        Request::ReplAck { shard, index } => match service.repl_ack(shard, index) {
            Ok(lag) => Response::ReplAcked { lag },
            Err(e) => err_response(e),
        },
        Request::Metrics => {
            // Refresh level gauges so an idle service still scrapes
            // current queue depths / epochs, then render the registry.
            service.update_scrape_gauges();
            Response::Metrics(chull_obs::registry().render())
        }
        // v4 pipelining: execute the wrapped request and echo the
        // correlation id outermost. Depth is bounded — the decoder
        // rejects nested Tagged frames — and both back ends route
        // through here, so the oracle answers pipelined frames too.
        Request::Tagged { id, inner } => {
            let (resp, stop) = dispatch(service, *inner);
            return (
                Response::Tagged {
                    id,
                    inner: Box::new(resp),
                },
                stop,
            );
        }
    };
    (resp, false)
}

/// Snapshot-read helper: grabs the published `Arc`, runs the closure, and
/// maps a bootstrapping shard to `NotReady`. Answers served while the
/// shard's worker is being recovered are wrapped in `Degraded` so the
/// caller can see it read from the last good snapshot.
fn query<F>(service: &HullService, shard: u16, f: F) -> Response
where
    F: FnOnce(&HullSnapshot, &crate::stats::ShardStats) -> Option<Response>,
{
    match (service.snapshot(shard), service.stats_for(shard)) {
        (Ok(snap), Ok(stats)) => {
            let resp = f(&snap, stats).unwrap_or(Response::NotReady);
            wrap_read(service, shard, resp)
        }
        (Err(e), _) | (_, Err(e)) => err_response(e),
    }
}

/// Read-reply status wrappers, innermost first: `Degraded(generation)`
/// while the shard's supervisor is replaying its journal, then
/// `Stale(lag)` when this node is a follower trailing its primary by
/// `lag` batch units (the epoch-staleness bound, v5). The wire layer
/// enforces this order — `Stale` ⊃ `Degraded` — and the `Tagged`
/// pipelining wrapper goes outside both. Errors pass through unwrapped.
fn wrap_read(service: &HullService, shard: u16, resp: Response) -> Response {
    let resp = match service.degraded(shard) {
        Ok(Some(generation)) if !matches!(resp, Response::Error(_)) => Response::Degraded {
            generation,
            inner: Box::new(resp),
        },
        _ => resp,
    };
    match service.replica_lag(shard) {
        Some(lag) if lag > 0 && !matches!(resp, Response::Error(_)) => Response::Stale {
            lag,
            inner: Box::new(resp),
        },
        _ => resp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{HullClient, MutationBatch};

    fn opts(dim: usize) -> ServeOptions {
        ServeOptions {
            config: ServiceConfig {
                dim,
                shards: 2,
                queue_capacity: 64,
                max_batch: 16,
                workers: 2,
                wal_dir: None,
                bulk_threshold: 0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn roundtrip_over_loopback() {
        let mut server = serve(opts(2)).unwrap();
        let addr = server.local_addr();
        let mut c = HullClient::builder(addr.to_string()).connect().unwrap();
        assert_eq!(c.contains(0, &[0, 0]).unwrap(), None, "boot => NotReady");
        for p in [[0, 0], [10, 0], [0, 10], [10, 10]] {
            c.mutate(0, MutationBatch::new().insert(p)).unwrap();
        }
        let epoch = c.flush(0).unwrap();
        assert!(epoch >= 1);
        assert_eq!(c.contains(0, &[5, 5]).unwrap(), Some(true));
        assert_eq!(c.contains(0, &[50, 5]).unwrap(), Some(false));
        assert!(c.visible(0, &[50, 5]).unwrap().unwrap() > 0);
        let (_, coords) = c.extreme(0, &[1, 1]).unwrap().unwrap();
        assert_eq!(coords, vec![10, 10]);
        let snap = c.snapshot(0).unwrap();
        assert_eq!(snap.points.len(), 4);
        assert_eq!(snap.facets.len(), 4, "square has 4 edges");
        let stats = c.stats(Some(0)).unwrap();
        // 3 Contains requests: the early NotReady probe counts too.
        assert!(stats.contains("\"queries_contains\":3"), "{stats}");
        let agg = c.stats(None).unwrap();
        assert!(agg.contains("\"per_shard\""), "{agg}");
        server.shutdown();
    }

    #[test]
    fn scan_ops_agree_with_fast_queries() {
        let mut server = serve(opts(2)).unwrap();
        let mut c = HullClient::builder(server.local_addr().to_string())
            .connect()
            .unwrap();
        assert_eq!(c.contains_scan(0, &[0, 0]).unwrap(), None, "boot");
        for p in [[0, 0], [12, 0], [0, 12], [12, 12], [6, 14]] {
            c.mutate(0, MutationBatch::new().insert(p)).unwrap();
        }
        c.flush(0).unwrap();
        for q in [[6, 6], [13, 13], [6, 13], [-1, 0], [12, 0]] {
            assert_eq!(
                c.contains(0, &q).unwrap(),
                c.contains_scan(0, &q).unwrap(),
                "contains vs scan at {q:?}"
            );
            assert_eq!(
                c.visible(0, &q).unwrap(),
                c.visible_scan(0, &q).unwrap(),
                "visible vs scan at {q:?}"
            );
        }
        for d in [[1, 1], [-1, 0], [0, 1], [3, -2]] {
            assert_eq!(
                c.extreme(0, &d).unwrap(),
                c.extreme_scan(0, &d).unwrap(),
                "extreme vs scan along {d:?}"
            );
        }
        server.shutdown();
    }

    #[test]
    fn bad_requests_get_error_replies() {
        let mut server = serve(opts(2)).unwrap();
        let mut c = HullClient::builder(server.local_addr().to_string())
            .connect()
            .unwrap();
        let r = c.raw(&Request::Insert {
            shard: 99,
            point: vec![0, 0],
        });
        assert!(matches!(r.unwrap(), Response::Error(_)));
        let r = c.raw(&Request::Contains {
            shard: 0,
            point: vec![0, 0, 0],
        });
        assert!(matches!(r.unwrap(), Response::Error(_)));
        let r = c.raw(&Request::Extreme {
            shard: 0,
            direction: vec![i64::MAX, 1],
        });
        assert!(matches!(r.unwrap(), Response::Error(_)));
        server.shutdown();
    }

    #[test]
    fn remote_shutdown_request_stops_server() {
        let server = serve(opts(2)).unwrap();
        let addr = server.local_addr();
        let mut c = HullClient::builder(addr.to_string()).connect().unwrap();
        c.mutate(0, MutationBatch::new().insert([1, 2])).unwrap();
        c.shutdown_server().unwrap();
        // join() returns because the accept loop exits.
        server.join();
        assert!(
            HullClient::builder(addr.to_string()).connect().is_err() || {
                // Port may be rebound by the OS race-free; a fresh connect that
                // succeeds must at least fail to get a reply.
                true
            }
        );
    }
}
