//! The parallel randomized incremental convex hull — **Algorithm 3** of the
//! paper — plus a level-synchronous variant measuring rounds.
//!
//! The asynchronous implementation ([`parallel_hull`]) runs `ProcessRidge`
//! as dynamically spawned tasks on a scoped task pool
//! ([`chull_concurrent::pool`], the binary-forking model of Theorem 5.5),
//! pairing the two facets of each ridge through a
//! concurrent `InsertAndSet`/`GetValue` multimap (Algorithms 4/5, or the
//! growable locked variant). The level-synchronous implementation
//! ([`rounds::rounds_hull`]) processes ridges in waves, measuring the
//! synchronous round count of the CRCW PRAM formulation (Theorem 5.4).
//!
//! Both perform *exactly the same* facet creations and visibility tests as
//! the sequential Algorithm 2 on the same insertion order — the paper's
//! central work-efficiency claim, asserted in the integration tests.

pub(crate) mod batch;
pub mod rounds;
mod trace;

pub use trace::TraceEvent;

use crate::context::{initial_simplex, HullContext};
use crate::facet::{facet_verts, join_ridge, ridge_omitting, Facet, FacetVerts, RidgeKey};
use crate::output::HullOutput;
use crate::seq::merge_conflicts_into;
use crate::stats::HullStats;
use chull_concurrent::pool;
use chull_concurrent::{
    AtomicMax, ConcurrentArena, RidgeMapCas, RidgeMapLocked, RidgeMapTas, RidgeMultimap,
    StripedCounter,
};
use chull_geometry::{KernelCounts, PointSet};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread scratch for conflict-list merges: `ProcessRidge` tasks
    /// reuse one buffer per worker instead of allocating per facet.
    static MERGE_SCRATCH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Which `InsertAndSet` engine pairs the two facets of each ridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Sharded lock-based map (growable; the general-dimension default).
    Locked,
    /// The paper's Algorithm 4: lock-free linear probing with
    /// `CompareAndSwap`. Fixed capacity `capacity_factor * d * n`.
    Cas {
        /// Slots reserved per point per dimension.
        capacity_factor: usize,
    },
    /// The paper's Appendix A Algorithm 5: `TestAndSet` only.
    Tas {
        /// Slots reserved per point per dimension.
        capacity_factor: usize,
    },
}

/// Options for [`parallel_hull`].
#[derive(Debug, Clone, Copy)]
pub struct ParOptions {
    /// Ridge multimap engine.
    pub map: MapKind,
    /// Record a replay trace of every `ProcessRidge` action (Figure 1 /
    /// E4); only sensible for small inputs.
    pub record_trace: bool,
}

impl Default for ParOptions {
    fn default() -> ParOptions {
        ParOptions {
            map: MapKind::Locked,
            record_trace: false,
        }
    }
}

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParRun {
    /// The final hull (facets alive when the computation quiesced).
    pub output: HullOutput,
    /// Instrumentation (includes `recursion_depth`, Theorem 5.3).
    pub stats: HullStats,
    /// Every facet ever created (unordered across threads).
    pub created: Vec<FacetVerts>,
    /// Trace events, if requested.
    pub trace: Vec<TraceEvent>,
}

const ALIVE: bool = false; // AtomicBool false = alive, true = dead

struct ParFacet {
    facet: Facet,
    dead: AtomicBool,
    /// Pivot point whose insertion created this facet (`u32::MAX` for
    /// seed facets). The batch engine orders created facets by it.
    creator: u32,
    /// Arena ids of the support pair `{t1, t2}` (`u32::MAX` for seeds);
    /// `parents[0]` is the replaced facet (the earlier pivot's side).
    parents: [u32; 2],
}

struct Shared<'a, M> {
    ctx: HullContext<'a>,
    arena: ConcurrentArena<ParFacet>,
    map: M,
    tests: StripedCounter,
    filter_hits: StripedCounter,
    i128_fallbacks: StripedCounter,
    bigint_fallbacks: StripedCounter,
    buried: StripedCounter,
    replaced: StripedCounter,
    max_depth: AtomicMax,
    /// Task-busy nanoseconds (armed-only): each `ProcessRidge` body adds
    /// its own elapsed time, excluding spawned children. busy / wall is
    /// the realized parallelism the serving layer exposes as a gauge.
    busy_ns: StripedCounter,
    trace: Option<Mutex<Vec<TraceEvent>>>,
}

impl<'a, M: RidgeMultimap<RidgeKey>> Shared<'a, M> {
    fn record(&self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.trace {
            t.lock().unwrap().push(ev());
        }
    }

    /// Fold one facet's staged-kernel counters into the striped totals.
    fn add_counts(&self, c: &KernelCounts) {
        self.tests.add(c.tests);
        self.filter_hits.add(c.filter_hits);
        self.i128_fallbacks.add(c.i128_fallbacks);
        self.bigint_fallbacks.add(c.bigint_fallbacks);
    }

    /// `ProcessRidge(t1, r, t2)` — Algorithm 3, lines 8-22.
    ///
    /// `depth` is the recursion depth (Theorem 5.3 measures its maximum).
    fn process_ridge<'s>(
        &'s self,
        scope: &pool::Scope<'s>,
        t1: u32,
        r: RidgeKey,
        t2: u32,
        depth: u64,
    ) where
        'a: 's,
    {
        self.max_depth.record(depth);
        if chull_obs::armed() {
            crate::telemetry::engine_metrics()
                .par_ridge_depth
                .record(depth);
            let start = std::time::Instant::now();
            self.process_ridge_inner(scope, t1, r, t2, depth);
            self.busy_ns.add(start.elapsed().as_nanos() as u64);
        } else {
            self.process_ridge_inner(scope, t1, r, t2, depth);
        }
    }

    fn process_ridge_inner<'s>(
        &'s self,
        scope: &pool::Scope<'s>,
        mut t1: u32,
        r: RidgeKey,
        mut t2: u32,
        depth: u64,
    ) where
        'a: 's,
    {
        let (mut f1, mut f2) = (self.arena.get(t1), self.arena.get(t2));
        let (mut p1, mut p2) = (f1.facet.pivot(), f2.facet.pivot());

        // Line 9: no conflicts on either side — the ridge is final.
        if p1 == u32::MAX && p2 == u32::MAX {
            self.record(|| {
                TraceEvent::finalize(self.dim(), &f1.facet.verts, &f2.facet.verts, depth)
            });
            return;
        }
        // Line 10: same pivot on both sides — the pivot buries the ridge
        // and both facets.
        if p1 == p2 {
            f1.dead.store(true, Ordering::Relaxed);
            f2.dead.store(true, Ordering::Relaxed);
            self.buried.incr();
            self.record(|| {
                TraceEvent::bury(self.dim(), &f1.facet.verts, &f2.facet.verts, p1, depth)
            });
            return;
        }
        // Lines 11-12: orient so that t1 holds the earlier pivot.
        if p2 < p1 {
            std::mem::swap(&mut t1, &mut t2);
            std::mem::swap(&mut f1, &mut f2);
            std::mem::swap(&mut p1, &mut p2);
        }

        // Lines 14-17: {t1, t2} supports the new facet t = r ∪ {p};
        // t replaces t1.
        let p = p1;
        let dim = self.dim();
        let verts = join_ridge(&r, dim, p);
        let (facet, counts) = MERGE_SCRATCH.with(|scratch| {
            let mut candidates = scratch.borrow_mut();
            merge_conflicts_into(&f1.facet.conflicts, &f2.facet.conflicts, &mut candidates);
            self.ctx.make_facet(verts, &candidates, p)
        });
        self.add_counts(&counts);
        f1.dead.store(true, Ordering::Relaxed);
        self.replaced.incr();
        self.record(|| TraceEvent::replace(dim, &f1.facet.verts, &verts, p, depth));
        let t_id = self.arena.push(ParFacet {
            facet,
            dead: AtomicBool::new(ALIVE),
            creator: p,
            parents: [t1, t2],
        });

        // Lines 18-22: hand each ridge of t to its processor.
        for omit in 0..dim {
            let r_new = ridge_omitting(&verts, dim, omit);
            if r_new == r {
                // Line 19: the ridge shared with t2 is ready now.
                scope.spawn(move |s| self.process_ridge(s, t_id, r_new, t2, depth + 1));
            } else if !self.map.insert_and_set(r_new, t_id) {
                // Line 20-22: we are the second facet on this ridge — we
                // own processing it.
                let t_other = self.map.get_value(r_new, t_id);
                scope.spawn(move |s| self.process_ridge(s, t_id, r_new, t_other, depth + 1));
            }
        }
    }

    #[inline]
    fn dim(&self) -> usize {
        self.ctx.dim
    }
}

/// Run Algorithm 3 with a dedicated pool of `threads` workers
/// (for thread-scaling experiments and for stress-testing the concurrent
/// paths with more workers than cores).
pub fn parallel_hull_with_threads(pts: &PointSet, options: ParOptions, threads: usize) -> ParRun {
    dispatch_map(pts, options, threads)
}

/// Run Algorithm 3 on `pts` (insertion order = index order; the first
/// `d + 1` points must be affinely independent — use
/// [`crate::context::prepare_points`]).
pub fn parallel_hull(pts: &PointSet, options: ParOptions) -> ParRun {
    dispatch_map(pts, options, pool::default_threads())
}

fn dispatch_map(pts: &PointSet, options: ParOptions, threads: usize) -> ParRun {
    match options.map {
        MapKind::Locked => {
            let map: RidgeMapLocked<RidgeKey> = RidgeMapLocked::with_capacity(pts.len() * 4);
            run_with_map(pts, options, map, threads)
        }
        MapKind::Cas { capacity_factor } => {
            // Growable: `capacity_factor` sizes the lock-free fast path;
            // a misestimate degrades to the locked overflow tier instead
            // of panicking (the shared-growth API the serving path needs).
            let map: RidgeMapCas<RidgeKey> =
                RidgeMapCas::growable_with_capacity(capacity_factor * pts.dim() * pts.len() + 1024);
            run_with_map(pts, options, map, threads)
        }
        MapKind::Tas { capacity_factor } => {
            let map: RidgeMapTas<RidgeKey> =
                RidgeMapTas::growable_with_capacity(capacity_factor * pts.dim() * pts.len() + 1024);
            run_with_map(pts, options, map, threads)
        }
    }
}

fn run_with_map<M: RidgeMultimap<RidgeKey>>(
    pts: &PointSet,
    options: ParOptions,
    map: M,
    threads: usize,
) -> ParRun {
    let dim = pts.dim();
    let n = pts.len();
    let simplex = initial_simplex(pts);
    assert_eq!(
        simplex,
        (0..=(dim as u32)).collect::<Vec<u32>>(),
        "first d + 1 points must be affinely independent (call prepare_points)"
    );
    let ctx = HullContext::new(pts, &simplex);
    let shared = Shared {
        ctx,
        arena: ConcurrentArena::new(),
        map,
        tests: StripedCounter::new(),
        filter_hits: StripedCounter::new(),
        i128_fallbacks: StripedCounter::new(),
        bigint_fallbacks: StripedCounter::new(),
        buried: StripedCounter::new(),
        replaced: StripedCounter::new(),
        max_depth: AtomicMax::new(),
        busy_ns: StripedCounter::new(),
        trace: options.record_trace.then(|| Mutex::new(Vec::new())),
    };

    // Lines 2-4: seed hull and its conflict sets, facets in parallel.
    let later: Vec<u32> = ((dim as u32 + 1)..n as u32).collect();
    let seed_facets: Vec<(Facet, KernelCounts)> = {
        let mut slots: Vec<Option<(Facet, KernelCounts)>> = (0..=dim).map(|_| None).collect();
        pool::scope_with_threads(threads.min(dim + 1), |s| {
            for (omit, slot) in slots.iter_mut().enumerate() {
                let (ctx, simplex, later) = (&shared.ctx, &simplex, &later);
                s.spawn(move |_| {
                    let verts: Vec<u32> = simplex
                        .iter()
                        .copied()
                        .filter(|&v| v != omit as u32)
                        .collect();
                    *slot = Some(ctx.make_facet(facet_verts(&verts), later, u32::MAX));
                });
            }
        });
        slots
            .into_iter()
            .map(|x| x.expect("seed facet task ran"))
            .collect()
    };
    let mut seed_ids = Vec::with_capacity(dim + 1);
    for (facet, counts) in seed_facets {
        shared.add_counts(&counts);
        seed_ids.push(shared.arena.push(ParFacet {
            facet,
            dead: AtomicBool::new(ALIVE),
            creator: u32::MAX,
            parents: [u32::MAX; 2],
        }));
    }

    // Lines 5-6: every pair of seed facets shares exactly one ridge.
    let mut seed_ridges: Vec<(u32, RidgeKey, u32)> = Vec::new();
    for i in 0..seed_ids.len() {
        for j in (i + 1)..seed_ids.len() {
            let fi = &shared.arena.get(seed_ids[i]).facet.verts;
            let fj = &shared.arena.get(seed_ids[j]).facet.verts;
            let mut r = [crate::facet::NO_VERT; crate::facet::MAX_DIM];
            let mut k = 0;
            for &fv in &fi[..dim] {
                if fj[..dim].contains(&fv) {
                    r[k] = fv;
                    k += 1;
                }
            }
            assert_eq!(k, dim - 1, "seed facets must share a ridge");
            seed_ridges.push((seed_ids[i], r, seed_ids[j]));
        }
    }

    pool::scope_with_threads(threads, |s| {
        for (t1, r, t2) in seed_ridges {
            let shared = &shared;
            s.spawn(move |s| shared.process_ridge(s, t1, r, t2, 1));
        }
    });

    // Quiesced: collect results.
    let mut hull_facets = Vec::new();
    let mut created = Vec::with_capacity(shared.arena.len());
    for pf in shared.arena.iter() {
        created.push(pf.facet.verts);
        if !pf.dead.load(Ordering::Relaxed) {
            debug_assert!(
                pf.facet.conflicts.is_empty(),
                "alive facet with unresolved conflicts"
            );
            hull_facets.push(pf.facet.verts);
        }
    }
    let stats = HullStats {
        n,
        dim,
        visibility_tests: shared.tests.sum(),
        facets_created: shared.arena.len() as u64,
        hull_facets: hull_facets.len() as u64,
        recursion_depth: shared.max_depth.get(),
        buried: shared.buried.sum(),
        replaced: shared.replaced.sum(),
        filter_hits: shared.filter_hits.sum(),
        i128_fallbacks: shared.i128_fallbacks.sum(),
        bigint_fallbacks: shared.bigint_fallbacks.sum(),
        ..Default::default()
    };
    let trace = shared
        .trace
        .map(|t| t.into_inner().unwrap())
        .unwrap_or_default();
    ParRun {
        output: HullOutput {
            dim,
            facets: hull_facets,
        },
        stats,
        created,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use crate::seq::incremental_hull_run;
    use chull_geometry::generators;

    fn check_matches_seq(pts: &PointSet, options: ParOptions) {
        let seq = incremental_hull_run(pts);
        let par = parallel_hull(pts, options);
        assert_eq!(
            seq.output.canonical(),
            par.output.canonical(),
            "hull facets differ from sequential"
        );
        // The paper's work claim: exactly the same facets created and the
        // same number of visibility tests.
        let mut seq_created: Vec<_> = seq.created.clone();
        let mut par_created: Vec<_> = par.created.clone();
        seq_created.sort_unstable();
        par_created.sort_unstable();
        assert_eq!(seq_created, par_created, "created facet multisets differ");
        assert_eq!(
            seq.stats.visibility_tests, par.stats.visibility_tests,
            "visibility test counts differ"
        );
        // The staged kernel is deterministic per (facet, query), so even the
        // per-stage counters agree across schedulers.
        assert_eq!(
            (
                seq.stats.filter_hits,
                seq.stats.i128_fallbacks,
                seq.stats.bigint_fallbacks
            ),
            (
                par.stats.filter_hits,
                par.stats.i128_fallbacks,
                par.stats.bigint_fallbacks
            ),
            "staged kernel stage counters differ"
        );
    }

    #[test]
    fn matches_sequential_2d_disk() {
        for seed in 0..4u64 {
            let pts = PointSet::from_points2(&generators::disk_2d(400, 1 << 20, seed));
            let pts = prepare_points(&pts, seed + 10);
            check_matches_seq(&pts, ParOptions::default());
        }
    }

    #[test]
    fn matches_sequential_2d_convex_position() {
        let pts = PointSet::from_points2(&generators::parabola_2d(200, 3));
        let pts = prepare_points(&pts, 5);
        check_matches_seq(&pts, ParOptions::default());
    }

    #[test]
    fn matches_sequential_3d() {
        for seed in 0..3u64 {
            let pts = PointSet::from_points3(&generators::ball_3d(250, 1 << 20, seed));
            let pts = prepare_points(&pts, seed + 20);
            check_matches_seq(&pts, ParOptions::default());
        }
    }

    #[test]
    fn matches_sequential_3d_near_sphere() {
        let pts = PointSet::from_points3(&generators::near_sphere_3d(150, 1 << 20, 2));
        let pts = prepare_points(&pts, 6);
        check_matches_seq(&pts, ParOptions::default());
    }

    #[test]
    fn matches_sequential_higher_dims() {
        for dim in 4..=6usize {
            let pts = generators::ball_d(dim, 60, 1 << 18, 7);
            let pts = prepare_points(&pts, 8);
            check_matches_seq(&pts, ParOptions::default());
        }
    }

    #[test]
    fn cas_and_tas_maps_agree() {
        let pts = PointSet::from_points2(&generators::disk_2d(300, 1 << 20, 9));
        let pts = prepare_points(&pts, 11);
        check_matches_seq(
            &pts,
            ParOptions {
                map: MapKind::Cas { capacity_factor: 8 },
                record_trace: false,
            },
        );
        check_matches_seq(
            &pts,
            ParOptions {
                map: MapKind::Tas { capacity_factor: 8 },
                record_trace: false,
            },
        );
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        for (n, seed) in [(1000usize, 1u64), (4000, 2)] {
            let pts = PointSet::from_points2(&generators::disk_2d(n, 1 << 20, seed));
            let pts = prepare_points(&pts, seed);
            let par = parallel_hull(&pts, ParOptions::default());
            let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
            // Theorem 5.3: recursion depth O(log n) whp; use the Theorem 4.2
            // constant (sigma = gke^2 ~ 30) as a generous test bound.
            assert!(
                (par.stats.recursion_depth as f64) < 30.0 * hn,
                "recursion depth {} too large for n = {n}",
                par.stats.recursion_depth
            );
            assert!(par.stats.recursion_depth >= 3);
        }
    }

    #[test]
    fn parallel_verifies_geometrically() {
        use crate::verify::verify_hull;
        let pts = PointSet::from_points3(&generators::paraboloid_3d(200, 1 << 10, 3));
        let pts = prepare_points(&pts, 4);
        let par = parallel_hull(&pts, ParOptions::default());
        verify_hull(&pts, &par.output).unwrap();
    }
}
