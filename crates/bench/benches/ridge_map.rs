//! Microbenchmarks of the three `InsertAndSet`/`GetValue` engines
//! (Algorithm 4 CAS, Algorithm 5 TAS, sharded locked).

use chull_bench::harness::{black_box, Bench};
use chull_concurrent::{RidgeMapCas, RidgeMapLocked, RidgeMapTas};

const KEYS: usize = 1 << 16;

fn run_pairs(insert: impl Fn(u64, u32) -> bool, get: impl Fn(u64, u32) -> u32) {
    for k in 0..KEYS as u64 {
        insert(k, (2 * k) as u32);
    }
    for k in 0..KEYS as u64 {
        if !insert(k, (2 * k + 1) as u32) {
            black_box(get(k, (2 * k + 1) as u32));
        }
    }
}

fn main() {
    let mut b = Bench::new().samples(5).target_sample_time(0.1);
    b.bench(&format!("ridge_map/cas/{KEYS}"), || {
        let m: RidgeMapCas<u64> = RidgeMapCas::with_capacity(KEYS);
        run_pairs(|k, v| m.insert_and_set(k, v), |k, n| m.get_value(k, n));
    });
    b.bench(&format!("ridge_map/tas/{KEYS}"), || {
        let m: RidgeMapTas<u64> = RidgeMapTas::with_capacity(KEYS);
        run_pairs(|k, v| m.insert_and_set(k, v), |k, n| m.get_value(k, n));
    });
    b.bench(&format!("ridge_map/locked/{KEYS}"), || {
        let m: RidgeMapLocked<u64> = RidgeMapLocked::with_capacity(KEYS);
        run_pairs(|k, v| m.insert_and_set(k, v), |k, n| m.get_value(k, n));
    });
    b.report();
}
