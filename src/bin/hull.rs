//! `hull` — a command-line convex hull tool over the suite.
//!
//! Reads whitespace-separated integer coordinates (one point per line) from
//! a file or stdin, computes the hull with the requested algorithm, and
//! prints the hull facets (as 0-based input indices) plus instrumentation.
//!
//! ```text
//! USAGE: hull [--dim D] [--algo seq|par|rounds|chain] [--seed S] [--stats] [FILE]
//! ```
//!
//! Examples:
//! ```text
//! $ printf '0 0\n4 0\n0 4\n4 4\n2 2\n' | hull
//! $ hull --dim 3 --algo par --stats points3d.txt
//! ```

use convex_hull_suite::core::baseline::monotone_chain;
use convex_hull_suite::core::context::prepare_points_with_perm;
use convex_hull_suite::core::par::rounds::rounds_hull;
use convex_hull_suite::core::par::{parallel_hull, ParOptions};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::core::{HullOutput, HullStats};
use convex_hull_suite::geometry::{Point2i, PointSet};
use std::io::Read;

/// Parsed command-line options.
#[derive(Debug, PartialEq, Eq)]
struct Options {
    dim: usize,
    algo: Algo,
    seed: u64,
    stats: bool,
    file: Option<String>,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Algo {
    Seq,
    Par,
    Rounds,
    Chain,
}

fn usage() -> ! {
    eprintln!(
        "USAGE: hull [--dim D] [--algo seq|par|rounds|chain] [--seed S] [--stats] [FILE]\n\
         Reads one point per line (D whitespace-separated integers); FILE defaults to stdin."
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        dim: 2,
        algo: Algo::Seq,
        seed: 42,
        stats: false,
        file: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dim" => {
                opts.dim = it
                    .next()
                    .ok_or("--dim needs a value")?
                    .parse()
                    .map_err(|_| "bad --dim value")?;
            }
            "--algo" => {
                opts.algo = match it.next().ok_or("--algo needs a value")?.as_str() {
                    "seq" => Algo::Seq,
                    "par" => Algo::Par,
                    "rounds" => Algo::Rounds,
                    "chain" => Algo::Chain,
                    other => return Err(format!("unknown algorithm '{other}'")),
                };
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value")?;
            }
            "--stats" => opts.stats = true,
            "--help" | "-h" => return Err("help".to_string()),
            f if !f.starts_with('-') => {
                if opts.file.is_some() {
                    return Err("multiple input files".to_string());
                }
                opts.file = Some(f.to_string());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.dim < 2 || opts.dim > 8 {
        return Err("--dim must be in 2..=8".to_string());
    }
    if opts.algo == Algo::Chain && opts.dim != 2 {
        return Err("--algo chain is 2D only".to_string());
    }
    Ok(opts)
}

/// Parse whitespace-separated integer points, one per line.
fn parse_points(input: &str, dim: usize) -> Result<PointSet, String> {
    let mut ps = PointSet::new(dim);
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<i64>, _> =
            line.split_whitespace().map(|t| t.parse::<i64>()).collect();
        let coords = coords.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if coords.len() != dim {
            return Err(format!(
                "line {}: expected {dim} coordinates, got {}",
                lineno + 1,
                coords.len()
            ));
        }
        ps.push(&coords);
    }
    if ps.len() < dim + 1 {
        return Err(format!(
            "need at least {} points for a {dim}D hull",
            dim + 1
        ));
    }
    Ok(ps)
}

fn print_output(out: &HullOutput, stats: Option<&HullStats>, perm: Option<&[usize]>) {
    for f in &out.facets {
        let ids: Vec<String> = f[..out.dim]
            .iter()
            .map(|&v| match perm {
                Some(p) => p[v as usize].to_string(),
                None => v.to_string(),
            })
            .collect();
        println!("{}", ids.join(" "));
    }
    if let Some(s) = stats {
        eprintln!(
            "# n={} dim={} hull_facets={} facets_created={} visibility_tests={} dep_depth={} recursion_depth={} rounds={}",
            s.n,
            s.dim,
            s.hull_facets,
            s.facets_created,
            s.visibility_tests,
            s.dep_depth,
            s.recursion_depth,
            s.rounds
        );
        eprintln!(
            "# kernel: filter_hits={} i128_fallbacks={} bigint_fallbacks={}",
            s.filter_hits, s.i128_fallbacks, s.bigint_fallbacks
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
        }
    };
    let mut input = String::new();
    match &opts.file {
        Some(f) => {
            input = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("error reading {f}: {e}");
                std::process::exit(1);
            });
        }
        None => {
            std::io::stdin()
                .read_to_string(&mut input)
                .expect("reading stdin");
        }
    }
    let pts = parse_points(&input, opts.dim).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    if opts.algo == Algo::Chain {
        let raw: Vec<Point2i> = (0..pts.len())
            .map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1]))
            .collect();
        let out = monotone_chain::hull_output(&raw);
        print_output(&out, None, None);
        return;
    }

    // The incremental algorithms want a random insertion order; translate
    // facet indices back to the input order via the permutation.
    let (prepared, perm) = prepare_points_with_perm(&pts, opts.seed);
    match opts.algo {
        Algo::Seq => {
            let run = incremental_hull_run(&prepared);
            print_output(&run.output, opts.stats.then_some(&run.stats), Some(&perm));
        }
        Algo::Par => {
            let run = parallel_hull(&prepared, ParOptions::default());
            print_output(&run.output, opts.stats.then_some(&run.stats), Some(&perm));
        }
        Algo::Rounds => {
            let run = rounds_hull(&prepared, false);
            print_output(&run.output, opts.stats.then_some(&run.stats), Some(&perm));
        }
        Algo::Chain => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_args_defaults_and_flags() {
        let o = parse_args(&s(&[])).unwrap();
        assert_eq!(o.dim, 2);
        assert_eq!(o.algo, Algo::Seq);
        let o = parse_args(&s(&[
            "--dim", "3", "--algo", "par", "--seed", "7", "--stats", "f.txt",
        ]))
        .unwrap();
        assert_eq!(o.dim, 3);
        assert_eq!(o.algo, Algo::Par);
        assert_eq!(o.seed, 7);
        assert!(o.stats);
        assert_eq!(o.file.as_deref(), Some("f.txt"));
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(&s(&["--dim"])).is_err());
        assert!(parse_args(&s(&["--dim", "1"])).is_err());
        assert!(parse_args(&s(&["--dim", "9"])).is_err());
        assert!(parse_args(&s(&["--algo", "magic"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["a.txt", "b.txt"])).is_err());
        assert!(parse_args(&s(&["--dim", "3", "--algo", "chain"])).is_err());
    }

    #[test]
    fn parse_points_happy_path() {
        let ps = parse_points("0 0\n4 0\n# comment\n\n0 4\n4 4\n", 2).unwrap();
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.point(2), &[0, 4]);
    }

    #[test]
    fn parse_points_errors() {
        assert!(parse_points("1 2 3\n", 2).is_err());
        assert!(parse_points("1 x\n2 3\n4 5\n6 7\n", 2).is_err());
        assert!(parse_points("1 2\n3 4\n", 2).is_err()); // too few
    }
}
