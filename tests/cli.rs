//! End-to-end tests of the `hull` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_hull(args: &[&str], input: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hull"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning hull binary");
    // A child that rejects its arguments exits before reading stdin, so
    // this write can race an EPIPE; the exit status still tells the story.
    match child.stdin.as_mut().unwrap().write_all(input.as_bytes()) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
        Err(e) => panic!("writing child stdin: {e}"),
    }
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
        out.status.success(),
    )
}

const SQUARE: &str = "0 0\n40 0\n0 40\n40 40\n20 20\n7 31\n";

fn edges_of(stdout: &str) -> Vec<Vec<u32>> {
    let mut edges: Vec<Vec<u32>> = stdout
        .lines()
        .map(|l| {
            let mut e: Vec<u32> = l.split_whitespace().map(|t| t.parse().unwrap()).collect();
            e.sort_unstable();
            e
        })
        .collect();
    edges.sort();
    edges
}

#[test]
fn square_hull_all_algorithms_agree() {
    let expected = edges_of(&run_hull(&["--algo", "chain"], SQUARE).0);
    assert_eq!(expected.len(), 4);
    assert!(
        expected.iter().all(|e| e.iter().all(|&v| v < 4)),
        "interior point on hull"
    );
    for algo in ["seq", "par", "rounds"] {
        let (stdout, _, ok) = run_hull(&["--algo", algo], SQUARE);
        assert!(ok, "{algo} failed");
        assert_eq!(edges_of(&stdout), expected, "algorithm {algo}");
    }
}

#[test]
fn stats_go_to_stderr() {
    let (stdout, stderr, ok) = run_hull(&["--stats"], SQUARE);
    assert!(ok);
    assert!(!stdout.contains("hull_facets"));
    assert!(stderr.contains("hull_facets=4"), "stderr: {stderr}");
    assert!(stderr.contains("visibility_tests="));
}

#[test]
fn three_d_input() {
    let input = "0 0 0\n9 0 0\n0 9 0\n0 0 9\n9 9 9\n2 2 2\n";
    let (stdout, _, ok) = run_hull(&["--dim", "3", "--algo", "par"], input);
    assert!(ok);
    let facets = edges_of(&stdout);
    // 5 extreme points (index 5 interior); each facet has 3 vertices < 5.
    assert!(facets
        .iter()
        .all(|f| f.len() == 3 && f.iter().all(|&v| v < 5)));
    // Euler for V=5 triangulated sphere: F = 2V - 4 = 6.
    assert_eq!(facets.len(), 6);
}

#[test]
fn bad_input_is_an_error() {
    let (_, stderr, ok) = run_hull(&[], "1 2\n3 4\n");
    assert!(!ok);
    assert!(stderr.contains("need at least"));
    let (_, stderr, ok) = run_hull(&[], "1 2 3\n4 5 6\n7 8 9\n10 11 12\n");
    assert!(!ok);
    assert!(stderr.contains("expected 2 coordinates"));
    let (_, stderr, ok) = run_hull(&["--algo", "warp"], SQUARE);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn comments_and_blank_lines_ignored() {
    let input = "# square\n\n0 0\n40 0\n\n0 40\n# interior:\n20 20\n40 40\n";
    let (stdout, _, ok) = run_hull(&["--algo", "chain"], input);
    assert!(ok);
    assert_eq!(edges_of(&stdout).len(), 4);
}

#[test]
fn serve_and_route_flag_validation() {
    // A follower must not carry a WAL: on restart it resyncs from the
    // primary, and a stale local WAL would skew the 1:1 batch-index
    // mirror the replication protocol relies on.
    let (_, stderr, ok) = run_hull(&["serve", "--follow", "127.0.0.1:1", "--wal", "/tmp/w"], "");
    assert!(!ok);
    assert!(stderr.contains("--wal is primary-only"), "stderr: {stderr}");

    let (_, stderr, ok) = run_hull(&["serve", "--promote-after", "3"], "");
    assert!(!ok);
    assert!(
        stderr.contains("--promote-after only applies with --follow"),
        "stderr: {stderr}"
    );

    let (_, stderr, ok) = run_hull(&["route"], "");
    assert!(!ok);
    assert!(stderr.contains("at least one NODE"), "stderr: {stderr}");
}

/// SIGTERM runs the same graceful path as a wire `Shutdown`: stop
/// accepting, drain the shards (sealing the journal tail), then exit 0
/// with the final stats — not a mid-write death.
#[cfg(target_os = "linux")]
#[test]
fn sigterm_drains_and_exits_cleanly() {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_hull"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--dim",
            "2",
            "--stats-json",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawning hull serve");
    let mut lines = std::io::BufReader::new(child.stderr.take().unwrap()).lines();
    loop {
        let line = lines.next().expect("serve died early").expect("stderr");
        if line.starts_with("hull: listening on ") {
            break;
        }
    }
    let ok = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("running kill")
        .success();
    assert!(ok, "kill -TERM failed");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    let out = child.wait_with_output().expect("waiting for serve");
    assert!(out.status.success(), "SIGTERM exit must be clean: {out:?}");
    assert!(
        rest.iter()
            .any(|l| l.contains("termination signal received")),
        "stderr lines: {rest:?}"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.trim_start().starts_with('{'),
        "--stats-json must still print final stats: {stdout}"
    );
}

#[test]
fn seed_changes_internal_order_not_hull() {
    let a = edges_of(&run_hull(&["--seed", "1"], SQUARE).0);
    let b = edges_of(&run_hull(&["--seed", "999"], SQUARE).0);
    assert_eq!(a, b, "hull must not depend on the insertion seed");
}
