//! Benchmarks of the instrumentation paths themselves: the rounds runner
//! (synchronous span measurement) vs the async scheduler.

use chull_bench::prepared_disk_2d;
use chull_core::par::rounds::rounds_hull;
use chull_core::par::{parallel_hull, ParOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("depth_measurement");
    let n = 50_000;
    let pts = prepared_disk_2d(n, 17);
    group.bench_with_input(BenchmarkId::new("rounds_runner", n), &pts, |b, pts| {
        b.iter(|| rounds_hull(pts, false));
    });
    group.bench_with_input(BenchmarkId::new("async_scheduler", n), &pts, |b, pts| {
        b.iter(|| parallel_hull(pts, ParOptions::default()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_depth
}
criterion_main!(benches);
