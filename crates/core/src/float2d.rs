//! A robust 2D randomized incremental hull over **floating-point** inputs.
//!
//! The main algorithms in this crate run on integer lattices so that every
//! quantity in the experiments is exact. Real-world inputs are often `f64`;
//! this module provides Algorithm 2 specialized to 2D over
//! [`chull_geometry::predicates::float::orient2d`], whose filtered+exact
//! evaluation makes every plane-side decision the sign of the *exact real*
//! determinant — so the returned hull is the true hull of the given
//! doubles, with no epsilon tuning.
//!
//! Counterclockwise convention throughout: an edge `(a, b)` on the hull has
//! the interior strictly to its left; point `q` is *visible* from the edge
//! iff `orient2d(a, b, q) < 0`.

use chull_geometry::predicates::float::orient2d;
use chull_geometry::rng::SliceRandom;
use chull_geometry::Point2f;

/// A directed hull edge with its conflict list.
#[derive(Debug, Clone)]
struct FEdge {
    from: u32,
    to: u32,
    /// Indices (into the shuffled order) of uninserted points visible from
    /// this edge, ascending.
    conflicts: Vec<u32>,
}

/// Result of a float hull run.
#[derive(Debug, Clone)]
pub struct FloatHull {
    /// Hull vertex indices (into the original input), counterclockwise.
    pub hull: Vec<u32>,
    /// Exact visibility tests performed.
    pub visibility_tests: u64,
    /// Edges ever created.
    pub edges_created: u64,
    /// Dependence-graph depth of the run (same definition as the integer
    /// path).
    pub dep_depth: u64,
}

/// Compute the 2D convex hull of `points` by randomized incremental
/// insertion (seeded shuffle). Points must be finite and distinct; the
/// input must not be fully collinear. Collinear points *on* hull edges are
/// treated as interior (strict hull).
///
/// ```
/// use chull_core::float2d::float_hull_2d;
/// use chull_geometry::Point2f;
/// let pts = [
///     Point2f::new(0.0, 0.0), Point2f::new(1.0, 0.1),
///     Point2f::new(0.9, 1.0), Point2f::new(0.1, 0.9),
///     Point2f::new(0.5, 0.5), // interior
/// ];
/// let hull = float_hull_2d(&pts, 42);
/// let mut verts = hull.hull.clone();
/// verts.sort();
/// assert_eq!(verts, vec![0, 1, 2, 3]);
/// ```
pub fn float_hull_2d(points: &[Point2f], seed: u64) -> FloatHull {
    assert!(points.len() >= 3, "need at least 3 points");
    for p in points {
        assert!(p.x.is_finite() && p.y.is_finite(), "non-finite coordinate");
    }
    // Random insertion order.
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.shuffle(&mut chull_geometry::generators::rng(seed));
    // Hoist the first non-collinear triple to the front.
    let mut tri: Option<usize> = None;
    'search: for k in 2..order.len() {
        for j in 1..k {
            if orient2d(
                points[order[0] as usize],
                points[order[j] as usize],
                points[order[k] as usize],
            ) != 0
            {
                order.swap(1, j);
                order.swap(2, k);
                tri = Some(k);
                break 'search;
            }
        }
        // All of order[1..=k] collinear with order[0]; keep scanning.
    }
    assert!(tri.is_some(), "input is fully collinear");
    let p = |i: u32| points[order[i as usize] as usize];

    // Seed triangle, counterclockwise.
    let (a, b, c) = (0u32, 1u32, 2u32);
    let (b, c) = if orient2d(p(a), p(b), p(c)) > 0 {
        (b, c)
    } else {
        (c, b)
    };

    let mut tests = 0u64;
    struct State {
        edges: Vec<FEdge>,
        depth: Vec<u32>,
        alive: Vec<bool>,
        /// Outgoing/incoming alive edge at each hull vertex.
        out_edge: std::collections::HashMap<u32, u32>,
        in_edge: std::collections::HashMap<u32, u32>,
        point_conflicts: Vec<Vec<u32>>,
    }
    let mut st = State {
        edges: Vec::new(),
        depth: Vec::new(),
        alive: Vec::new(),
        out_edge: std::collections::HashMap::new(),
        in_edge: std::collections::HashMap::new(),
        point_conflicts: vec![Vec::new(); order.len()],
    };

    let mut make_edge =
        |st: &mut State, from: u32, to: u32, candidates: &[u32], skip: u32, d: u32| -> u32 {
            let mut conflicts = Vec::new();
            for &q in candidates {
                if q == skip || q == from || q == to {
                    continue;
                }
                tests += 1;
                if orient2d(p(from), p(to), p(q)) < 0 {
                    conflicts.push(q);
                }
            }
            let id = st.edges.len() as u32;
            for &q in &conflicts {
                st.point_conflicts[q as usize].push(id);
            }
            st.edges.push(FEdge {
                from,
                to,
                conflicts,
            });
            st.depth.push(d);
            st.alive.push(true);
            st.out_edge.insert(from, id);
            st.in_edge.insert(to, id);
            id
        };

    let all: Vec<u32> = (3..order.len() as u32).collect();
    for (from, to) in [(a, b), (b, c), (c, a)] {
        make_edge(&mut st, from, to, &all, u32::MAX, 0);
    }

    let mut cand_scratch: Vec<u32> = Vec::new();
    for v in 3..order.len() as u32 {
        let visible: Vec<u32> = st.point_conflicts[v as usize]
            .iter()
            .copied()
            .filter(|&e| st.alive[e as usize])
            .collect();
        if visible.is_empty() {
            continue;
        }
        // The visible edges form a contiguous ccw chain; its ends are where
        // the neighboring edge is alive but invisible.
        let in_chain = |e: u32| visible.contains(&e);
        let mut left_end = None; // (vertex, chain edge, invisible neighbor)
        let mut right_end = None;
        for &e in &visible {
            let (from, to) = (st.edges[e as usize].from, st.edges[e as usize].to);
            let pred = st.in_edge[&from];
            let succ = st.out_edge[&to];
            if !in_chain(pred) {
                left_end = Some((from, e, pred));
            }
            if !in_chain(succ) {
                right_end = Some((to, e, succ));
            }
        }
        let (lv, le, l_invis) = left_end.expect("visible chain has no left end");
        let (rv, re, r_invis) = right_end.expect("visible chain has no right end");

        // Delete the chain.
        for &e in &visible {
            st.alive[e as usize] = false;
            let (from, to) = (st.edges[e as usize].from, st.edges[e as usize].to);
            st.out_edge.remove(&from);
            st.in_edge.remove(&to);
        }
        // New edges (lv, v) and (v, rv): each supported by the visible
        // chain-end edge and its invisible neighbor (Fact 5.2).
        let d_left = 1 + st.depth[le as usize].max(st.depth[l_invis as usize]);
        let d_right = 1 + st.depth[re as usize].max(st.depth[r_invis as usize]);
        crate::seq::merge_conflicts_into(
            &st.edges[le as usize].conflicts,
            &st.edges[l_invis as usize].conflicts,
            &mut cand_scratch,
        );
        make_edge(&mut st, lv, v, &cand_scratch, v, d_left);
        crate::seq::merge_conflicts_into(
            &st.edges[re as usize].conflicts,
            &st.edges[r_invis as usize].conflicts,
            &mut cand_scratch,
        );
        make_edge(&mut st, v, rv, &cand_scratch, v, d_right);
    }

    // Walk the final cycle ccw starting anywhere.
    let start = (0..st.edges.len())
        .position(|i| st.alive[i])
        .expect("empty hull") as u32;
    let mut hull = Vec::new();
    let mut e = start;
    loop {
        let edge = &st.edges[e as usize];
        hull.push(order[edge.from as usize]);
        e = *st.out_edge.get(&edge.to).expect("broken hull cycle");
        if e == start {
            break;
        }
    }
    let dep_depth = st.depth.iter().copied().max().unwrap_or(0) as u64;
    FloatHull {
        hull,
        visibility_tests: tests,
        edges_created: st.edges.len() as u64,
        dep_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::monotone_chain;
    use chull_geometry::generators;

    #[test]
    fn matches_integer_hull_on_lattice_inputs() {
        for seed in 0..4u64 {
            let ipts = generators::disk_2d(400, 1 << 20, seed);
            let fpts: Vec<Point2f> = ipts
                .iter()
                .map(|p| Point2f::new(p.x as f64, p.y as f64))
                .collect();
            let fh = float_hull_2d(&fpts, seed + 9);
            let mut fverts: Vec<u32> = fh.hull.clone();
            fverts.sort_unstable();
            let mut iverts: Vec<u32> = monotone_chain::hull_indices(&ipts);
            iverts.sort_unstable();
            assert_eq!(fverts, iverts, "seed {seed}");
        }
    }

    #[test]
    fn output_is_convex_and_contains_all_points() {
        let mut rng = generators::rng(3);
        let pts: Vec<Point2f> = (0..500)
            .map(|_| Point2f::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let fh = float_hull_2d(&pts, 1);
        let h = &fh.hull;
        assert!(h.len() >= 3);
        // Convex, ccw: every consecutive triple turns left (exactly).
        for i in 0..h.len() {
            let a = pts[h[i] as usize];
            let b = pts[h[(i + 1) % h.len()] as usize];
            let c = pts[h[(i + 2) % h.len()] as usize];
            assert_eq!(orient2d(a, b, c), 1, "hull not strictly convex at {i}");
        }
        // Containment: no input point strictly right of any hull edge.
        for i in 0..h.len() {
            let a = pts[h[i] as usize];
            let b = pts[h[(i + 1) % h.len()] as usize];
            for q in &pts {
                assert!(orient2d(a, b, *q) >= 0, "point outside hull");
            }
        }
    }

    #[test]
    fn adversarial_tiny_coordinates() {
        // Points separated by single ulps: naive arithmetic would misorder;
        // the exact predicates must not.
        let base = 1.0f64;
        let ulp = f64::EPSILON;
        let pts = vec![
            Point2f::new(base, base),
            Point2f::new(base + 4.0 * ulp, base + ulp),
            Point2f::new(base + ulp, base + 4.0 * ulp),
            Point2f::new(base + 5.0 * ulp, base + 5.0 * ulp),
            Point2f::new(base + 2.0 * ulp, base + 2.0 * ulp), // interior-ish
        ];
        let fh = float_hull_2d(&pts, 0);
        let mut verts = fh.hull.clone();
        verts.sort_unstable();
        assert_eq!(verts, vec![0, 1, 2, 3], "{:?}", fh.hull);
    }

    #[test]
    fn depth_is_logarithmic_here_too() {
        let mut rng = generators::rng(8);
        let pts: Vec<Point2f> = (0..4000)
            .map(|_| Point2f::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let fh = float_hull_2d(&pts, 2);
        let hn: f64 = (1..=4000).map(|i| 1.0 / i as f64).sum();
        assert!((fh.dep_depth as f64) < 30.0 * hn, "depth {}", fh.dep_depth);
    }

    #[test]
    #[should_panic(expected = "collinear")]
    fn fully_collinear_panics() {
        let pts: Vec<Point2f> = (0..5)
            .map(|i| Point2f::new(i as f64, 2.0 * i as f64))
            .collect();
        float_hull_2d(&pts, 0);
    }
}
