//! E4: the paper's Figure 1 worked example, asserted event by event.
//!
//! Hull `u-v-w-x-y-z-t` exists; `a`, `b`, `c` are inserted in order.
//! Expected (Section 5.3):
//! * round 1: `v-c` replaces `v-w`, `w-b` replaces `w-x`, `x-a` replaces
//!   `x-y`, `a-z` replaces `y-z` (all in parallel);
//! * round 2: `b-a` replaces `x-a`, `c-z` replaces `a-z`;
//! * round 3: `c` buries `w-b` and `b-a`; `v-c`/`c-z` finalize.

use convex_hull_suite::core::par::rounds::rounds_hull_from;
use convex_hull_suite::core::par::TraceEvent;
use convex_hull_suite::geometry::PointSet;

const NAMES: [&str; 10] = ["u", "v", "w", "x", "y", "z", "t", "a", "b", "c"];

fn figure1_points() -> PointSet {
    PointSet::from_rows(
        2,
        &[
            vec![0, 0],   // u
            vec![0, 10],  // v
            vec![4, 14],  // w
            vec![9, 15],  // x
            vec![14, 13], // y
            vec![17, 8],  // z
            vec![12, -3], // t
            vec![15, 16], // a
            vec![10, 18], // b
            vec![10, 50], // c
        ],
    )
}

fn name(v: u32) -> &'static str {
    NAMES[v as usize]
}

fn edge_name(vs: &[u32]) -> String {
    let mut names: Vec<&str> = vs.iter().map(|&v| name(v)).collect();
    names.sort_unstable();
    names.join("-")
}

#[test]
fn figure1_rounds_match_paper() {
    let pts = figure1_points();
    let run = rounds_hull_from(&pts, 7, true);

    // Collect replace events per round as (new, old) name pairs.
    let replaces = |round: usize| -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = run
            .trace
            .iter()
            .filter_map(|(r, ev)| match ev {
                TraceEvent::Replace { old, new, .. } if *r == round => {
                    Some((edge_name(new), edge_name(old)))
                }
                _ => None,
            })
            .collect();
        v.sort();
        v
    };

    // Round 1: v-c, w-b, x-a, a-z added (figure (a) -> (b)).
    assert_eq!(
        replaces(1),
        vec![
            ("a-x".to_string(), "x-y".to_string()),
            ("a-z".to_string(), "y-z".to_string()),
            ("b-w".to_string(), "w-x".to_string()),
            ("c-v".to_string(), "v-w".to_string()),
        ]
    );

    // Round 1 also buries the interior corner x-y / y-z (both see `a`).
    let round1_buries: Vec<_> = run
        .trace
        .iter()
        .filter(|(r, ev)| *r == 1 && matches!(ev, TraceEvent::Bury { .. }))
        .collect();
    assert_eq!(round1_buries.len(), 1);
    if let (_, TraceEvent::Bury { t1, t2, pivot, .. }) = round1_buries[0] {
        let mut pair = vec![edge_name(t1), edge_name(t2)];
        pair.sort();
        assert_eq!(pair, vec!["x-y", "y-z"]);
        assert_eq!(name(*pivot), "a");
    }

    // Round 2: b-a replaces x-a; c-z replaces a-z (figure (b) -> (c)).
    assert_eq!(
        replaces(2),
        vec![
            ("a-b".to_string(), "a-x".to_string()),
            ("c-z".to_string(), "a-z".to_string()),
        ]
    );

    // Round 3: c buries w-b and b-a (figure (c) -> (d)); no new facets.
    assert_eq!(replaces(3), vec![]);
    let round3_bury = run.trace.iter().find(|(r, ev)| {
        *r == 3
            && matches!(ev, TraceEvent::Bury { t1, t2, pivot, .. }
            if name(*pivot) == "c" && {
                let mut p = vec![edge_name(t1), edge_name(t2)];
                p.sort();
                p == vec!["a-b", "b-w"]
            })
    });
    assert!(
        round3_bury.is_some(),
        "round 3 must bury w-b and b-a by c: {:?}",
        run.trace
    );

    // Round 3 finalizes the corner v-c / c-z.
    let vc_cz_final = run.trace.iter().any(|(r, ev)| {
        *r == 3
            && matches!(ev, TraceEvent::Finalize { t1, t2, .. } if {
                let mut p = vec![edge_name(t1), edge_name(t2)];
                p.sort();
                p == vec!["c-v", "c-z"]
            })
    });
    assert!(
        vc_cz_final,
        "v-c / c-z must finalize in round 3: {:?}",
        run.trace
    );

    // Exactly the paper's six facets are created (four in round 1, two in
    // round 2), and the final hull is u-v, v-c, c-z, z-t, t-u.
    assert_eq!(run.stats.facets_created, 7 + 6);
    let mut hull: Vec<String> = run
        .output
        .facets
        .iter()
        .map(|f| edge_name(&f[..2]))
        .collect();
    hull.sort();
    assert_eq!(hull, vec!["c-v", "c-z", "t-u", "t-z", "u-v"]);
}

#[test]
fn figure1_async_parallel_same_hull() {
    // The asynchronous Algorithm 3 on the full input (seed simplex start)
    // produces the same final hull.
    use convex_hull_suite::core::par::{parallel_hull, ParOptions};
    use convex_hull_suite::core::seq::incremental_hull_run;
    let pts = figure1_points();
    let seq = incremental_hull_run(&pts);
    let par = parallel_hull(&pts, ParOptions::default());
    assert_eq!(seq.output.canonical(), par.output.canonical());
    let verts: Vec<&str> = seq.output.vertices().iter().map(|&v| name(v)).collect();
    assert_eq!(verts, vec!["u", "v", "z", "t", "c"]);
}
