//! End-to-end serving correctness: several concurrent clients stream a
//! point set into one shard over loopback TCP, and the served hull must be
//! **bit-identical** (as a set of facet coordinate tuples) to the offline
//! sequential Algorithm 2 (`seq::incremental_hull_run`) on the same
//! multiset. Both paths run the same staged exact kernel, so agreement is
//! exact, not approximate — insertion order (client interleaving vs. the
//! offline random order) must not matter.

use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::generators;
use convex_hull_suite::geometry::PointSet;
use convex_hull_suite::service::{
    serve, HullClient, MutationBatch, ServeOptions, ServiceConfig, SnapshotReply,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const CLIENTS: usize = 4;

fn opts(dim: usize, queue_capacity: usize, max_batch: usize) -> ServeOptions {
    ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 2,
            queue_capacity,
            max_batch,
            workers: 2,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A hull as an order-free set of facets, each facet the sorted list of its
/// vertices' coordinate rows. Vertex *ids* differ between the served and
/// offline runs (different insertion orders), coordinates cannot.
fn canonical(facets: impl Iterator<Item = Vec<Vec<i64>>>) -> BTreeSet<Vec<Vec<i64>>> {
    facets
        .map(|mut f| {
            f.sort();
            f
        })
        .collect()
}

fn canonical_offline(pts: &PointSet) -> BTreeSet<Vec<Vec<i64>>> {
    let run = incremental_hull_run(pts);
    let dim = pts.dim();
    canonical(run.output.facets.iter().map(|f| {
        f[..dim]
            .iter()
            .map(|&v| pts.point(v as usize).to_vec())
            .collect()
    }))
}

fn canonical_served(snap: &SnapshotReply) -> BTreeSet<Vec<Vec<i64>>> {
    canonical(
        snap.facets
            .iter()
            .map(|f| f.iter().map(|&v| snap.points[v as usize].clone()).collect()),
    )
}

/// Stream `pts` into shard 0 from `CLIENTS` concurrent connections, then
/// compare the served snapshot against the offline hull.
fn roundtrip(pts: PointSet, queue_capacity: usize, max_batch: usize) -> u64 {
    let mut server = serve(opts(pts.dim(), queue_capacity, max_batch)).unwrap();
    let addr = server.local_addr();
    let n = pts.len();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let rejections = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let rows = &rows;
            let rejections = Arc::clone(&rejections);
            s.spawn(move || {
                let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
                for row in rows.iter().skip(c).step_by(CLIENTS) {
                    let r = client
                        .mutate(0, MutationBatch::new().insert(row.clone()))
                        .unwrap();
                    rejections.fetch_add(r.rejections, Ordering::Relaxed);
                }
            });
        }
    });
    let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
    client.flush(0).unwrap();
    let snap = client.snapshot(0).unwrap();
    assert_eq!(snap.points.len(), n, "every enqueued point must be applied");
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "served hull differs from offline Algorithm 2"
    );
    // The shard multiset must match too, order aside.
    let mut served_rows = snap.points.clone();
    let mut sent_rows = rows;
    served_rows.sort();
    sent_rows.sort();
    assert_eq!(served_rows, sent_rows);
    server.shutdown();
    rejections.load(Ordering::Relaxed)
}

#[test]
fn concurrent_clients_match_offline_2d() {
    roundtrip(generators::cube_d(2, 600, 1_000_000, 7), 256, 64);
}

#[test]
fn concurrent_clients_match_offline_3d() {
    roundtrip(generators::ball_d(3, 400, 1_000_000, 11), 256, 64);
}

#[test]
fn backpressure_preserves_exactly_once() {
    // A 2-slot queue with 1-item batches forces Overloaded replies under 4
    // hammering clients; insert_retry absorbs them, and the hull must still
    // match the offline run exactly (no loss, no duplication).
    let rejections = roundtrip(generators::cube_d(2, 240, 1_000_000, 13), 2, 1);
    // Not asserted > 0: rejection count depends on scheduling. The exact-
    // hull assertions above are the invariant; this just surfaces activity.
    eprintln!("backpressure test absorbed {rejections} Overloaded replies");
}
