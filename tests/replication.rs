//! Replicated serving end-to-end: journal shipping to follower
//! replicas, staleness-bounded reads, client fallback failover, the
//! `hull route` front end, follower self-promotion, and a kill-a-node
//! chaos run against real `hull serve` processes.
//!
//! The invariant under test everywhere (DESIGN §S20): because journal
//! batch units are order-independent (Theorem 4.2) and duplicate points
//! never change a hull, a follower may fetch units late, twice, or not
//! at all for a while — dropped shipments, dropped applies, link loss,
//! puller death — and still converge **bit-identical** (as a set of
//! facet coordinate tuples) to the offline sequential Algorithm 2 on
//! the primary's point multiset. Staleness meanwhile is bounded
//! in-band: reads served while the follower trails are wrapped in the
//! wire v5 `Stale { lag }` status.
//!
//! The failpoint registry is process-global, so every test here takes a
//! shared mutex before touching a server (armed or not — a concurrent
//! armed test would leak faults into an unarmed one).

use convex_hull_suite::concurrent::failpoint::{self, sites, FaultPlan, SiteSpec};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};
use convex_hull_suite::service::{
    route, serve, FollowOptions, HullClient, MutationBatch, RouterOptions, ServeOptions,
    ServiceConfig, SnapshotReply,
};
use std::collections::BTreeSet;
use std::io::BufRead;
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Serialize tests: the failpoint registry is process-global and the
/// box is small — replication clusters should not time-share.
fn repl_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn opts(dim: usize) -> ServeOptions {
    ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 256,
            max_batch: 16,
            workers: 2,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn follower_opts(dim: usize, primary: SocketAddr, promote_after: u32) -> ServeOptions {
    ServeOptions {
        follow: Some(FollowOptions {
            primary: primary.to_string(),
            poll: Duration::from_millis(1),
            connect_deadline: Duration::from_millis(500),
            promote_after,
        }),
        ..opts(dim)
    }
}

/// A hull as an order-free set of facets, each facet the sorted list of
/// its vertices' coordinate rows — vertex ids differ between nodes that
/// applied units in different interleavings; coordinates cannot.
fn canonical(facets: impl Iterator<Item = Vec<Vec<i64>>>) -> BTreeSet<Vec<Vec<i64>>> {
    facets
        .map(|mut f| {
            f.sort();
            f
        })
        .collect()
}

fn canonical_offline(pts: &PointSet) -> BTreeSet<Vec<Vec<i64>>> {
    let run = incremental_hull_run(pts);
    let dim = pts.dim();
    canonical(run.output.facets.iter().map(|f| {
        f[..dim]
            .iter()
            .map(|&v| pts.point(v as usize).to_vec())
            .collect()
    }))
}

fn canonical_served(snap: &SnapshotReply) -> BTreeSet<Vec<Vec<i64>>> {
    canonical(
        snap.facets
            .iter()
            .map(|f| f.iter().map(|&v| snap.points[v as usize].clone()).collect()),
    )
}

fn rows_of(pts: &PointSet) -> Vec<Vec<i64>> {
    (0..pts.len()).map(|i| pts.point(i).to_vec()).collect()
}

fn connect(addr: SocketAddr) -> HullClient {
    HullClient::builder(addr.to_string())
        .deadline(Duration::from_secs(2))
        .connect()
        .expect("connect")
}

fn insert_all(c: &mut HullClient, rows: &[Vec<i64>]) {
    for row in rows {
        c.mutate(0, MutationBatch::new().insert(row.clone()))
            .expect("insert");
    }
    c.flush(0).expect("flush");
}

/// Poll `cond` for up to 15 s (generous: the box is one core and chaos
/// backoff caps at 200 ms).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < Duration::from_secs(15) {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Dropped shipments, dropped applies, and link resubscribes must not
/// keep a follower from converging bit-identical to offline Algorithm 2
/// — and while it trails, its reads carry the `Stale { lag }` bound.
#[test]
fn follower_converges_bit_identical_and_bounds_staleness() {
    let _guard = repl_lock();
    let pts = generators::cube_d(2, 96, 1_000_000, 11);
    let rows = rows_of(&pts);

    let mut primary = serve(opts(2)).unwrap();
    let mut pc = connect(primary.local_addr());
    insert_all(&mut pc, &rows);
    let primary_units = primary.service().batch_units(0).unwrap();
    assert!(primary_units >= 1, "workload produced no batch units");

    // Phase 1: every fetched unit is dropped before apply — the
    // follower learns the primary's total but applies nothing, so its
    // reads must carry the full lag as the staleness bound.
    failpoint::arm(FaultPlan::new(0xA11CE).site(
        sites::REPL_APPLY,
        SiteSpec {
            full_ppm: 1_000_000,
            ..SiteSpec::default()
        },
    ));
    let mut follower = serve(follower_opts(2, primary.local_addr(), 0)).unwrap();
    let state = follower.replica_state().expect("follower has a puller");
    wait_until("drops to accumulate", || state.dropped() >= 3);
    assert_eq!(state.applied(), 0, "dropped units must not be applied");

    let mut fc = connect(follower.local_addr());
    let snap = fc.snapshot(0).unwrap();
    assert!(snap.points.is_empty(), "nothing applied yet");
    assert_eq!(
        fc.last_stale(),
        Some(primary_units),
        "read while fully behind must carry the whole lag as its bound"
    );

    // Phase 2: link heals; the follower resumes from its own batch
    // count, re-fetches what it dropped, and converges.
    failpoint::disarm();
    wait_until("follower to catch up", || {
        follower.service().batch_units(0).unwrap() == primary_units
    });
    assert!(state.applied() >= primary_units);
    let snap = fc.snapshot(0).unwrap();
    assert_eq!(fc.last_stale(), None, "caught-up reads are not stale");
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "converged follower differs from offline Algorithm 2"
    );

    // Phase 3: the primary keeps ingesting while its shipping side
    // drops frames (`Overloaded` → counted resubscribe-with-resume).
    failpoint::arm(FaultPlan::new(0xBEEF).site(
        sites::REPL_SHIP,
        SiteSpec {
            full_ppm: 400_000,
            max_fires: 6,
            ..SiteSpec::default()
        },
    ));
    let more = generators::cube_d(2, 64, 1_000_000, 12);
    insert_all(&mut pc, &rows_of(&more));
    let grown = primary.service().batch_units(0).unwrap();
    assert!(grown > primary_units);
    wait_until("follower to catch up through dropped shipments", || {
        follower.service().batch_units(0).unwrap() == grown
    });
    failpoint::disarm();
    assert!(
        state.resubscribes() >= 1,
        "dropped shipments must surface as counted resubscribes"
    );

    let mut all = PointSet::from_rows(2, &rows);
    for row in rows_of(&more) {
        all.push(&row);
    }
    assert_eq!(
        canonical_served(&fc.snapshot(0).unwrap()),
        canonical_offline(&all),
        "follower diverged from offline Algorithm 2 after link chaos"
    );

    follower.shutdown();
    primary.shutdown();
}

/// Satellite: a client with ordered fallback addresses redials through
/// them when its primary dies mid-session, re-handshakes on the new
/// node, and keeps answering.
#[test]
fn client_fails_over_to_fallback_follower() {
    let _guard = repl_lock();
    failpoint::disarm();
    let pts = generators::cube_d(2, 48, 1_000_000, 21);

    let mut primary = serve(opts(2)).unwrap();
    let mut pc = connect(primary.local_addr());
    insert_all(&mut pc, &rows_of(&pts));
    let units = primary.service().batch_units(0).unwrap();
    let mut follower = serve(follower_opts(2, primary.local_addr(), 0)).unwrap();
    wait_until("follower to catch up", || {
        follower.service().batch_units(0).unwrap() == units
    });

    let mut c = HullClient::builder(primary.local_addr().to_string())
        .fallback(follower.local_addr().to_string())
        .deadline(Duration::from_secs(2))
        .connect()
        .unwrap();
    let far = vec![3_000_000i64, 3_000_000];
    assert_eq!(c.contains(0, &far).unwrap(), Some(false));
    assert_eq!(c.failovers(), 0);

    primary.shutdown();
    // The next call hits the dead connection, redials the (refused)
    // primary, then fails over to the follower and resends.
    assert_eq!(
        c.contains(0, &far).unwrap(),
        Some(false),
        "failover must resume the interrupted call"
    );
    assert_eq!(c.failovers(), 1, "exactly one fallback switch");
    assert_eq!(
        c.last_stale(),
        None,
        "the follower was caught up when its primary died — lag 0"
    );

    follower.shutdown();
}

/// Tentpole: the `route` front end keeps reads available when the
/// primary dies — writes route to the surviving node (which refuses
/// them until it promotes), and the router's failover count moves.
#[test]
fn router_keeps_reads_available_through_primary_death() {
    let _guard = repl_lock();
    failpoint::disarm();
    let pts = generators::cube_d(2, 64, 1_000_000, 31);
    let rows = rows_of(&pts);

    let mut primary = serve(opts(2)).unwrap();
    let mut follower = serve(follower_opts(2, primary.local_addr(), 0)).unwrap();
    let mut router = route(RouterOptions {
        addr: "127.0.0.1:0".to_string(),
        nodes: vec![
            primary.local_addr().to_string(),
            follower.local_addr().to_string(),
        ],
        probe_interval: Duration::from_millis(50),
        deadline: Duration::from_millis(500),
    })
    .unwrap();

    // Writes through the router land on the primary and replicate out.
    let mut rc = connect(router.local_addr());
    insert_all(&mut rc, &rows);
    let units = primary.service().batch_units(0).unwrap();
    assert!(units >= 1);
    wait_until("follower to catch up", || {
        follower.service().batch_units(0).unwrap() == units
    });
    assert_eq!(
        canonical_served(&rc.snapshot(0).unwrap()),
        canonical_offline(&pts),
        "routed read differs from offline Algorithm 2"
    );
    assert!(router.forwarded() > 0);

    primary.shutdown();
    // Reads stay available: whichever node the ring owner was, the
    // surviving follower answers (the router marks the dead node down
    // on first failure and retries immediately).
    let snap = rc.snapshot(0).expect("reads must survive the primary");
    assert_eq!(canonical_served(&snap), canonical_offline(&pts));

    // Writes deterministically fail over to the follower, which — not
    // yet promoted — refuses them in-band; the failover still counts.
    let err = loop {
        match rc.mutate(0, MutationBatch::new().insert(rows[0].clone())) {
            Ok(_) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => break e,
        }
    };
    assert!(
        err.to_string().contains("read-only follower replica"),
        "unexpected write-path error: {err}"
    );
    assert!(router.failovers() >= 1, "failover must be counted");

    router.shutdown();
    follower.shutdown();
}

/// A follower whose primary stays unreachable for `promote_after`
/// consecutive resubscribes promotes itself: leaves read-only mode,
/// accepts writes, and its epochs stay monotone (the follower's epoch
/// is its mirrored batch count).
#[test]
fn follower_promotes_and_accepts_writes() {
    let _guard = repl_lock();
    failpoint::disarm();
    let pts = generators::cube_d(2, 48, 1_000_000, 41);
    let rows = rows_of(&pts);

    let mut primary = serve(opts(2)).unwrap();
    let mut pc = connect(primary.local_addr());
    insert_all(&mut pc, &rows);
    let units = primary.service().batch_units(0).unwrap();
    let mut follower = serve(follower_opts(2, primary.local_addr(), 3)).unwrap();
    let state = follower.replica_state().unwrap();
    wait_until("follower to catch up", || {
        follower.service().batch_units(0).unwrap() == units
    });
    let epoch_before = follower.service().snapshot(0).unwrap().epoch;

    primary.shutdown();
    wait_until("self-promotion", || state.promoted());
    assert!(
        !follower.service().is_read_only(),
        "a promoted follower serves writes"
    );

    let more = generators::cube_d(2, 24, 1_000_000, 42);
    let mut fc = connect(follower.local_addr());
    insert_all(&mut fc, &rows_of(&more));
    let epoch_after = fc.flush(0).unwrap();
    assert!(
        epoch_after > epoch_before,
        "epochs must stay monotone across promotion ({epoch_before} -> {epoch_after})"
    );
    assert_eq!(
        fc.last_stale(),
        None,
        "a promoted node's reads are not stale"
    );

    let mut all = PointSet::from_rows(2, &rows);
    for row in rows_of(&more) {
        all.push(&row);
    }
    assert_eq!(
        canonical_served(&fc.snapshot(0).unwrap()),
        canonical_offline(&all),
        "promoted hull differs from offline Algorithm 2"
    );
    follower.shutdown();
}

/// A follower armed with `bulk_threshold` bootstraps its empty shard by
/// pulling the primary's whole journaled prefix and installing it
/// through one bulk divide-and-conquer build — while still mirroring
/// every batch unit 1:1, so the resume cursor, incremental tail
/// replication, and the converged hull are all exactly what per-unit
/// pulling would have produced.
#[test]
fn follower_bootstraps_via_bulk_build() {
    use std::sync::atomic::Ordering;
    let _guard = repl_lock();
    failpoint::disarm();
    let pts = generators::cube_d(2, 400, 1_000_000, 61);
    let rows = rows_of(&pts);

    let mut primary = serve(opts(2)).unwrap();
    let mut pc = connect(primary.local_addr());
    insert_all(&mut pc, &rows);
    let units = primary.service().batch_units(0).unwrap();
    assert!(units >= 2, "bootstrap needs a multi-unit journal");

    let mut fopts = follower_opts(2, primary.local_addr(), 0);
    fopts.config.bulk_threshold = 1;
    let mut follower = serve(fopts).unwrap();
    let state = follower.replica_state().unwrap();
    wait_until("follower to bootstrap", || {
        follower.service().batch_units(0).unwrap() == units
    });
    let fservice = follower.service();
    let stats = fservice.stats_for(0).unwrap();
    assert_eq!(
        stats.bulk_builds.load(Ordering::Relaxed),
        1,
        "bootstrap must take exactly one bulk build"
    );
    assert!(stats.bulk_pruned.load(Ordering::Relaxed) > 0);
    assert_eq!(
        state.applied(),
        units,
        "bootstrap must mirror every batch unit"
    );
    let mut fc = connect(follower.local_addr());
    assert_eq!(
        canonical_served(&fc.snapshot(0).unwrap()),
        canonical_offline(&pts)
    );

    // The tail after bootstrap replicates unit-by-unit as usual.
    let more = generators::cube_d(2, 48, 1_000_000, 62);
    insert_all(&mut pc, &rows_of(&more));
    let grown = primary.service().batch_units(0).unwrap();
    wait_until("incremental tail after bootstrap", || {
        follower.service().batch_units(0).unwrap() == grown
    });
    assert_eq!(
        stats.bulk_builds.load(Ordering::Relaxed),
        1,
        "the incremental tail must not re-trigger bulk builds"
    );
    let mut all = PointSet::from_rows(2, &rows);
    for row in rows_of(&more) {
        all.push(&row);
    }
    assert_eq!(
        canonical_served(&fc.snapshot(0).unwrap()),
        canonical_offline(&all),
        "bulk-bootstrapped follower diverged on the incremental tail"
    );
    follower.shutdown();
    primary.shutdown();
}

/// SIGKILL a child process on drop: chaos teardown must not leak
/// servers when an assertion fails mid-test.
struct KillOnDrop(std::process::Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn `hull serve` with `extra` flags and parse the bound address
/// off its stderr announcement.
fn spawn_hull_serve(extra: &[&str]) -> (KillOnDrop, SocketAddr) {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_hull"));
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--dim",
        "2",
        "--shards",
        "1",
    ])
    .args(extra)
    .stdin(std::process::Stdio::null())
    .stdout(std::process::Stdio::null())
    .stderr(std::process::Stdio::piped());
    let mut child = cmd.spawn().expect("spawning hull serve");
    let stderr = child.stderr.take().unwrap();
    let mut lines = std::io::BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("hull serve exited before announcing its address")
            .expect("child stderr");
        if let Some(rest) = line.strip_prefix("hull: listening on ") {
            break rest.trim().parse().expect("announced address");
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        for l in lines.map_while(Result::ok) {
            eprintln!("[child] {l}");
        }
    });
    (KillOnDrop(child), addr)
}

/// The kill-a-node chaos drill, against real processes: SIGKILL the
/// primary mid-cluster, assert reads stay available on the follower
/// throughout, and that after self-promotion the promoted hull is
/// bit-identical to offline Algorithm 2 on the primary's points.
#[test]
fn sigkill_primary_promoted_follower_serves_identical_hull() {
    let _guard = repl_lock();
    let pts = generators::cube_d(2, 64, 1_000_000, 51);
    let rows = rows_of(&pts);

    let (mut primary, paddr) = spawn_hull_serve(&[]);
    let (_follower, faddr) =
        spawn_hull_serve(&["--follow", &paddr.to_string(), "--promote-after", "5"]);

    let mut pc = connect(paddr);
    insert_all(&mut pc, &rows);
    let (_, total, _, _) = pc.repl_fetch(0, u64::MAX).unwrap();
    assert!(total >= 1);

    // The follower serves the v5 replication surface too — its own
    // batch-unit total is the catch-up cursor, observable externally.
    let mut fc = connect(faddr);
    wait_until("follower process to catch up", || {
        fc.repl_fetch(0, u64::MAX).map(|(_, t, _, _)| t).ok() == Some(total)
    });

    // Kill -9: no drain, no goodbye. The degraded window starts here.
    primary.0.kill().expect("SIGKILL primary");
    let _ = primary.0.wait();

    // Availability through the window: the follower answers reads
    // immediately (read-only, lag 0 — its primary died caught-up).
    let snap = fc.snapshot(0).expect("reads must survive the kill");
    assert_eq!(canonical_served(&snap), canonical_offline(&pts));

    // Writes start succeeding exactly when the follower promotes. A
    // duplicate of an existing point is the probe — harmless to the
    // hull by Theorem 4.2, whatever moment it lands.
    wait_until("follower self-promotion", || {
        fc.mutate(0, MutationBatch::new().insert(rows[0].clone()))
            .is_ok()
    });
    fc.flush(0).unwrap();
    let snap = fc.snapshot(0).unwrap();
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "promoted hull differs from offline Algorithm 2 after SIGKILL"
    );
    fc.shutdown_server().unwrap();
}

/// Tentpole: deletes replicate. Tombstone units ship typed (wire v6
/// `ReplUnitFetch`), a tombstone-ratio or hull-invalidating rebuild on
/// the primary ships a **checkpoint** unit that collapses the dead
/// history, and the follower — bootstrapping *after* all of it — must
/// converge canonically to offline Algorithm 2 on the survivors alone.
/// When the primary then dies, the promoted follower keeps serving the
/// survivor hull and accepts new mutations.
#[test]
fn follower_mirrors_deletes_and_checkpoints() {
    let _guard = repl_lock();
    failpoint::disarm();
    let pts = generators::cube_d(2, 120, 1_000_000, 53);
    let rows = rows_of(&pts);

    let mut primary = serve(opts(2)).unwrap();
    let mut pc = connect(primary.local_addr());
    insert_all(&mut pc, &rows);
    // Delete two thirds of the rows — hull vertices among them, so at
    // least one rebuild fires (hull-invalidating tombstone or the
    // tombstone-ratio trigger) and checkpoints the journal.
    let doomed = &rows[..80];
    for chunk in doomed.chunks(16) {
        let mut b = MutationBatch::new();
        for p in chunk {
            b = b.delete(p.clone());
        }
        pc.mutate(0, b).unwrap();
    }
    pc.flush(0).unwrap();
    let rebuilds = primary
        .service()
        .stats_for(0)
        .unwrap()
        .rebuilds
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        rebuilds >= 1,
        "deleting hull vertices must have forced a survivor rebuild"
    );
    let units = primary.service().batch_units(0).unwrap();
    let survivors = PointSet::from_rows(2, &rows[80..]);

    // Fresh follower: everything it pulls is post-hoc — the checkpoint
    // unit (skipping the dead history) plus whatever ops units remain.
    let mut follower = serve(follower_opts(2, primary.local_addr(), 2)).unwrap();
    wait_until("follower to mirror deletes and checkpoints", || {
        follower.service().batch_units(0).unwrap() == units
    });
    let mut fc = connect(follower.local_addr());
    assert_eq!(
        canonical_served(&fc.snapshot(0).unwrap()),
        canonical_offline(&survivors),
        "follower hull differs from offline Algorithm 2 on the survivors"
    );

    // Failover: the primary dies; the follower promotes and keeps
    // serving the survivor hull. The promotion probe is a duplicate of
    // a surviving point — canonically harmless whenever it lands.
    primary.shutdown();
    wait_until("follower self-promotion", || {
        fc.mutate(0, MutationBatch::new().insert(rows[80].clone()))
            .is_ok()
    });
    // New mutations flow on the promoted node: insert a far-outside
    // point and delete it again — the hull must end where it started.
    fc.mutate(
        0,
        MutationBatch::new()
            .insert([3_000_000, 3_000_000])
            .delete([3_000_000, 3_000_000]),
    )
    .unwrap();
    fc.flush(0).unwrap();
    assert_eq!(
        canonical_served(&fc.snapshot(0).unwrap()),
        canonical_offline(&survivors),
        "promoted follower lost the survivor hull after post-failover churn"
    );
    follower.shutdown();
}
