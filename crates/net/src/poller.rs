//! The readiness abstraction: a [`Poller`] multiplexes "this descriptor
//! can make progress" notifications over many sockets, a [`Waker`] lets
//! other threads interrupt a blocked [`Poller::wait`].
//!
//! Two implementations:
//!
//! * [`Epoll`] (Linux): one `epoll` instance, level-triggered. Level
//!   (not edge) triggering keeps the reactor honest — a readable socket
//!   keeps reporting readable until drained, so a short read can never
//!   strand bytes in the kernel waiting for a wakeup that won't come.
//! * [`PollFallback`] (other unix): `poll(2)` over a registration table
//!   behind a mutex. Slower (O(n) per wait) but semantically identical;
//!   it exists so the crate builds and tests anywhere, and doubles as a
//!   differential oracle for the epoll wrapper in tests.
//!
//! [`poller()`] picks the best available implementation at runtime.

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Caller-chosen identifier echoed back on every [`Event`] for a
/// registered descriptor. The reactor uses slab keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or a peer hangup).
    pub readable: bool,
    /// Wake when the descriptor can accept bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but parked: no wakeups until re-registered (used to
    /// pause reads under backpressure without an epoll_ctl DEL/ADD
    /// churn).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: Token,
    /// Bytes (or EOF) available to read.
    pub readable: bool,
    /// Socket buffer has room to write.
    pub writable: bool,
    /// The descriptor is in an error state (`EPOLLERR`).
    pub error: bool,
    /// Peer hung up (`EPOLLHUP`/`EPOLLRDHUP`): read until EOF and close.
    pub hangup: bool,
}

/// A readiness multiplexer. All methods take `&self`: registration may
/// race with a concurrent [`wait`](Poller::wait) on another thread
/// (epoll permits this natively; the fallback serializes internally).
pub trait Poller: Send + Sync {
    /// Start watching `fd` with the given interest.
    fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;
    /// Change the interest set of an already-registered `fd`.
    fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()>;
    /// Stop watching `fd` (must precede closing it).
    fn deregister(&self, fd: RawFd) -> io::Result<()>;
    /// Block until readiness or timeout; append events to `out` and
    /// return how many were appended. `None` blocks indefinitely.
    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize>;
    /// Implementation name for logs and bench rows ("epoll"/"poll").
    fn name(&self) -> &'static str;
}

fn timeout_ms(timeout: Option<Duration>) -> sys::c_int {
    match timeout {
        // Round up so a 100µs timeout still sleeps, and saturate
        // instead of wrapping for very long timeouts.
        Some(t) => t.as_millis().max(1).min(i32::MAX as u128) as sys::c_int,
        None => -1,
    }
}

/// The Linux epoll-backed poller.
#[cfg(target_os = "linux")]
pub struct Epoll {
    ep: sys::OwnedRawFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// Create a fresh epoll instance.
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            ep: sys::sys_epoll_create()?,
        })
    }

    fn mask(interest: Interest) -> u32 {
        // EPOLLRDHUP so a peer's half-close surfaces as `hangup` even
        // when we are not currently asking for readable.
        let mut m = sys::EPOLLRDHUP;
        if interest.readable {
            m |= sys::EPOLLIN;
        }
        if interest.writable {
            m |= sys::EPOLLOUT;
        }
        m
    }
}

#[cfg(target_os = "linux")]
impl Poller for Epoll {
    fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.ep.0,
            sys::EPOLL_CTL_ADD,
            fd,
            Self::mask(interest),
            token.0 as u64,
        )
    }

    fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        sys::sys_epoll_ctl(
            self.ep.0,
            sys::EPOLL_CTL_MOD,
            fd,
            Self::mask(interest),
            token.0 as u64,
        )
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        sys::sys_epoll_ctl(self.ep.0, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut buf = [sys::EpollEvent { events: 0, u64: 0 }; 256];
        let n = loop {
            match sys::sys_epoll_wait(self.ep.0, &mut buf, timeout_ms(timeout)) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if timeout.is_some() {
                        break 0; // let the caller re-evaluate deadlines
                    }
                }
                Err(e) => return Err(e),
            }
        };
        for ev in &buf[..n] {
            // Copy out of the packed struct before taking references.
            let (bits, data) = (ev.events, ev.u64);
            out.push(Event {
                token: Token(data as usize),
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                error: bits & sys::EPOLLERR != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "epoll"
    }
}

/// Portable `poll(2)` fallback: a mutex-guarded registration table
/// rebuilt into a `pollfd` array per wait.
pub struct PollFallback {
    table: std::sync::Mutex<Vec<(RawFd, Token, Interest)>>,
}

impl PollFallback {
    /// Create an empty fallback poller.
    pub fn new() -> io::Result<PollFallback> {
        Ok(PollFallback {
            table: std::sync::Mutex::new(Vec::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(RawFd, Token, Interest)>> {
        match self.table.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl Poller for PollFallback {
    fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut t = self.lock();
        if t.iter().any(|&(f, _, _)| f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        t.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut t = self.lock();
        match t.iter_mut().find(|(f, _, _)| *f == fd) {
            Some(slot) => {
                *slot = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut t = self.lock();
        let before = t.len();
        t.retain(|&(f, _, _)| f != fd);
        if t.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let snapshot: Vec<(RawFd, Token, Interest)> = self.lock().clone();
        let mut fds: Vec<sys::PollFd> = snapshot
            .iter()
            .map(|&(fd, _, i)| sys::PollFd {
                fd,
                events: if i.readable { sys::POLLIN } else { 0 }
                    | if i.writable { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let n = match sys::sys_poll(&mut fds, timeout_ms(timeout)) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        if n > 0 {
            for (pfd, &(_, token, _)) in fds.iter().zip(&snapshot) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & sys::POLLIN != 0,
                    writable: pfd.revents & sys::POLLOUT != 0,
                    error: pfd.revents & sys::POLLERR != 0,
                    hangup: pfd.revents & sys::POLLHUP != 0,
                });
            }
        }
        Ok(n)
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

/// The best poller this platform offers.
pub fn poller() -> io::Result<Box<dyn Poller>> {
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(Epoll::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(PollFallback::new()?))
    }
}

/// Wakes a blocked [`Poller::wait`] from another thread.
///
/// Linux: an `eventfd` registered readable with the poller; `wake`
/// writes 1 (atomic, non-blocking, thread-safe) and the reactor drains
/// it when its token fires. The fallback uses an eventfd too on Linux
/// and is not constructed elsewhere in-tree (the fallback poller is
/// driven by finite timeouts instead).
#[cfg(target_os = "linux")]
pub struct Waker {
    efd: sys::OwnedRawFd,
}

#[cfg(target_os = "linux")]
impl Waker {
    /// Create a waker and register it with `poller` under `token`.
    pub fn new(poller: &dyn Poller, token: Token) -> io::Result<Waker> {
        let efd = sys::sys_eventfd()?;
        poller.register(efd.0, token, Interest::READABLE)?;
        Ok(Waker { efd })
    }

    /// Interrupt the poller; safe from any thread, any number of times.
    pub fn wake(&self) -> io::Result<()> {
        sys::sys_signal_eventfd(self.efd.0)
    }

    /// Clear the pending wakeup counter (reactor-side, on token fire).
    pub fn drain(&self) {
        sys::sys_drain_eventfd(self.efd.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let (b, _) = l.accept().unwrap();
        (a, b)
    }

    fn readiness_roundtrip(p: &dyn Poller) {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        p.register(b.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();
        let mut evs = Vec::new();
        // Nothing to read yet: times out empty.
        p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap();
        assert!(evs.iter().all(|e| !e.readable));
        a.write_all(b"ping").unwrap();
        evs.clear();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        let ev = evs.iter().find(|e| e.token == Token(7)).expect("event");
        assert!(ev.readable);
        // Level-triggered: still readable until drained.
        evs.clear();
        p.wait(&mut evs, Some(Duration::from_millis(50))).unwrap();
        assert!(evs.iter().any(|e| e.token == Token(7) && e.readable));
        let mut buf = [0u8; 16];
        let n = (&b).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        // Re-register write-only: fires writable.
        p.reregister(b.as_raw_fd(), Token(7), Interest::WRITABLE)
            .unwrap();
        evs.clear();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(evs.iter().any(|e| e.token == Token(7) && e.writable));
        p.deregister(b.as_raw_fd()).unwrap();
        evs.clear();
        p.wait(&mut evs, Some(Duration::from_millis(10))).unwrap();
        assert!(evs.is_empty(), "deregistered fd still firing");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_readiness_roundtrip() {
        readiness_roundtrip(&Epoll::new().unwrap());
    }

    #[test]
    fn poll_fallback_readiness_roundtrip() {
        readiness_roundtrip(&PollFallback::new().unwrap());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn waker_interrupts_wait_from_another_thread() {
        let p = Epoll::new().unwrap();
        let w = std::sync::Arc::new(Waker::new(&p, Token(0)).unwrap());
        let w2 = std::sync::Arc::clone(&w);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w2.wake().unwrap();
        });
        let mut evs = Vec::new();
        let t0 = std::time::Instant::now();
        p.wait(&mut evs, Some(Duration::from_secs(10))).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "waker did not fire");
        assert!(evs.iter().any(|e| e.token == Token(0) && e.readable));
        w.drain();
        t.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn hangup_reported_on_peer_close() {
        let p = Epoll::new().unwrap();
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        p.register(b.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        drop(a);
        let mut evs = Vec::new();
        p.wait(&mut evs, Some(Duration::from_secs(2))).unwrap();
        let ev = evs.iter().find(|e| e.token == Token(1)).expect("event");
        assert!(ev.hangup || ev.readable, "peer close invisible: {ev:?}");
    }
}
