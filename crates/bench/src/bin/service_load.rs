//! Load generator for the `chull-service` hull server (experiments E17,
//! E18, E20–E25).
//!
//! Starts an in-process server on loopback, streams a workload into one
//! shard from several concurrent client connections, then runs a mixed
//! query phase against the published snapshot. Records throughput and
//! client-observed latency percentiles per workload and writes them to a
//! JSON file (default `BENCH_service.json`).
//!
//! The E20 workloads (`batch_apply_*`) A/B the parallel in-shard batch
//! apply: the same stream goes through the pre-batching v1 serving path
//! (single inserts, one worker), through v2 `InsertBatch` frames on one
//! worker (coalescing alone), and through v2 frames on a 4-worker pool
//! (Algorithm 3 on the serving path) — timed to **applied** (flush
//! returns), not to enqueue ack.
//!
//! The E21 workload (`query_ab_near_circle_2d`) replays one mixed query
//! stream twice against the same published snapshot — once through the
//! wire-v3 `*_scan` linear-scan oracle ops, once through the default
//! history-descent path — asserts every reply bit-identical, and records
//! the latency A/B.
//!
//! The E18 workload (`chaos_recovery_2d`) arms a deterministic
//! failpoint that kills the shard worker exactly once, mid-stream, and
//! measures the cost of supervised recovery: journal-replay time, the
//! degraded-read window a polling reader observes, and the largest
//! insert-ack stall any client saw — then verifies the recovered hull
//! is bit-identical to the offline Algorithm 2 on the served points.
//!
//! The E22 workload (`service_fanin`) opens hundreds to tens of
//! thousands of concurrent connections from a single-threaded
//! `chull-net` poller client — one in-flight `Contains` per connection —
//! against the thread-per-connection back end (at a scale it can hold)
//! and the epoll event-loop back end (at 512 for the A/B and at the
//! full `--fanin` target), recording connect time, sustained
//! requests/sec, and per-request p50/p99.
//!
//! The E23 workload (`replicated_failover_2d`) stands up a replicated
//! cluster — a primary in a child process, an in-process follower
//! replica, and a `route` front end — ingests through the router, then
//! `SIGKILL`s the primary under a polling reader: it records the
//! read-unavailability window, the `Degraded`/`Stale` read counts, the
//! time until the self-promoted follower accepts writes again, and
//! verifies the promoted hull bit-identical to offline Algorithm 2.
//!
//! The E24 workload (`recovery_bulk`, via `--recovery-only`) writes an
//! n-insert WAL and A/Bs cold-start restart over it: incremental batch
//! replay (`--bulk-threshold 0`) vs the bulk divide-and-conquer
//! constructor (DESIGN §S21), asserting both restarts serve the
//! identical canonical hull.
//!
//! The E25 workload (`churn_2d`, via `--churn-only`) measures windowed
//! / deletion churn throughput vs window size over the v6 `Mutate`
//! envelope: an insert-only baseline, a server-side count-window arm,
//! and an explicit-delete arm per window size, each asserting the
//! served hull canonically identical to offline Algorithm 2 on the
//! surviving suffix.
//!
//! ```text
//! USAGE: service_load [--out FILE] [--clients C] [--quick]
//!                     [--fanin N] [--fanin-only] [--repl-only] [--recovery-only]
//!                     [--churn-only]
//! ```
//!
//! `--quick` shrinks the workloads for CI smoke runs; `--fanin-only`
//! runs just the E22 rows (the CI 10k-connection smoke); `--repl-only`
//! runs just the E23 kill-a-node drill; `--recovery-only` runs just the
//! E24 restart A/B (50k/200k/1M journals; 50k with `--quick`);
//! `--churn-only` runs just the E25 window-churn sweep.
//! Latencies are
//! *round-trip* (request written to reply decoded) over loopback TCP, so
//! they include wire encode/decode and the socket — the serving cost a
//! real client would see, not just the geometry.

use chull_concurrent::failpoint::{self, sites, FaultPlan, SiteSpec};
use chull_core::seq::incremental_hull_run;
use chull_core::telemetry::engine_metrics;
use chull_geometry::generators;
use chull_geometry::PointSet;
use chull_service::{
    serve, HullClient, Mutation, MutationBatch, ServeOptions, ServiceConfig, WindowPolicy,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One workload's measured figures.
struct LoadResult {
    workload: String,
    dim: usize,
    n_points: usize,
    clients: usize,
    inserts_per_sec: f64,
    insert_p50_us: f64,
    insert_p99_us: f64,
    overloaded: u64,
    n_queries: usize,
    queries_per_sec: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    hull_facets: usize,
    /// Per-insert dependence-depth window for this workload, from the
    /// `chull_insert_dep_depth{engine="online"}` histogram (0s when the
    /// `no-obs` build disarms telemetry).
    dep_depth_records: u64,
    dep_depth_p50: u64,
    dep_depth_max: u64,
    /// `H_n`, the harmonic number of the workload size — Theorem 4.2
    /// bounds the expected dependence depth by `O(σ·H_n)`.
    harmonic_h_n: f64,
}

/// `H_n = Σ_{k=1..n} 1/k`.
fn harmonic(n: usize) -> f64 {
    (1..=n).map(|k| 1.0 / k as f64).sum()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// Run one workload: ingest all of `pts` into shard 0 from `clients`
/// connections, flush, then issue `queries_per_client` mixed queries from
/// each connection.
fn run_workload(
    name: &str,
    pts: &PointSet,
    clients: usize,
    queries_per_client: usize,
) -> LoadResult {
    let dim = pts.dim();
    let mut server = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let n = pts.len();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let overloaded = Arc::new(AtomicU64::new(0));
    // Telemetry window for this workload's dependence-depth histogram
    // (the serving path runs the online engine; workloads are serial in
    // main, so the process-global delta is this workload's alone).
    let depth_before = engine_metrics().online_insert_depth.snapshot();

    // Ingest phase: each client owns an interleaved slice of the stream.
    let t0 = Instant::now();
    let mut insert_lat_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let rows = &rows;
                let overloaded = Arc::clone(&overloaded);
                s.spawn(move || {
                    let mut client = HullClient::builder(addr.to_string())
                        .connect()
                        .expect("connect");
                    let mut lat = Vec::with_capacity(rows.len() / clients + 1);
                    for row in rows.iter().skip(c).step_by(clients) {
                        let q0 = Instant::now();
                        let rej = client
                            .mutate(0, MutationBatch::new().insert(row.clone()))
                            .expect("insert")
                            .rejections;
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                        overloaded.fetch_add(rej, Ordering::Relaxed);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let ingest_secs = t0.elapsed().as_secs_f64();

    let mut client = HullClient::builder(addr.to_string())
        .connect()
        .expect("connect");
    client.flush(0).expect("flush");
    let snap = client.snapshot(0).expect("snapshot");
    assert_eq!(snap.points.len(), n, "ingest lost points");

    // Query phase: 50% contains (half inside, half far outside), 25%
    // visible, 25% extreme — all against the published snapshot.
    let t1 = Instant::now();
    let mut query_lat_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let rows = &rows;
                s.spawn(move || {
                    let mut client = HullClient::builder(addr.to_string())
                        .connect()
                        .expect("connect");
                    let mut lat = Vec::with_capacity(queries_per_client);
                    for i in 0..queries_per_client {
                        let row = &rows[(i * clients + c) % rows.len()];
                        let q0 = Instant::now();
                        match i % 4 {
                            0 => {
                                client.contains(0, row).expect("contains");
                            }
                            1 => {
                                let far: Vec<i64> = row.iter().map(|&x| 2 * x + 3).collect();
                                client.contains(0, &far).expect("contains");
                            }
                            2 => {
                                client.visible(0, row).expect("visible");
                            }
                            _ => {
                                let mut d = vec![0i64; row.len()];
                                d[i % row.len()] = if i % 8 < 4 { 1 } else { -1 };
                                client.extreme(0, &d).expect("extreme");
                            }
                        }
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let query_secs = t1.elapsed().as_secs_f64();
    server.shutdown();
    let depth = engine_metrics()
        .online_insert_depth
        .snapshot()
        .delta_since(&depth_before);

    insert_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    query_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n_queries = clients * queries_per_client;
    let res = LoadResult {
        workload: name.to_string(),
        dim,
        n_points: n,
        clients,
        inserts_per_sec: n as f64 / ingest_secs,
        insert_p50_us: percentile(&insert_lat_us, 0.50),
        insert_p99_us: percentile(&insert_lat_us, 0.99),
        overloaded: overloaded.load(Ordering::Relaxed),
        n_queries,
        queries_per_sec: n_queries as f64 / query_secs,
        query_p50_us: percentile(&query_lat_us, 0.50),
        query_p99_us: percentile(&query_lat_us, 0.99),
        hull_facets: snap.facets.len(),
        dep_depth_records: depth.count,
        dep_depth_p50: depth.quantile(0.5),
        dep_depth_max: depth.quantile(1.0),
        harmonic_h_n: harmonic(n),
    };
    println!(
        "{:<28} {:>8} pts  {:>10.0} ins/s (p50 {:>6.1}us p99 {:>7.1}us, {} overloaded)  {:>10.0} qry/s (p50 {:>6.1}us p99 {:>7.1}us)  {} facets",
        res.workload,
        res.n_points,
        res.inserts_per_sec,
        res.insert_p50_us,
        res.insert_p99_us,
        res.overloaded,
        res.queries_per_sec,
        res.query_p50_us,
        res.query_p99_us,
        res.hull_facets
    );
    if res.dep_depth_records > 0 {
        // Theorem 4.2 live: the deepest per-insert dependence chain
        // should track H_n (≈ ln n), not n.
        println!(
            "{:<28} dep depth: {} records, p50 {} max {}  vs H_n = {:.1} (max/H_n = {:.2})",
            "",
            res.dep_depth_records,
            res.dep_depth_p50,
            res.dep_depth_max,
            res.harmonic_h_n,
            res.dep_depth_max as f64 / res.harmonic_h_n
        );
    }
    res
}

/// E18: kill the shard worker exactly once, mid-stream, and measure
/// supervised recovery end to end. Returns one pre-formatted JSON row.
fn run_chaos_recovery(pts: &PointSet, clients: usize) -> String {
    let dim = pts.dim();
    let n = pts.len();
    let mut server = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();

    // Deterministic single kill: the worker dies applying insert n/2
    // (`panic_every` counts applies; `max_fires: 1` makes it one-shot).
    failpoint::arm(FaultPlan::new(0xC4A0_5EED).site(
        sites::SHARD_APPLY,
        SiteSpec {
            panic_every: (n as u32 / 2).max(1),
            max_fires: 1,
            ..SiteSpec::default()
        },
    ));

    let done = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let (max_gap_us, degraded_reads, degraded_window_us) = std::thread::scope(|s| {
        // Polling reader: observes the degraded window around recovery.
        let probe = {
            let done = Arc::clone(&done);
            let origin = vec![0i64; dim];
            s.spawn(move || {
                let mut client = HullClient::builder(addr.to_string())
                    .connect()
                    .expect("connect");
                let mut reads = 0u64;
                let mut first: Option<Instant> = None;
                let mut last: Option<Instant> = None;
                while !done.load(Ordering::SeqCst) {
                    let _ = client.contains(0, &origin);
                    if client.last_degraded().is_some() {
                        reads += 1;
                        first.get_or_insert_with(Instant::now);
                        last = Some(Instant::now());
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                let window = match (first, last) {
                    (Some(a), Some(b)) => b.duration_since(a).as_micros() as u64,
                    _ => 0,
                };
                (reads, window)
            })
        };
        let writers: Vec<_> = (0..clients)
            .map(|c| {
                let rows = &rows;
                s.spawn(move || {
                    let mut client = HullClient::builder(addr.to_string())
                        .connect()
                        .expect("connect");
                    let mut max_gap = 0u64;
                    let mut last_ack = Instant::now();
                    for row in rows.iter().skip(c).step_by(clients) {
                        client
                            .mutate(0, MutationBatch::new().insert(row.clone()))
                            .expect("insert");
                        let now = Instant::now();
                        max_gap = max_gap.max(now.duration_since(last_ack).as_micros() as u64);
                        last_ack = now;
                    }
                    max_gap
                })
            })
            .collect();
        let max_gap = writers
            .into_iter()
            .map(|h| h.join().expect("writer"))
            .max()
            .unwrap_or(0);
        done.store(true, Ordering::SeqCst);
        let (reads, window) = probe.join().expect("probe");
        (max_gap, reads, window)
    });
    let ingest_secs = t0.elapsed().as_secs_f64();
    failpoint::disarm();

    let mut client = HullClient::builder(addr.to_string())
        .connect()
        .expect("connect");
    client.flush(0).expect("flush");
    let snap = client.snapshot(0).expect("snapshot");
    let stats = client.stats(Some(0)).expect("stats");
    server.shutdown();
    assert_eq!(snap.points.len(), n, "acked inserts lost across the crash");

    // Bit-identical check: offline Algorithm 2 over the served points
    // must produce the same canonical facet set.
    let flat: Vec<i64> = snap.points.iter().flatten().copied().collect();
    let served_set = PointSet::from_flat(dim, flat.clone());
    let offline = incremental_hull_run(&served_set);
    let canon = |facets: &[Vec<u32>]| -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        facets
            .iter()
            .map(|f| {
                let mut verts: Vec<Vec<i64>> = f[..dim]
                    .iter()
                    .map(|&v| flat[v as usize * dim..(v as usize + 1) * dim].to_vec())
                    .collect();
                verts.sort();
                verts
            })
            .collect()
    };
    let offline_facets: Vec<Vec<u32>> = offline.output.facets.iter().map(|f| f.to_vec()).collect();
    let bit_identical = canon(&snap.facets) == canon(&offline_facets);
    assert!(bit_identical, "recovered hull differs from offline");

    let grab = |key: &str| -> u64 {
        stats
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };
    let recoveries = grab("recoveries");
    let recovery_us = grab("recovery_us_last");
    assert!(recoveries >= 1, "injected kill did not fire: {stats}");
    println!(
        "{:<28} {:>8} pts  {:>10.0} ins/s  {} recoveries (replay {}us)  max ack gap {}us  degraded window {}us ({} reads)",
        "chaos_recovery_2d", n, n as f64 / ingest_secs, recoveries, recovery_us,
        max_gap_us, degraded_window_us, degraded_reads
    );
    format!(
        "  {{\"workload\": \"chaos_recovery_2d\", \"dim\": {dim}, \"n_points\": {n}, \
         \"clients\": {clients}, \"inserts_per_sec\": {:.0}, \"recoveries\": {recoveries}, \
         \"recovery_replay_us\": {recovery_us}, \"max_ack_gap_us\": {max_gap_us}, \
         \"degraded_window_us\": {degraded_window_us}, \"degraded_reads\": {degraded_reads}, \
         \"bit_identical_after_recovery\": {bit_identical}}}",
        n as f64 / ingest_secs,
    )
}

/// Kills the child process on drop unless it was already reaped — so a
/// panicking parent (any failed `expect`/`assert!` mid-workload) can't
/// leak a re-exec'd server that outlives the bench and squats on a
/// port. The harness's intentional `SIGKILL` and graceful-exit paths go
/// through [`ChildGuard::kill_now`] / [`ChildGuard::wait`], which
/// disarm the guard.
struct ChildGuard(Option<std::process::Child>);

impl ChildGuard {
    fn new(child: std::process::Child) -> ChildGuard {
        ChildGuard(Some(child))
    }

    fn inner(&mut self) -> &mut std::process::Child {
        self.0.as_mut().expect("child already reaped")
    }

    /// `SIGKILL` + reap now (the E23 drill's intentional crash).
    fn kill_now(&mut self) {
        if let Some(mut c) = self.0.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }

    /// The child is exiting on its own (graceful shutdown): reap it.
    fn wait(&mut self) {
        if let Some(mut c) = self.0.take() {
            let _ = c.wait();
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_now();
    }
}

/// Internal child mode (`--repl-primary`): a primary hull server in a
/// process of its own, so the E23 kill is a real `SIGKILL` — no drain,
/// no goodbye — not an in-process graceful shutdown.
fn repl_primary_main() {
    use std::io::Write as _;
    let handle = serve(ServeOptions {
        config: ServiceConfig {
            dim: 2,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind loopback");
    println!("REPL_ADDR {}", handle.local_addr());
    std::io::stdout().flush().expect("flush addr banner");
    handle.join();
}

/// The E23 workload (`replicated_failover_2d`): a primary process, an
/// in-process follower replica, and a `route` front end. Ingest through
/// the router, wait for replication to converge, then `SIGKILL` the
/// primary while a reader polls through the router — measuring the
/// read-unavailability window, the `Degraded`/`Stale`-wrapped read
/// counts, and the time until the promoted follower accepts writes —
/// and finally assert the promoted hull is bit-identical to offline
/// Algorithm 2 on the ingested points.
fn run_replicated_failover(pts: &PointSet, clients: usize) -> String {
    use chull_service::{route, FollowOptions, RouterOptions, ServerHandle};
    let dim = pts.dim();
    let n = pts.len();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();

    // The primary lives in a child process so the kill is SIGKILL.
    let exe = std::env::current_exe().expect("own path");
    let mut child = ChildGuard::new(
        std::process::Command::new(&exe)
            .arg("--repl-primary")
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawning primary process"),
    );
    let primary_addr = {
        use std::io::BufRead as _;
        let out = child.inner().stdout.take().expect("child stdout");
        let line = std::io::BufReader::new(out)
            .lines()
            .next()
            .expect("primary exited before its banner")
            .expect("banner io");
        line.strip_prefix("REPL_ADDR ")
            .expect("banner format")
            .trim()
            .to_string()
    };

    let mut follower: ServerHandle = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        follow: Some(FollowOptions {
            primary: primary_addr.clone(),
            poll: Duration::from_millis(1),
            connect_deadline: Duration::from_millis(500),
            promote_after: 10,
        }),
        ..Default::default()
    })
    .expect("bind follower");
    let mut router = route(RouterOptions {
        addr: "127.0.0.1:0".to_string(),
        nodes: vec![primary_addr.clone(), follower.local_addr().to_string()],
        probe_interval: Duration::from_millis(20),
        deadline: Duration::from_millis(500),
    })
    .expect("bind router");
    let raddr = router.local_addr();

    // Ingest through the router (writes land on the primary).
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rows = &rows;
            s.spawn(move || {
                let mut client = HullClient::builder(raddr.to_string())
                    .connect()
                    .expect("connect router");
                for row in rows.iter().skip(c).step_by(clients) {
                    client
                        .mutate(0, MutationBatch::new().insert(row.clone()))
                        .expect("insert");
                }
            });
        }
    });
    let ingest_secs = t0.elapsed().as_secs_f64();

    // Converge: the follower's batch-unit count catches the primary's.
    let mut pc = HullClient::builder(primary_addr.clone())
        .connect()
        .expect("connect primary");
    pc.flush(0).expect("flush");
    let (_, total, _, _) = pc.repl_fetch(0, u64::MAX).expect("primary total");
    let deadline = Instant::now() + Duration::from_secs(30);
    while follower.service().batch_units(0).expect("units") < total {
        assert!(Instant::now() < deadline, "replication never converged");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Kill -9 the primary under a polling reader.
    let done = Arc::new(AtomicBool::new(false));
    let kill_at = Arc::new(std::sync::OnceLock::<Instant>::new());
    let (failed_reads, degraded_reads, stale_reads, unavailable_us, promote_us) = {
        let probe_done = Arc::clone(&done);
        let probe_kill_at = Arc::clone(&kill_at);
        let origin = vec![0i64; dim];
        let probe = std::thread::spawn(move || {
            let (done, kill_at) = (probe_done, probe_kill_at);
            let mut client = HullClient::builder(raddr.to_string())
                .connect()
                .expect("connect router");
            let mut failed = 0u64;
            let mut degraded = 0u64;
            let mut stale = 0u64;
            let mut restored: Option<Instant> = None;
            while !done.load(Ordering::SeqCst) {
                match client.contains(0, &origin) {
                    Ok(_) => {
                        if kill_at.get().is_some() && restored.is_none() {
                            restored = Some(Instant::now());
                        }
                        if client.last_degraded().is_some() {
                            degraded += 1;
                        }
                        if client.last_stale().is_some() {
                            stale += 1;
                        }
                    }
                    // In-band routing errors ("no healthy backend"):
                    // the connection to the router survives them.
                    Err(_) => failed += 1,
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            let unavailable = match (kill_at.get(), restored) {
                (Some(k), Some(r)) => r.duration_since(*k).as_micros() as u64,
                _ => 0,
            };
            (failed, degraded, stale, unavailable)
        });
        std::thread::sleep(Duration::from_millis(50));
        kill_at.set(Instant::now()).expect("one kill");
        child.kill_now();

        // Writes through the router resume once the follower promotes
        // and the write path fails over to it; probe with a duplicate
        // of an already-ingested point (harmless, Theorem 4.2).
        let mut wc = HullClient::builder(raddr.to_string())
            .connect()
            .expect("connect router");
        let wdeadline = Instant::now() + Duration::from_secs(30);
        while wc
            .mutate(0, MutationBatch::new().insert(rows[0].clone()))
            .is_err()
        {
            assert!(Instant::now() < wdeadline, "follower never promoted");
            std::thread::sleep(Duration::from_millis(5));
        }
        let promote_us = kill_at
            .get()
            .map(|k| Instant::now().duration_since(*k).as_micros() as u64)
            .unwrap_or(0);
        done.store(true, Ordering::SeqCst);
        let (failed, degraded, stale, unavailable) = probe.join().expect("probe");
        (failed, degraded, stale, unavailable, promote_us)
    };

    // Bit-identical: the promoted follower's hull vs offline Algorithm 2.
    let mut fc = HullClient::builder(raddr.to_string())
        .connect()
        .expect("connect router");
    fc.flush(0).expect("flush promoted");
    let snap = fc.snapshot(0).expect("snapshot promoted");
    // `>=`: the write probe lands duplicate rows on purpose.
    assert!(snap.points.len() >= n, "acked inserts lost across the kill");
    let flat: Vec<i64> = snap.points.iter().flatten().copied().collect();
    let served_set = PointSet::from_flat(dim, flat.clone());
    let offline = incremental_hull_run(&served_set);
    let canon = |facets: &[Vec<u32>]| -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        facets
            .iter()
            .map(|f| {
                let mut verts: Vec<Vec<i64>> = f[..dim]
                    .iter()
                    .map(|&v| flat[v as usize * dim..(v as usize + 1) * dim].to_vec())
                    .collect();
                verts.sort();
                verts
            })
            .collect()
    };
    let offline_facets: Vec<Vec<u32>> = offline.output.facets.iter().map(|f| f.to_vec()).collect();
    let bit_identical = canon(&snap.facets) == canon(&offline_facets);
    assert!(bit_identical, "promoted hull differs from offline");
    let failovers = router.failovers();
    router.shutdown();
    follower.shutdown();

    println!(
        "{:<28} {:>8} pts  {:>10.0} ins/s  kill->reads {}us  kill->writes {}us  \
         {} failed / {} degraded / {} stale reads  {} router failovers",
        "replicated_failover_2d",
        n,
        n as f64 / ingest_secs,
        unavailable_us,
        promote_us,
        failed_reads,
        degraded_reads,
        stale_reads,
        failovers
    );
    format!(
        "  {{\"workload\": \"replicated_failover_2d\", \"dim\": {dim}, \"n_points\": {n}, \
         \"clients\": {clients}, \"inserts_per_sec\": {:.0}, \"degraded_window_us\": {unavailable_us}, \
         \"promote_window_us\": {promote_us}, \"failed_reads\": {failed_reads}, \
         \"degraded_reads\": {degraded_reads}, \"stale_reads\": {stale_reads}, \
         \"router_failovers\": {failovers}, \"bit_identical_after_failover\": {bit_identical}}}",
        n as f64 / ingest_secs,
    )
}

/// One E20 arm: stream `pts` into shard 0 and time until **applied**
/// (ingest + flush), so the figure measures the apply engine, not just
/// enqueue acks. `batch` = 0 streams per-point over the v1 op (the
/// pre-batching serving path); otherwise points go in `batch`-sized
/// v2 `InsertBatch` frames. Returns applied points/sec plus the shard's
/// drain-continuation-round count.
fn run_applied_ingest(pts: &PointSet, clients: usize, batch: usize, workers: usize) -> (f64, u64) {
    let dim = pts.dim();
    let n = pts.len();
    let mut server = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let rows = &rows;
            s.spawn(move || {
                let mut client = HullClient::builder(addr.to_string())
                    .connect()
                    .expect("connect");
                let mine: Vec<Vec<i64>> = rows.iter().skip(c).step_by(clients).cloned().collect();
                if batch == 0 {
                    for row in &mine {
                        client
                            .mutate(0, MutationBatch::new().insert(row.clone()))
                            .expect("insert");
                    }
                } else {
                    for chunk in mine.chunks(batch) {
                        let muts: Vec<Mutation> =
                            chunk.iter().map(|p| Mutation::Insert(p.clone())).collect();
                        client.mutate(0, muts.into()).expect("insert batch");
                    }
                }
            });
        }
    });
    let mut client = HullClient::builder(addr.to_string())
        .connect()
        .expect("connect");
    client.flush(0).expect("flush");
    let applied_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        client.snapshot(0).expect("snapshot").points.len(),
        n,
        "applied ingest lost points"
    );
    let stats = client.stats(Some(0)).expect("stats");
    let drain_rounds = stats
        .split("\"queue_drain_rounds\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    server.shutdown();
    (n as f64 / applied_secs, drain_rounds)
}

/// E20: parallel in-shard batch apply A/B. Per workload: a single-insert
/// baseline (v1 op, 1 worker — the pre-batching serving path), batched
/// frames on 1 worker (isolates coalescing from parallelism), and
/// batched frames on a ≥4-worker pool (Algorithm 3 on the serving
/// path). Returns pre-formatted JSON rows.
fn run_batch_apply_ab(name: &str, pts: &PointSet, clients: usize, batch: usize) -> Vec<String> {
    let dim = pts.dim();
    let n = pts.len();
    let (single_ps, single_rounds) = run_applied_ingest(pts, clients, 0, 1);
    let arms = [
        ("single_insert_w1", 0, 1, single_ps, single_rounds),
        {
            let (ps, rounds) = run_applied_ingest(pts, clients, batch, 1);
            ("batched_w1", batch, 1, ps, rounds)
        },
        {
            let (ps, rounds) = run_applied_ingest(pts, clients, batch, 4);
            ("batched_w4", batch, 4, ps, rounds)
        },
    ];
    arms.iter()
        .map(|(mode, b, workers, ps, rounds)| {
            let speedup = ps / single_ps;
            println!(
                "{:<28} {:>8} pts  {:>10.0} applied/s  ({mode}, batch {b}, {workers} workers, {speedup:.2}x vs single-insert, {rounds} drain rounds)",
                name, n, ps
            );
            format!(
                "  {{\"workload\": \"{name}\", \"dim\": {dim}, \"n_points\": {n}, \
                 \"clients\": {clients}, \"mode\": \"{mode}\", \"batch\": {b}, \
                 \"workers\": {workers}, \"applied_per_sec\": {ps:.0}, \
                 \"speedup_vs_single_insert\": {speedup:.2}, \
                 \"queue_drain_rounds\": {rounds}}}"
            )
        })
        .collect()
}

/// E21: sublinear point location on the serving path. One server, one
/// ingested workload; the identical query sequence then runs through the
/// wire-v3 `*_scan` oracle ops (linear scan over alive facets) and the
/// default ops (history-graph descent + SoA `PlaneBlock` filter, cached
/// extreme vertices). Every reply must be bit-identical between the two
/// paths; the A/B rows record how much the descent path wins by.
fn run_query_ab(pts: &PointSet, clients: usize, queries_per_client: usize) -> Vec<String> {
    let dim = pts.dim();
    let n = pts.len();
    let mut server = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let facets = {
        let mut client = HullClient::builder(addr.to_string())
            .connect()
            .expect("connect");
        for chunk in rows.chunks(256) {
            let muts: Vec<Mutation> = chunk.iter().map(|p| Mutation::Insert(p.clone())).collect();
            client.mutate(0, muts.into()).expect("insert batch");
        }
        client.flush(0).expect("flush");
        client.snapshot(0).expect("snapshot").facets.len()
    };

    // Same mixed query stream as `run_workload`, replayed once per mode;
    // replies are collected in deterministic (client, index) order so the
    // two passes can be compared element by element.
    let phase = |scan: bool| -> (f64, Vec<f64>, Vec<String>) {
        let t0 = Instant::now();
        let per_thread: Vec<(Vec<f64>, Vec<String>)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let rows = &rows;
                    s.spawn(move || {
                        let mut client = HullClient::builder(addr.to_string())
                            .connect()
                            .expect("connect");
                        let mut lat = Vec::with_capacity(queries_per_client);
                        let mut replies = Vec::with_capacity(queries_per_client);
                        for i in 0..queries_per_client {
                            let row = &rows[(i * clients + c) % rows.len()];
                            let q0 = Instant::now();
                            let reply = match i % 4 {
                                0 => {
                                    let r = if scan {
                                        client.contains_scan(0, row)
                                    } else {
                                        client.contains(0, row)
                                    }
                                    .expect("contains");
                                    format!("{r:?}")
                                }
                                1 => {
                                    let far: Vec<i64> = row.iter().map(|&x| 2 * x + 3).collect();
                                    let r = if scan {
                                        client.contains_scan(0, &far)
                                    } else {
                                        client.contains(0, &far)
                                    }
                                    .expect("contains");
                                    format!("{r:?}")
                                }
                                2 => {
                                    let r = if scan {
                                        client.visible_scan(0, row)
                                    } else {
                                        client.visible(0, row)
                                    }
                                    .expect("visible");
                                    format!("{r:?}")
                                }
                                _ => {
                                    let mut d = vec![0i64; row.len()];
                                    d[i % row.len()] = if i % 8 < 4 { 1 } else { -1 };
                                    let r = if scan {
                                        client.extreme_scan(0, &d)
                                    } else {
                                        client.extreme(0, &d)
                                    }
                                    .expect("extreme");
                                    format!("{r:?}")
                                }
                            };
                            lat.push(q0.elapsed().as_secs_f64() * 1e6);
                            replies.push(reply);
                        }
                        (lat, replies)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let secs = t0.elapsed().as_secs_f64();
        let mut lat = Vec::new();
        let mut replies = Vec::new();
        for (l, r) in per_thread {
            lat.extend(l);
            replies.extend(r);
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (secs, lat, replies)
    };

    let (scan_secs, scan_lat, scan_replies) = phase(true);
    let (fast_secs, fast_lat, fast_replies) = phase(false);
    server.shutdown();
    assert_eq!(
        fast_replies, scan_replies,
        "descent and linear-scan replies diverge"
    );

    let nq = clients * queries_per_client;
    let speedup = percentile(&scan_lat, 0.50) / percentile(&fast_lat, 0.50).max(1e-9);
    [
        ("locate", fast_secs, fast_lat),
        ("linear_scan", scan_secs, scan_lat),
    ]
    .iter()
    .map(|(mode, secs, lat)| {
        let p50 = percentile(lat, 0.50);
        let p99 = percentile(lat, 0.99);
        let qps = nq as f64 / secs;
        println!(
            "{:<28} {:>8} pts  {:>10.0} qry/s (p50 {:>7.1}us p99 {:>8.1}us)  {} facets  [{mode}, locate p50 {speedup:.1}x vs scan]",
            "query_ab_near_circle_2d", n, qps, p50, p99, facets
        );
        format!(
            "  {{\"workload\": \"query_ab_near_circle_2d\", \"dim\": {dim}, \"n_points\": {n}, \
             \"clients\": {clients}, \"mode\": \"{mode}\", \"n_queries\": {nq}, \
             \"queries_per_sec\": {qps:.0}, \"query_p50_us\": {p50:.1}, \
             \"query_p99_us\": {p99:.1}, \"hull_facets\": {facets}, \
             \"bit_identical\": true, \"locate_speedup_p50\": {speedup:.2}}}"
        )
    })
    .collect()
}

/// E22: connection fan-in. `conns_wanted` concurrent connections, all
/// driven by **one** client thread over a `chull-net` poller (one
/// in-flight `Contains` per connection, `probes` requests each),
/// against either serving front end. Measures connect-phase time,
/// sustained requests/sec, and client-observed per-request
/// percentiles — the figure of merit is a p99 that stays flat as
/// `conns` grows on the event-loop back end, where the threaded back
/// end would need one OS thread per connection.
fn run_fanin(threaded: bool, conns_wanted: usize, probes: usize) -> String {
    use chull_net::{poller, ByteBuf, FrameDecoder, Interest, Token};
    use chull_service::wire::{Request, Response, MAX_FRAME};
    use std::io::BufRead as _;
    use std::net::TcpStream;
    use std::os::fd::AsRawFd;

    // A loopback connection costs one fd on each side. RLIMIT_NOFILE is
    // per-process, so the server runs as a re-exec'd child of this
    // binary (`--fanin-server`): client and server each get a whole
    // nofile budget instead of splitting one 2-ways. Raise ours, and
    // clamp the fan-in when the hard limit still wins.
    let want = (conns_wanted + 256) as u64;
    let limit = chull_net::raise_nofile_limit(want);
    let conns = if limit < want {
        let fit = (limit.saturating_sub(256)).max(1) as usize;
        eprintln!("service_load: nofile limit {limit} clamps fan-in {conns_wanted} -> {fit} conns");
        fit.min(conns_wanted)
    } else {
        conns_wanted
    };

    let backend = if threaded { "threaded" } else { "event" };
    let mut child = ChildGuard::new(
        std::process::Command::new(std::env::current_exe().expect("current_exe for fan-in server"))
            .args(["--fanin-server", backend, &conns.to_string()])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn fan-in server child"),
    );
    let addr: std::net::SocketAddr = {
        let out = child.inner().stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(out)
            .read_line(&mut line)
            .expect("read child addr banner");
        line.trim()
            .strip_prefix("FANIN_ADDR ")
            .unwrap_or_else(|| panic!("bad fan-in server banner: {line:?}"))
            .parse()
            .expect("child addr")
    };
    {
        // Seed a small hull so every probe does real point location and
        // has one known answer.
        let mut seed = HullClient::builder(addr.to_string())
            .connect()
            .expect("connect");
        for p in [[0, 0], [1_000, 0], [0, 1_000], [1_000, 1_000]] {
            seed.mutate(0, MutationBatch::new().insert(p))
                .expect("seed insert");
        }
        seed.flush(0).expect("seed flush");
    }
    let probe_frame = {
        let payload = Request::Contains {
            shard: 0,
            point: vec![500, 500],
        }
        .encode();
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(&payload);
        f
    };

    struct FanConn {
        stream: TcpStream,
        dec: FrameDecoder,
        wbuf: ByteBuf,
        interest: Interest,
        sent_at: Instant,
        remaining: usize,
    }
    fn flush(c: &mut FanConn) -> bool {
        while !c.wbuf.is_empty() {
            match c.wbuf.write_to(&mut c.stream) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        true
    }

    let p = poller().expect("poller");
    let t_connect = Instant::now();
    let mut ring: Vec<FanConn> = Vec::with_capacity(conns);
    for i in 0..conns {
        // Sequential blocking connects can outrun the accept loop's
        // backlog at 10k-connection scale; back off briefly and retry.
        let stream = (0..50)
            .find_map(|attempt| {
                if attempt > 0 {
                    std::thread::sleep(Duration::from_millis(20 * attempt));
                }
                TcpStream::connect(addr).ok()
            })
            .unwrap_or_else(|| panic!("fan-in connect {i} kept failing"));
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        ring.push(FanConn {
            stream,
            dec: FrameDecoder::new(MAX_FRAME),
            wbuf: ByteBuf::new(),
            interest: Interest::READABLE,
            sent_at: Instant::now(),
            remaining: probes,
        });
    }
    let connect_secs = t_connect.elapsed().as_secs_f64();

    // Prime one in-flight probe per connection, then pump readiness.
    let t_load = Instant::now();
    let total = conns * probes;
    let mut lat_us: Vec<f64> = Vec::with_capacity(total);
    for (i, c) in ring.iter_mut().enumerate() {
        c.wbuf.extend(&probe_frame);
        c.sent_at = Instant::now();
        assert!(flush(c), "conn {i} failed first send");
        c.interest = if c.wbuf.is_empty() {
            Interest::READABLE
        } else {
            Interest::BOTH
        };
        p.register(c.stream.as_raw_fd(), Token(i), c.interest)
            .expect("register");
    }
    let mut done = 0usize;
    let mut events = Vec::new();
    while done < total {
        events.clear();
        p.wait(&mut events, Some(Duration::from_secs(10)))
            .expect("poll wait");
        assert!(
            !events.is_empty(),
            "fan-in stalled at {done}/{total} replies (threaded={threaded}, conns={conns})"
        );
        for ev in &events {
            let i = ev.token.0;
            let c = &mut ring[i];
            assert!(!ev.error, "conn {i} entered an error state");
            if ev.writable && !flush(c) {
                panic!("conn {i} write failed");
            }
            if ev.readable || ev.hangup {
                loop {
                    match c.dec.read_from(&mut c.stream) {
                        Ok(0) => panic!("server closed fan-in conn {i} early"),
                        Ok(_) => {}
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => panic!("conn {i} read failed: {e}"),
                    }
                }
                while let Some(payload) = c.dec.next_frame().expect("frame decode") {
                    let resp = Response::decode(&payload).expect("reply decode");
                    assert!(
                        matches!(resp, Response::Bool(true)),
                        "probe reply: {resp:?}"
                    );
                    lat_us.push(c.sent_at.elapsed().as_secs_f64() * 1e6);
                    c.remaining -= 1;
                    done += 1;
                    if c.remaining > 0 {
                        c.wbuf.extend(&probe_frame);
                        c.sent_at = Instant::now();
                        if !flush(c) {
                            panic!("conn {i} write failed");
                        }
                    }
                }
            }
            let want = if c.wbuf.is_empty() {
                Interest::READABLE
            } else {
                Interest::BOTH
            };
            if want != c.interest {
                c.interest = want;
                p.reregister(c.stream.as_raw_fd(), Token(i), want)
                    .expect("reregister");
            }
        }
    }
    let load_secs = t_load.elapsed().as_secs_f64();
    for c in &ring {
        let _ = p.deregister(c.stream.as_raw_fd());
    }
    drop(ring);
    HullClient::builder(addr.to_string())
        .connect()
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("remote shutdown");
    child.wait();

    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rps = total as f64 / load_secs;
    let p50 = percentile(&lat_us, 0.50);
    let p99 = percentile(&lat_us, 0.99);
    println!(
        "{:<28} {:>8} conns ({backend}, poller {})  connect {:.2}s  {:>9.0} req/s (p50 {:>6.1}us p99 {:>8.1}us, {} probes/conn)",
        "service_fanin", conns, p.name(), connect_secs, rps, p50, p99, probes
    );
    format!(
        "  {{\"workload\": \"service_fanin\", \"backend\": \"{backend}\", \"poller\": \"{}\", \
         \"conns\": {conns}, \"conns_wanted\": {conns_wanted}, \"probes_per_conn\": {probes}, \
         \"n_requests\": {total}, \"connect_secs\": {connect_secs:.3}, \
         \"requests_per_sec\": {rps:.0}, \"req_p50_us\": {p50:.1}, \"req_p99_us\": {p99:.1}}}",
        p.name()
    )
}

/// E24: cold-start recovery A/B. Writes an `n`-insert WAL directly
/// through the journal layer (256-insert batch units — the shape a
/// real ingest run leaves behind), then times [`HullService::new`] over
/// it twice: once with incremental batch replay (`bulk_threshold: 0`,
/// the bit-identical baseline) and once through the bulk
/// divide-and-conquer constructor (DESIGN §S21). Asserts the two
/// restarts serve the identical canonical hull and returns one
/// pre-formatted JSON row per arm.
fn run_recovery_ab(n: usize) -> Vec<String> {
    use chull_service::{HullService, Journal};
    let dim = 2;
    let pts = generators::cube_d(dim, n, 1_000_000, 99);
    let dir = std::env::temp_dir().join(format!("chull-recovery-ab-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir wal");
    {
        let mut journal = Journal::with_wal(dim, &dir, 0).expect("open wal");
        for i in 0..n {
            journal.append(pts.point(i)).expect("append");
            if (i + 1) % 256 == 0 || i + 1 == n {
                journal.mark_batch().expect("mark");
            }
        }
        journal.sync().expect("sync");
    }

    let restart = |bulk_threshold: usize| {
        let t0 = Instant::now();
        let svc = HullService::new(ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: Some(dir.clone()),
            bulk_threshold,
            ..Default::default()
        })
        .expect("restart over wal");
        let secs = t0.elapsed().as_secs_f64();
        let snap = svc.snapshot(0).expect("snapshot");
        assert!(snap.ready());
        assert_eq!(snap.num_points(), n, "restart lost journaled inserts");
        let stats = svc.stats_for(0).expect("stats");
        let bulk_builds = stats.bulk_builds.load(Ordering::Relaxed);
        let pruned = stats.bulk_pruned.load(Ordering::Relaxed);
        // Canonical facet set by coordinates: bulk and incremental
        // replay may number internal ids differently.
        let flat = snap.flat_points();
        let canonical: std::collections::BTreeSet<Vec<Vec<i64>>> = snap
            .output()
            .facets
            .iter()
            .map(|f| {
                let mut verts: Vec<Vec<i64>> = f[..dim]
                    .iter()
                    .map(|&v| flat[v as usize * dim..(v as usize + 1) * dim].to_vec())
                    .collect();
                verts.sort();
                verts
            })
            .collect();
        svc.shutdown();
        (secs, bulk_builds, pruned, canonical)
    };

    let (inc_secs, inc_bulk, _, inc_hull) = restart(0);
    assert_eq!(inc_bulk, 0, "baseline arm took the bulk path");
    let (bulk_secs, bulk_builds, pruned, bulk_hull) = restart(1);
    assert_eq!(bulk_builds, 1, "bulk arm did not take the bulk path");
    assert_eq!(bulk_hull, inc_hull, "bulk restart serves a different hull");
    let _ = std::fs::remove_dir_all(&dir);

    let speedup = inc_secs / bulk_secs.max(1e-9);
    [
        ("incremental", inc_secs, 0u64),
        ("bulk", bulk_secs, pruned),
    ]
    .iter()
    .map(|(mode, secs, pruned)| {
        println!(
            "{:<28} {:>8} pts  restart {:>8.3}s  ({mode}, {pruned} pruned, bulk speedup {speedup:.2}x)",
            "recovery_bulk", n, secs
        );
        format!(
            "  {{\"workload\": \"recovery_bulk\", \"dim\": {dim}, \"n_points\": {n}, \
             \"mode\": \"{mode}\", \"recovery_secs\": {secs:.4}, \"points_pruned\": {pruned}, \
             \"canonical_identical\": true, \"bulk_speedup\": {speedup:.2}}}"
        )
    })
    .collect()
}

/// E25 (`churn_2d`): sliding-window / deletion churn throughput vs
/// window size. One ingest client streams `pts` in 64-mutation v6
/// `Mutate` envelopes; the live set is bounded at `window` points
/// either by the server's count-window policy (`mode == "window"`:
/// pure inserts, the shard expires its own oldest rows) or by explicit
/// client-side deletes (`mode == "delete"`: each envelope pairs the
/// insert of point `i` with a `Delete` of point `i - window`).
/// `window == 0` is the insert-only baseline. Single-client ingest
/// keeps the surviving set deterministic — the newest `window` points
/// in stream order — so the served hull is asserted canonically
/// identical to offline Algorithm 2 on exactly those survivors.
fn run_churn(pts: &PointSet, mode: &str, window: usize) -> String {
    let dim = pts.dim();
    let n = pts.len();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let mut server = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            window: if mode == "window" && window > 0 {
                WindowPolicy::Count(window)
            } else {
                WindowPolicy::None
            },
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let mut client = HullClient::builder(addr.to_string())
        .connect()
        .expect("connect");
    let mut total_muts = 0usize;
    let t0 = Instant::now();
    let mut batch = MutationBatch::new();
    for (i, row) in rows.iter().enumerate() {
        batch = batch.insert(row.clone());
        if mode == "delete" && window > 0 && i >= window {
            batch = batch.delete(rows[i - window].clone());
        }
        if batch.len() >= 64 || i + 1 == n {
            total_muts += batch.len();
            client
                .mutate(0, std::mem::take(&mut batch))
                .expect("mutate");
        }
    }
    client.flush(0).expect("flush");
    let churn_secs = t0.elapsed().as_secs_f64();
    let snap = client.snapshot(0).expect("snapshot");
    let stats = client.stats(Some(0)).expect("stats");
    server.shutdown();

    // Canonical check: facets of the served hull vs offline Algorithm 2
    // on the deterministic survivor suffix.
    let survivors: &[Vec<i64>] = if window == 0 {
        &rows
    } else {
        &rows[n - window..]
    };
    let canon = |facets: &[Vec<u32>], flat: &[i64]| -> std::collections::BTreeSet<Vec<Vec<i64>>> {
        facets
            .iter()
            .map(|f| {
                let mut verts: Vec<Vec<i64>> = f[..dim]
                    .iter()
                    .map(|&v| flat[v as usize * dim..(v as usize + 1) * dim].to_vec())
                    .collect();
                verts.sort();
                verts
            })
            .collect()
    };
    let served_flat: Vec<i64> = snap.points.iter().flatten().copied().collect();
    let surv_flat: Vec<i64> = survivors.iter().flatten().copied().collect();
    let offline = incremental_hull_run(&PointSet::from_flat(dim, surv_flat.clone()));
    let offline_facets: Vec<Vec<u32>> = offline.output.facets.iter().map(|f| f.to_vec()).collect();
    assert_eq!(
        canon(&snap.facets, &served_flat),
        canon(&offline_facets, &surv_flat),
        "windowed hull differs from offline on survivors (mode {mode}, window {window})"
    );

    let grab = |key: &str| -> u64 {
        stats
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };
    let (tombstones, expirations) = (grab("tombstones"), grab("window_expirations"));
    let (rebuilds, autoc) = (grab("rebuilds"), grab("auto_compactions"));
    let live = grab("live_points");
    if window > 0 {
        assert_eq!(live as usize, window, "live set missed the window bound");
    }
    let mps = total_muts as f64 / churn_secs;
    println!(
        "{:<28} {:>8} pts  {:>10.0} muts/s  ({mode}, window {window}: {tombstones} tombstones, \
         {expirations} expired, {rebuilds} rebuilds / {autoc} auto, {live} live, {} facets)",
        "churn_2d",
        n,
        mps,
        snap.facets.len()
    );
    format!(
        "  {{\"workload\": \"churn_2d\", \"mode\": \"{mode}\", \"window\": {window}, \
         \"dim\": {dim}, \"n_points\": {n}, \"mutations\": {total_muts}, \
         \"mutations_per_sec\": {mps:.0}, \"tombstones\": {tombstones}, \
         \"window_expirations\": {expirations}, \"rebuilds\": {rebuilds}, \
         \"auto_compactions\": {autoc}, \"live_points\": {live}, \
         \"canonical_identical\": true}}"
    )
}

fn write_json(path: &str, results: &[LoadResult], extra_rows: &[String]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"dim\": {}, \"n_points\": {}, \"clients\": {}, \
             \"inserts_per_sec\": {:.0}, \"insert_p50_us\": {:.1}, \"insert_p99_us\": {:.1}, \
             \"overloaded\": {}, \"n_queries\": {}, \"queries_per_sec\": {:.0}, \
             \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \"hull_facets\": {}, \
             \"dep_depth_records\": {}, \"dep_depth_p50\": {}, \"dep_depth_max\": {}, \
             \"harmonic_h_n\": {:.2}}}{}\n",
            r.workload,
            r.dim,
            r.n_points,
            r.clients,
            r.inserts_per_sec,
            r.insert_p50_us,
            r.insert_p99_us,
            r.overloaded,
            r.n_queries,
            r.queries_per_sec,
            r.query_p50_us,
            r.query_p99_us,
            r.hull_facets,
            r.dep_depth_records,
            r.dep_depth_p50,
            r.dep_depth_max,
            r.harmonic_h_n,
            if i + 1 < results.len() || !extra_rows.is_empty() {
                ","
            } else {
                ""
            }
        ));
    }
    for (i, row) in extra_rows.iter().enumerate() {
        out.push_str(row);
        out.push_str(if i + 1 < extra_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Internal child mode (`--fanin-server BACKEND CONNS`): serve on an
/// ephemeral loopback port in a process of our own — so the E22 fan-in
/// gets two whole RLIMIT_NOFILE budgets — print the address banner, and
/// run until the parent sends a wire `Shutdown`.
fn fanin_server_main(backend: &str, conns: usize) {
    use std::io::Write as _;
    chull_net::raise_nofile_limit((conns + 256) as u64);
    let handle = serve(ServeOptions {
        config: ServiceConfig {
            dim: 2,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
            workers: 0,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        threaded: backend == "threaded",
        ..Default::default()
    })
    .expect("bind loopback");
    println!("FANIN_ADDR {}", handle.local_addr());
    std::io::stdout().flush().expect("flush addr banner");
    handle.join();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--fanin-server") {
        let backend = args.get(1).expect("--fanin-server needs a backend");
        let conns = args
            .get(2)
            .expect("--fanin-server needs a conns hint")
            .parse()
            .expect("bad conns hint");
        fanin_server_main(backend, conns);
        return;
    }
    if args.first().map(String::as_str) == Some("--repl-primary") {
        repl_primary_main();
        return;
    }
    let mut out_path = "BENCH_service.json".to_string();
    let mut clients = 4usize;
    let mut quick = false;
    let mut fanin = 10_000usize;
    let mut fanin_only = false;
    let mut repl_only = false;
    let mut recovery_only = false;
    let mut churn_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--clients" => {
                clients = it
                    .next()
                    .expect("--clients needs a value")
                    .parse()
                    .expect("bad --clients value");
            }
            "--quick" => quick = true,
            "--fanin" => {
                fanin = it
                    .next()
                    .expect("--fanin needs a value")
                    .parse()
                    .expect("bad --fanin value");
            }
            "--fanin-only" => fanin_only = true,
            "--repl-only" => repl_only = true,
            "--recovery-only" => recovery_only = true,
            "--churn-only" => churn_only = true,
            other => {
                eprintln!(
                    "USAGE: service_load [--out FILE] [--clients C] [--quick] \
                     [--fanin N] [--fanin-only] [--repl-only] [--recovery-only] \
                     [--churn-only]"
                );
                panic!("unknown flag '{other}'");
            }
        }
    }
    if recovery_only {
        let sizes: &[usize] = if quick {
            &[50_000]
        } else {
            &[50_000, 200_000, 1_000_000]
        };
        let rows: Vec<String> = sizes.iter().flat_map(|&n| run_recovery_ab(n)).collect();
        write_json(&out_path, &[], &rows).expect("writing results");
        println!("wrote {out_path}");
        return;
    }
    if repl_only {
        let n = if quick { 2_000 } else { 25_000 };
        let row = run_replicated_failover(&generators::cube_d(2, n, 1_000_000, 88), clients);
        write_json(&out_path, &[], &[row]).expect("writing results");
        println!("wrote {out_path}");
        return;
    }
    // E25: churn throughput vs window size, windowed-expiry and
    // explicit-delete arms, plus the insert-only baseline.
    let run_churn_rows = |quick: bool| -> Vec<String> {
        let n = if quick { 2_000 } else { 50_000 };
        let windows: &[usize] = if quick {
            &[256, 1_024]
        } else {
            &[2_048, 16_384]
        };
        let pts = generators::cube_d(2, n, 1_000_000, 55);
        let mut rows = vec![run_churn(&pts, "insert_only", 0)];
        for &w in windows {
            rows.push(run_churn(&pts, "window", w));
            rows.push(run_churn(&pts, "delete", w));
        }
        rows
    };
    if churn_only {
        let rows = run_churn_rows(quick);
        write_json(&out_path, &[], &rows).expect("writing results");
        println!("wrote {out_path}");
        return;
    }
    // E22: A/B both back ends at a thread-per-connection-friendly scale,
    // then push the event loop to the full fan-in target.
    let fanin_probes = if quick { 4 } else { 20 };
    let run_fanin_rows = || -> Vec<String> {
        vec![
            run_fanin(true, 512.min(fanin), fanin_probes),
            run_fanin(false, 512.min(fanin), fanin_probes),
            run_fanin(false, fanin, fanin_probes),
        ]
    };
    if fanin_only {
        let rows = run_fanin_rows();
        write_json(&out_path, &[], &rows).expect("writing results");
        println!("wrote {out_path}");
        return;
    }
    let (n2, n3, q) = if quick {
        (2_000, 1_000, 500)
    } else {
        (50_000, 20_000, 5_000)
    };
    let results = vec![
        run_workload(
            "disk_2d/uniform",
            &generators::cube_d(2, n2, 1_000_000, 42),
            clients,
            q,
        ),
        run_workload(
            "near_circle_2d",
            &generators::near_sphere_d(2, n2 / 2, 1_000_000, 42),
            clients,
            q,
        ),
        run_workload(
            "ball_3d/uniform",
            &generators::ball_d(3, n3, 1_000_000, 42),
            clients,
            q,
        ),
    ];
    let mut extra = run_batch_apply_ab(
        "batch_apply_3d",
        &generators::ball_d(3, n3, 1_000_000, 42),
        clients,
        if quick { 64 } else { 256 },
    );
    extra.extend(run_batch_apply_ab(
        "batch_apply_2d",
        &generators::cube_d(2, n2, 1_000_000, 42),
        clients,
        if quick { 64 } else { 256 },
    ));
    extra.extend(run_query_ab(
        &generators::near_sphere_d(2, n2 / 2, 1_000_000, 42),
        clients,
        q,
    ));
    extra.push(run_chaos_recovery(
        &generators::cube_d(2, n2, 1_000_000, 77),
        clients,
    ));
    extra.push(run_replicated_failover(
        &generators::cube_d(2, n2 / 2, 1_000_000, 88),
        clients,
    ));
    extra.extend(run_churn_rows(quick));
    extra.extend(run_fanin_rows());
    write_json(&out_path, &results, &extra).expect("writing results");
    println!("wrote {out_path}");
}
