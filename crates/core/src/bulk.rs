//! Parallel divide-and-conquer **bulk construction** — the recovery-path
//! constructor for cold start, WAL replay, and snapshot compaction.
//!
//! Incremental insertion is the right tool when points arrive one at a
//! time; when the *entire* input is already known (a journal to replay, a
//! snapshot to compact), a sorting-based divide-and-conquer pass is far
//! cheaper: recursively partition the points by a pivot hyperplane
//! (axis-aligned through the median of the widest-spread axis), build each
//! leaf's sub-hull independently on the worker pool, and merge sibling
//! results pairwise — the shape of *Cache-Oblivious Parallel Convex Hull
//! in the Binary Forking Model* and of ParGeo's `parallelQuickHull`
//! (PAPERS.md; SNIPPETS.md Snippet 3). Every sign test inside the leaf
//! and merge hulls runs on the same staged exact kernel
//! ([`chull_geometry::kernel`]) as the incremental algorithms, so the
//! sweep is exact, deterministic, and counts like everything else.
//!
//! The sweep's output is not a hull but a **candidate set**: the ids of
//! every point that might be a vertex of the full hull. Only points
//! *strictly interior* to some sub-hull are pruned. Crucially, points
//! lying exactly **on** a sub-hull's boundary are kept even when they are
//! not vertices of that sub-hull: a globally weakly-extreme point (e.g.
//! the middle of three collinear boundary points) is weakly-extreme in
//! every subset containing it, so it survives every pruning level, and
//! Algorithm 2 gets to make the same keep-or-drop decision for it — in
//! the same ascending-id order — that an incremental replay would have
//! made. That is what makes the bulk-seeded hull *canonically identical*
//! to Algorithm 2 even on degenerate (collinear / duplicate-heavy)
//! inputs; see `HullBuilder::seed_from_bulk` and DESIGN §S21.
//!
//! Determinism: partitioning, leaf ordering, merge pairing, and every
//! sub-hull build depend only on point ids and coordinates — never on
//! scheduling — so the candidate set (and therefore the seeded hull) is
//! identical for every worker count.

use crate::seq::incremental_hull_run;
use chull_concurrent::pool;
use chull_geometry::{KernelCounts, PointSet, Sign};

/// Leaf grain: subsets at or below this size stop partitioning and build
/// their sub-hull directly. Chosen so a leaf build stays cache-resident
/// while still amortizing the basis search; the value only affects speed,
/// never the candidate set's correctness.
pub const BULK_GRAIN: usize = 384;

/// Telemetry of one bulk sweep (shape of the divide-and-conquer run).
#[derive(Clone, Copy, Debug, Default)]
pub struct BulkReport {
    /// Points the sweep started from.
    pub input: usize,
    /// Points the extreme-simplex pre-filter discarded before the
    /// divide-and-conquer phases ever saw them.
    pub prefiltered: usize,
    /// Leaves the partition phase produced.
    pub leaves: usize,
    /// Pairwise merge rounds run after the leaf builds.
    pub merge_rounds: usize,
    /// Candidate vertices surviving the final merge.
    pub candidates: usize,
    /// The caller fell back to plain incremental replay (degenerate
    /// input with no `d + 1` affinely independent prefix).
    pub fallback: bool,
}

/// Quickhull-style **pre-filter**: build the hull of a handful of
/// directional extremes (per-axis min/max plus, in low dimension, the
/// diagonal directions), then drop every point *strictly inside* it —
/// each rejection costs a few staged-kernel sign tests instead of a
/// leaf hull build. This is where the bulk of a fat point cloud
/// disappears (ParGeo's `parallelQuickHull` opens the same way), and it
/// is exactly safe: the extreme hull is spanned by input points, so its
/// strict interior is inside the full hull's strict interior — points
/// there can never be weakly extreme. Points **on** an extreme-hull
/// facet are kept (conservative, see the weak-boundary rule above).
/// Returns `None` — filter nothing — when the extremes are affinely
/// degenerate (flat input).
fn prefilter(pts: &PointSet, ids: Vec<u32>) -> Option<Vec<u32>> {
    let dim = pts.dim();
    if ids.len() <= BULK_GRAIN {
        return None;
    }
    // Probe directions: ±axis for every axis, plus every ± sign pattern
    // of the all-ones diagonal in low dimension (2^d stays tiny for
    // d ≤ 4; higher dimensions make do with the axes and the main
    // diagonal). Fixed list + lowest-id tie-break = deterministic.
    let mut dirs: Vec<Vec<i64>> = Vec::new();
    for axis in 0..dim {
        let mut w = vec![0i64; dim];
        w[axis] = 1;
        dirs.push(w.clone());
        w[axis] = -1;
        dirs.push(w);
    }
    if dim <= 4 {
        for mask in 0..(1u32 << dim) {
            dirs.push(
                (0..dim)
                    .map(|a| if mask >> a & 1 == 0 { 1 } else { -1 })
                    .collect(),
            );
        }
    } else {
        dirs.push(vec![1; dim]);
        dirs.push(vec![-1; dim]);
    }
    let mut extremes: Vec<u32> = dirs
        .iter()
        .map(|w| {
            let dot = |id: u32| -> i64 { pts.pt(id).iter().zip(w).map(|(c, k)| c * k).sum() };
            let mut best = ids[0];
            let mut best_dot = dot(best);
            for &id in &ids[1..] {
                let d = dot(id);
                if d > best_dot {
                    best = id;
                    best_dot = d;
                }
            }
            best
        })
        .collect();
    extremes.sort_unstable();
    extremes.dedup();
    // Full-rank check, greedy in ascending id order; degenerate extremes
    // mean a flat input — nothing is safe to pre-filter.
    let mut basis: Vec<u32> = Vec::with_capacity(dim + 1);
    for &id in &extremes {
        let mut rows: Vec<&[i64]> = basis.iter().map(|&b| pts.pt(b)).collect();
        rows.push(pts.pt(id));
        if chull_geometry::exact::affine_rank(&rows) == rows.len() {
            basis.push(id);
            if basis.len() == dim + 1 {
                break;
            }
        }
    }
    if basis.len() < dim + 1 {
        return None;
    }
    let mut order = basis.clone();
    order.extend(extremes.iter().copied().filter(|id| !basis.contains(id)));
    let mut sub = PointSet::new(dim);
    for &id in &order {
        sub.push(pts.pt(id));
    }
    let run = incremental_hull_run(&sub);
    let alive: Vec<&crate::facet::Facet> = run
        .facets
        .iter()
        .zip(&run.alive)
        .filter(|(_, &a)| a)
        .map(|(f, _)| f)
        .collect();
    if alive.is_empty() {
        return None;
    }
    let mut is_extreme = vec![false; pts.len()];
    for &id in &extremes {
        is_extreme[id as usize] = true;
    }
    // Strictly inside the extreme hull = on the invisible side of every
    // facet (each facet carries its own `visible_sign` orientation);
    // `Zero` (on a facet) or visible (outside) both keep the point.
    let mut counts = KernelCounts::default();
    let keep: Vec<u32> = ids
        .into_iter()
        .filter(|&id| {
            is_extreme[id as usize]
                || alive.iter().any(|f| {
                    let s = f.plane.sign_point(pts.pt(id), &mut counts);
                    s == Sign::Zero || s == f.visible_sign
                })
        })
        .collect();
    Some(keep)
}

/// Split `ids` by an axis-aligned pivot hyperplane: the median coordinate
/// of the widest-spread axis. Returns `None` when every point is
/// identical (nothing to split spatially). Ties collapsing one side onto
/// the pivot plane fall back to an id-order halving so the recursion
/// always makes progress.
fn split(pts: &PointSet, ids: &[u32]) -> Option<(Vec<u32>, Vec<u32>)> {
    let dim = pts.dim();
    let mut best_axis = 0usize;
    let mut best_spread = -1i64;
    for axis in 0..dim {
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for &id in ids {
            let c = pts.pt(id)[axis];
            lo = lo.min(c);
            hi = hi.max(c);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            best_axis = axis;
        }
    }
    if best_spread <= 0 {
        return None;
    }
    let mut coords: Vec<i64> = ids.iter().map(|&id| pts.pt(id)[best_axis]).collect();
    let mid = coords.len() / 2;
    let (_, &mut pivot, _) = coords.select_nth_unstable(mid);
    // Stable partition so each side stays in ascending id order.
    let mut left = Vec::new();
    let mut right = Vec::new();
    for &id in ids {
        if pts.pt(id)[best_axis] < pivot {
            left.push(id);
        } else {
            right.push(id);
        }
    }
    if left.is_empty() || right.is_empty() {
        let half = ids.len() / 2;
        left = ids[..half].to_vec();
        right = ids[half..].to_vec();
    }
    Some((left, right))
}

/// The **weak hull points** of subset `ids` (ascending): its hull
/// vertices plus every non-vertex lying exactly on an alive facet's
/// hyperplane. Equivalently: `ids` minus the points strictly interior to
/// the subset's hull — the only points that are provably interior to
/// every superset's hull and therefore safe to prune. Affinely
/// degenerate subsets (rank < d + 1) are returned whole: a flat subset
/// has no interior to prune from.
fn weak_hull_points(pts: &PointSet, ids: &[u32]) -> Vec<u32> {
    let dim = pts.dim();
    if ids.len() <= dim + 1 {
        return ids.to_vec();
    }
    // Greedy basis in ascending id order — the same selection rule the
    // online builder's bootstrap uses, so leaf insertion order matches
    // what a replay of just this subset would have done.
    let mut basis: Vec<u32> = Vec::with_capacity(dim + 1);
    for &id in ids {
        let mut rows: Vec<&[i64]> = basis.iter().map(|&b| pts.pt(b)).collect();
        rows.push(pts.pt(id));
        if chull_geometry::exact::affine_rank(&rows) == rows.len() {
            basis.push(id);
            if basis.len() == dim + 1 {
                break;
            }
        }
    }
    if basis.len() < dim + 1 {
        return ids.to_vec();
    }
    // Sub point set in basis-first order: the seed simplex leads, exactly
    // as `HullBuilder` would promote it, then the rest ascending.
    let mut order: Vec<u32> = basis.clone();
    order.extend(ids.iter().copied().filter(|id| !basis.contains(id)));
    let mut sub = PointSet::new(dim);
    for &id in &order {
        sub.push(pts.pt(id));
    }
    let run = incremental_hull_run(&sub);
    let mut keep = vec![false; order.len()];
    for &v in &run.output.vertices() {
        keep[v as usize] = true;
    }
    // Non-vertices exactly on an alive facet's hyperplane are on the
    // subset hull's boundary — weakly extreme, must survive (see module
    // docs). Strictly interior points (no Zero sign anywhere) are pruned.
    let alive: Vec<&crate::facet::Facet> = run
        .facets
        .iter()
        .zip(&run.alive)
        .filter(|(_, &a)| a)
        .map(|(f, _)| f)
        .collect();
    let mut counts = KernelCounts::default();
    for (i, slot) in keep.iter_mut().enumerate() {
        if *slot {
            continue;
        }
        let q = sub.point(i);
        if alive
            .iter()
            .any(|f| f.plane.sign_point(q, &mut counts) == Sign::Zero)
        {
            *slot = true;
        }
    }
    let mut out: Vec<u32> = order
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(&id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Merge two ascending id lists (no duplicates possible: the lists
/// partition disjoint subsets).
fn merge_ids(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The full divide-and-conquer sweep over every point of `pts`: partition
/// to leaves, build leaf sub-hulls in parallel on `threads` pool workers
/// (`0` = auto), then merge sibling candidate sets pairwise — each merge
/// is itself a sub-hull build over the union — until one candidate set
/// remains. Returns the ascending candidate ids and fills `report`.
pub fn bulk_candidates(pts: &PointSet, threads: usize, report: &mut BulkReport) -> Vec<u32> {
    let threads = if threads == 0 {
        pool::default_threads()
    } else {
        threads
    };
    let n = pts.len();
    report.input = n;
    // Phase 0: extreme-simplex pre-filter — a few sign tests per point
    // discard the strict interior of a fat cloud before any hull build.
    let all: Vec<u32> = (0..n as u32).collect();
    let initial = match prefilter(pts, all) {
        Some(keep) => {
            report.prefiltered = n - keep.len();
            keep
        }
        None => (0..n as u32).collect(),
    };
    // Phase 1: partition. Depth-first, left side first, so the leaf order
    // is a deterministic left-to-right sweep of the partition tree.
    let mut stack: Vec<Vec<u32>> = vec![initial];
    let mut leaves: Vec<Vec<u32>> = Vec::new();
    while let Some(ids) = stack.pop() {
        if ids.len() <= BULK_GRAIN {
            leaves.push(ids);
            continue;
        }
        match split(pts, &ids) {
            Some((l, r)) => {
                stack.push(r);
                stack.push(l);
            }
            None => leaves.push(ids),
        }
    }
    report.leaves = leaves.len();
    // Phase 2: leaf sub-hulls in parallel.
    let mut slots: Vec<Option<Vec<u32>>> = vec![None; leaves.len()];
    pool::scope_with_threads(threads, |s| {
        for (leaf, slot) in leaves.iter().zip(slots.iter_mut()) {
            s.spawn(move |_| {
                *slot = Some(weak_hull_points(pts, leaf));
            });
        }
    });
    let mut sets: Vec<Vec<u32>> = slots
        .into_iter()
        .map(|x| x.expect("leaf task ran"))
        .collect();
    // Phase 3: pairwise merge rounds — adjacent siblings of the partition
    // sweep, so each merge unions spatially neighboring regions.
    while sets.len() > 1 {
        report.merge_rounds += 1;
        let mut merged: Vec<Option<Vec<u32>>> = vec![None; sets.len().div_ceil(2)];
        pool::scope_with_threads(threads, |s| {
            for (pair, slot) in sets.chunks(2).zip(merged.iter_mut()) {
                s.spawn(move |_| {
                    *slot = Some(match pair {
                        [lone] => lone.clone(),
                        [a, b] => weak_hull_points(pts, &merge_ids(a, b)),
                        _ => unreachable!("chunks(2)"),
                    });
                });
            }
        });
        sets = merged
            .into_iter()
            .map(|x| x.expect("merge task ran"))
            .collect();
    }
    let out = sets.pop().unwrap_or_default();
    report.candidates = out.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use chull_geometry::generators;

    #[test]
    fn candidates_superset_of_hull_vertices() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(1500, 1 << 20, 3)),
            4,
        );
        let run = incremental_hull_run(&pts);
        let mut report = BulkReport::default();
        let cands = bulk_candidates(&pts, 2, &mut report);
        assert!(
            report.prefiltered * 2 > pts.len(),
            "uniform disk interior must mostly fall to the pre-filter, got {}",
            report.prefiltered
        );
        assert!(report.leaves >= 1);
        assert_eq!(report.candidates, cands.len());
        let cand_set: std::collections::HashSet<u32> = cands.iter().copied().collect();
        for v in run.output.vertices() {
            assert!(cand_set.contains(&v), "hull vertex {v} pruned");
        }
        // The whole point: most of a uniform disk is pruned.
        assert!(
            cands.len() * 4 < pts.len(),
            "only pruned to {} of {}",
            cands.len(),
            pts.len()
        );
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let pts = prepare_points(
            &PointSet::from_points3(&generators::ball_3d(900, 1 << 20, 5)),
            6,
        );
        let mut r1 = BulkReport::default();
        let base = bulk_candidates(&pts, 1, &mut r1);
        for threads in [2usize, 4] {
            let mut r = BulkReport::default();
            assert_eq!(
                bulk_candidates(&pts, threads, &mut r),
                base,
                "candidates differ at {threads} threads"
            );
            assert_eq!(r.leaves, r1.leaves);
            assert_eq!(r.merge_rounds, r1.merge_rounds);
        }
    }

    #[test]
    fn degenerate_and_tiny_subsets_survive() {
        // All collinear: nothing can be pruned (rank-deficient everywhere).
        let rows: Vec<Vec<i64>> = (0..600i64).map(|i| vec![i, 2 * i]).collect();
        let pts = PointSet::from_rows(2, &rows);
        let mut report = BulkReport::default();
        let cands = bulk_candidates(&pts, 2, &mut report);
        assert_eq!(cands.len(), 600, "flat input must not be pruned");
        // Tiny input: single leaf, identity.
        let pts = PointSet::from_rows(2, &[vec![0, 0], vec![5, 0]]);
        let mut report = BulkReport::default();
        assert_eq!(bulk_candidates(&pts, 1, &mut report), vec![0, 1]);
        assert_eq!(report.leaves, 1);
    }

    #[test]
    fn weak_boundary_points_are_kept() {
        // b sits exactly on the hull edge between a and c: not a vertex of
        // this subset's hull, but it must survive pruning (a superset's
        // replay may have made it a weak vertex).
        let pts = PointSet::from_rows(
            2,
            &[
                vec![0, 0],  // a
                vec![0, 10], // d
                vec![20, 0], // c
                vec![10, 0], // b: on segment a-c
                vec![5, 2],  // strictly interior
                vec![12, 1], // strictly interior
                vec![1, 1],  // strictly interior
            ],
        );
        let cands = weak_hull_points(&pts, &[0, 1, 2, 3, 4, 5, 6]);
        assert!(cands.contains(&3), "collinear boundary point pruned");
        assert!(!cands.contains(&4), "interior point kept");
        assert!(!cands.contains(&5), "interior point kept");
        assert!(!cands.contains(&6), "interior point kept");
    }
}
