//! Structural and geometric property tests for the hull algorithms across
//! dimensions and distributions.

use chull_core::baseline::brute;
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::prepare_points;
use chull_core::seq::incremental_hull_run;
use chull_core::verify::{verify_containment, verify_hull};
use chull_geometry::rng::ChaCha8Rng;
use chull_geometry::{generators, PointSet};

/// Every d-dimensional hull: each ridge is shared by exactly two facets, so
/// ridges = d * F / 2; hull vertices are a subset of the input; every facet
/// is one-sided.
fn structural_invariants(pts: &PointSet) {
    let run = incremental_hull_run(pts);
    let d = pts.dim();
    let f = run.output.num_facets();
    assert_eq!(run.output.num_ridges() * 2, d * f, "ridge/facet incidence");
    verify_hull(pts, &run.output).unwrap();
    verify_containment(pts, &run.output).unwrap();
    // Facet count parity in 3D: triangulated closed surface has even F.
    if d == 3 {
        assert_eq!(f % 2, 0, "3D triangulated hull must have even facet count");
    }
    // The created-facet list starts with the d+1 seed facets at depth 0.
    assert!(run.depths[..=d].iter().all(|&x| x == 0));
}

#[test]
fn invariants_across_dimensions() {
    for (dim, n) in [(2usize, 300), (3, 300), (4, 80), (5, 48), (6, 32)] {
        for seed in 0..2u64 {
            let pts = prepare_points(&generators::ball_d(dim, n, 1 << 20, seed), seed + 3);
            structural_invariants(&pts);
        }
    }
}

#[test]
fn near_sphere_everything_extreme_3d() {
    let n = 300;
    let pts = prepare_points(
        &PointSet::from_points3(&generators::near_sphere_3d(n, 1 << 24, 2)),
        5,
    );
    let run = incremental_hull_run(&pts);
    // On a near-sphere, almost every point is a hull vertex.
    let v = run.output.vertices().len();
    assert!(v > n * 95 / 100, "only {v}/{n} points extreme");
    verify_hull(&pts, &run.output).unwrap();
}

#[test]
fn paraboloid_all_extreme_3d() {
    // Points on the exact paraboloid are in strictly convex position.
    let n = 250;
    let pts = prepare_points(
        &PointSet::from_points3(&generators::paraboloid_3d(n, 1 << 10, 4)),
        6,
    );
    let run = incremental_hull_run(&pts);
    assert_eq!(run.output.vertices().len(), n);
    verify_hull(&pts, &run.output).unwrap();
    // Parallel agrees.
    let par = parallel_hull(&pts, ParOptions::default());
    assert_eq!(run.output.canonical(), par.output.canonical());
}

#[test]
fn simplex_4d_exact() {
    // d+1 points: the hull is all d+1 facets, no insertions happen.
    let mut rows = vec![vec![0i64; 4]];
    for i in 0..4 {
        let mut r = vec![0i64; 4];
        r[i] = 100;
        rows.push(r);
    }
    let pts = PointSet::from_rows(4, &rows);
    let run = incremental_hull_run(&pts);
    assert_eq!(run.output.num_facets(), 5);
    assert_eq!(run.stats.visibility_tests, 0);
    assert_eq!(run.stats.dep_depth, 0);
}

#[test]
fn cube_corners_4d_match_brute() {
    // The 16 corners of a 4-cube, perturbed into general position.
    let mut rows = Vec::new();
    let mut salt = 1i64;
    for mask in 0..16u32 {
        let mut r = vec![0i64; 4];
        for (b, slot) in r.iter_mut().enumerate() {
            *slot = if mask >> b & 1 == 1 {
                1000 + salt % 7
            } else {
                -(1000 + salt % 5)
            };
            salt = salt.wrapping_mul(31).wrapping_add(17) % 1000;
        }
        rows.push(r);
    }
    let pts = prepare_points(&PointSet::from_rows(4, &rows), 9);
    let run = incremental_hull_run(&pts);
    let oracle = brute::hull_output(&pts);
    assert_eq!(run.output.canonical(), oracle.canonical());
    assert_eq!(run.output.vertices().len(), 16);
}

/// Random 4D point sets: incremental equals brute force. Deterministic
/// pseudo-random cases stand in for the original proptest strategy.
#[test]
fn prop_4d_matches_brute() {
    let mut r = ChaCha8Rng::seed_from_u64(0x4d4d);
    let mut checked = 0;
    while checked < 16 {
        let len = r.gen_range(8usize..16);
        let mut rows: Vec<Vec<i64>> = (0..len)
            .map(|_| (0..4).map(|_| r.gen_range(-200i64..200)).collect())
            .collect();
        let seed = r.gen_range(0u64..100);
        rows.sort();
        rows.dedup();
        if rows.len() < 6 {
            continue;
        }
        let pts = PointSet::from_rows(4, &rows);
        let refs: Vec<&[i64]> = (0..pts.len()).map(|i| pts.point(i)).collect();
        if chull_geometry::exact::affine_rank(&refs) != 5 {
            continue;
        }
        let prepared = prepare_points(&pts, seed);
        let run = incremental_hull_run(&prepared);
        let oracle = brute::hull_output(&prepared);
        assert_eq!(run.output.canonical(), oracle.canonical());
        checked += 1;
    }
}

/// Insertion order never changes the hull (only the dependence
/// structure).
#[test]
fn prop_order_invariance() {
    let mut r = ChaCha8Rng::seed_from_u64(0x0ede);
    for _ in 0..16 {
        let seed_a = r.gen_range(0u64..500);
        let seed_b = r.gen_range(500u64..1000);
        let pts = PointSet::from_points2(&generators::disk_2d(120, 1 << 20, 77));
        let a = incremental_hull_run(&prepare_points(&pts, seed_a));
        let b = incremental_hull_run(&prepare_points(&pts, seed_b));
        // Canonical forms use ids, which differ across permutations —
        // compare vertex coordinate sets and facet counts instead.
        let coords = |run: &chull_core::seq::SeqRun, ps: &PointSet| {
            run.output
                .vertices()
                .iter()
                .map(|&v| (ps.pt(v)[0], ps.pt(v)[1]))
                .collect::<std::collections::BTreeSet<_>>()
        };
        let pa = prepare_points(&pts, seed_a);
        let pb = prepare_points(&pts, seed_b);
        assert_eq!(coords(&a, &pa), coords(&b, &pb));
        assert_eq!(a.output.num_facets(), b.output.num_facets());
    }
}
