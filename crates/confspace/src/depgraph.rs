//! The configuration dependence graph (Definition 4.1) and its statistics.
//!
//! For an insertion order `S = <x_1, ..., x_n>`, let
//! `V_i = T({x_1..x_i}) \ T({x_1..x_{i-1}})` — the configurations added on
//! step `i`. The dependence graph has a vertex per added configuration and,
//! for `i > n_b`, edges from the (≤ k) configurations of
//! `T({x_1..x_{i-1}})` that support `(pi, x_i)`.
//!
//! Theorem 4.2 bounds the depth: for `sigma >= g k e^2`,
//! `Pr[D(G(S)) >= sigma * H_n] < c * n^{-(sigma - g)}`. The builder below
//! materializes the graph generically from any [`ConfigurationSpace`]
//! oracle, records per-configuration depths, and reports the statistics the
//! E1 experiment tabulates.

use crate::space::ConfigurationSpace;
use std::collections::HashMap;

/// Statistics of one configuration dependence graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DepGraphStats {
    /// Number of objects inserted.
    pub n: usize,
    /// Longest dependence path `D(G(S))`.
    pub depth: usize,
    /// Total number of configurations ever created (`|V|`).
    pub configs_created: usize,
    /// Sum over created configurations of their conflict-set sizes
    /// (the quantity bounded by Theorem 3.1).
    pub total_conflicts: usize,
    /// `|T(Y_i)|` for each prefix (used by the Clarkson–Shor bound).
    pub active_sizes: Vec<usize>,
    /// Number of configurations at each depth level.
    pub level_sizes: Vec<usize>,
}

impl DepGraphStats {
    /// The harmonic number `H_n`.
    pub fn harmonic(&self) -> f64 {
        (1..=self.n).map(|i| 1.0 / i as f64).sum()
    }

    /// The normalized depth `D(G(S)) / H_n` that Theorem 4.2 predicts is
    /// bounded by a constant (w.r.t. `n`) with high probability.
    pub fn depth_over_harmonic(&self) -> f64 {
        self.depth as f64 / self.harmonic()
    }
}

/// Build the configuration dependence graph for `order` and return its
/// statistics. Generic over the space oracle; cost is dominated by
/// `n` calls to `active_configs` plus one `support_set` per created
/// configuration.
///
/// When `verify_supports` is set, every support set is additionally checked
/// against Definition 3.2 (slow; use in tests).
///
/// ```
/// use chull_confspace::{build_dep_graph, instances::sorted_pairs::SortedPairsSpace};
/// let space = SortedPairsSpace::new(64);
/// let order = chull_geometry::generators::random_permutation(64, 1);
/// let stats = build_dep_graph(&space, &order, false);
/// assert!(stats.depth >= 5 && (stats.depth as f64) < 10.0 * stats.harmonic());
/// ```
pub fn build_dep_graph<S: ConfigurationSpace>(
    space: &S,
    order: &[usize],
    verify_supports: bool,
) -> DepGraphStats {
    let nb = space.base_size();
    assert!(order.len() >= nb, "order shorter than the base size");

    // depth of every currently-active configuration, plus bookkeeping for
    // configurations created earlier (configs are never re-created: once
    // deactivated a configuration conflicts with an inserted object).
    let mut depth_of: HashMap<S::Config, usize> = HashMap::new();
    let mut prev_active: Vec<S::Config> = space.active_configs(&order[..nb]);
    for cfg in &prev_active {
        depth_of.insert(cfg.clone(), 0);
    }
    let mut configs_created = prev_active.len();
    let mut total_conflicts: usize = prev_active
        .iter()
        .map(|cfg| count_conflicts(space, cfg, order))
        .sum();
    let mut active_sizes = vec![prev_active.len()];
    let mut max_depth = 0usize;
    let mut level_sizes = vec![prev_active.len()];

    for i in (nb + 1)..=order.len() {
        let prefix = &order[..i];
        let x = order[i - 1];
        let active = space.active_configs(prefix);
        let prev_set: std::collections::HashSet<&S::Config> = prev_active.iter().collect();
        for cfg in &active {
            if prev_set.contains(cfg) {
                continue;
            }
            // Newly added configuration: depends on its support set in
            // T(Y_{i-1}).
            let support = space.support_set(prefix, cfg, x);
            assert!(
                support.len() <= space.support_bound(),
                "support set of size {} exceeds k = {}",
                support.len(),
                space.support_bound()
            );
            if verify_supports {
                let res = crate::space::check_support(space, prefix, cfg, x);
                assert_eq!(
                    res,
                    crate::space::SupportCheck::Valid,
                    "invalid support set for {cfg:?} at step {i}"
                );
            }
            let d = 1 + support
                .iter()
                .map(|phi| {
                    *depth_of
                        .get(phi)
                        .unwrap_or_else(|| panic!("support config {phi:?} was never created"))
                })
                .max()
                .unwrap_or(0);
            depth_of.insert(cfg.clone(), d);
            if d > max_depth {
                max_depth = d;
            }
            if level_sizes.len() <= d {
                level_sizes.resize(d + 1, 0);
            }
            level_sizes[d] += 1;
            configs_created += 1;
            total_conflicts += count_conflicts(space, cfg, order);
        }
        active_sizes.push(active.len());
        prev_active = active;
    }

    DepGraphStats {
        n: order.len(),
        depth: max_depth,
        configs_created,
        total_conflicts,
        active_sizes,
        level_sizes,
    }
}

fn count_conflicts<S: ConfigurationSpace>(space: &S, cfg: &S::Config, order: &[usize]) -> usize {
    order.iter().filter(|&&o| space.conflicts(cfg, o)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::sorted_pairs::SortedPairsSpace;

    #[test]
    fn sorted_pairs_depth_is_logarithmic() {
        // The sorted-pairs toy space is exactly a treap: expected depth
        // O(log n). With n = 256 and a few seeds, depth must stay far below
        // n and above log2(n) - 1.
        for seed in 0..3u64 {
            let n = 256;
            let space = SortedPairsSpace::new(n);
            let order = chull_geometry::generators::random_permutation(n, seed);
            let stats = build_dep_graph(&space, &order, false);
            assert!(stats.depth >= 7, "depth {} suspiciously small", stats.depth);
            assert!(
                stats.depth <= 12 * (n as f64).ln() as usize,
                "depth {} too large for n = {n}",
                stats.depth
            );
            // Every insertion creates exactly 2 configurations (split one
            // interval into two), starting from 1 seed interval... plus the
            // boundary pairs; just check totals are sane.
            assert!(stats.configs_created >= n - 2);
        }
    }

    #[test]
    fn verify_supports_flag_passes_on_toy_space() {
        let n = 64;
        let space = SortedPairsSpace::new(n);
        let order = chull_geometry::generators::random_permutation(n, 11);
        let stats = build_dep_graph(&space, &order, true);
        assert!(stats.depth > 0);
    }

    #[test]
    fn sorted_order_insertion_is_deep() {
        // E12(c): inserting in sorted order makes every new pair depend on
        // the previous one — depth Theta(n), demonstrating why *randomized*
        // insertion matters.
        let n = 128;
        let space = SortedPairsSpace::new(n);
        let order: Vec<usize> = (0..n).collect();
        let stats = build_dep_graph(&space, &order, false);
        assert!(
            stats.depth >= n / 2,
            "sorted insertion should be deep, got {}",
            stats.depth
        );
    }

    #[test]
    fn level_sizes_sum_to_configs() {
        let n = 100;
        let space = SortedPairsSpace::new(n);
        let order = chull_geometry::generators::random_permutation(n, 3);
        let stats = build_dep_graph(&space, &order, false);
        assert_eq!(
            stats.level_sizes.iter().sum::<usize>(),
            stats.configs_created
        );
        assert_eq!(stats.active_sizes.len(), n - space.base_size() + 1);
    }
}
