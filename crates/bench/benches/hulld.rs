//! Higher-dimensional hull benchmarks (d = 4, 5): the regime where the
//! `O(n^{floor(d/2)})` term dominates the work bound.

use chull_bench::harness::Bench;
use chull_bench::prepared_ball_d;
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;

fn main() {
    let mut b = Bench::new().samples(5).target_sample_time(0.2);
    for (dim, n) in [(4usize, 1000usize), (5, 400)] {
        let pts = prepared_ball_d(dim, n, 13);
        b.bench(&format!("hulld/d{dim}_seq/{n}"), || {
            incremental_hull_run(&pts)
        });
        b.bench(&format!("hulld/d{dim}_par/{n}"), || {
            parallel_hull(&pts, ParOptions::default())
        });
    }
    b.report();
}
