//! A minimal plain-HTTP `GET /metrics` listener.
//!
//! Just enough HTTP/1.0 for `curl` and a Prometheus scraper: one
//! accept thread, connections handled inline (scrapes are rare and
//! cheap), `Connection: close` semantics. No external dependencies —
//! the whole server is a `TcpListener` loop.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Work to run just before each render (e.g. refreshing point-in-time
/// gauges such as queue depths from their owning structures).
pub type RenderHook = Arc<dyn Fn() + Send + Sync>;

/// Handle to a running metrics listener; dropping it stops the
/// listener.
pub struct MetricsHttpHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHttpHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread. Idempotent.
    pub fn shutdown(&mut self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsHttpHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `GET /metrics` with
/// the global registry's exposition, running `pre_render` (if any)
/// before each render.
pub fn serve_metrics_http(
    addr: &str,
    pre_render: Option<RenderHook>,
) -> io::Result<MetricsHttpHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("obs-http".into())
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stop2.load(Ordering::SeqCst) {
                        return;
                    }
                    handle_connection(stream, pre_render.as_deref());
                }
                Err(_) => {
                    if stop2.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        })?;
    Ok(MetricsHttpHandle {
        addr: local,
        stop,
        thread: Some(thread),
    })
}

fn handle_connection(mut stream: TcpStream, pre_render: Option<&(dyn Fn() + Send + Sync)>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));

    // Read until the end of the request head (we ignore bodies).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request_line = match head.split(|&b| b == b'\r').next() {
        Some(l) => String::from_utf8_lossy(l).into_owned(),
        None => return,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    let (status, content_type, body) = if method == "GET" && (path == "/metrics" || path == "/") {
        if let Some(hook) = pre_render {
            hook();
        }
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            crate::registry().render(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_and_404s() {
        crate::arm();
        crate::registry()
            .counter("obs_http_test_total", "test counter")
            .add(9);
        let mut handle = serve_metrics_http("127.0.0.1:0", None).unwrap();
        let ok = get(handle.local_addr(), "/metrics");
        assert!(ok.starts_with("HTTP/1.0 200"), "{ok}");
        assert!(ok.contains("obs_http_test_total 9"), "{ok}");
        let missing = get(handle.local_addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");
        handle.shutdown();
    }

    #[test]
    fn pre_render_hook_runs_per_scrape() {
        crate::arm();
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let mut handle = serve_metrics_http(
            "127.0.0.1:0",
            Some(Arc::new(move || {
                h2.fetch_add(1, Ordering::SeqCst);
            })),
        )
        .unwrap();
        get(handle.local_addr(), "/metrics");
        get(handle.local_addr(), "/metrics");
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        handle.shutdown();
    }
}
