//! The paper's theorems, checked end to end:
//!
//! * the fast instrumented dependence depth (computed inside Algorithm 2)
//!   equals the brute-force configuration-dependence-graph depth from the
//!   generic oracle (`chull-confspace`) on the same insertion order;
//! * Theorem 1.1 / 4.2: depth `O(log n)` whp, and the tail bound's shape;
//! * Theorem 5.3: `ProcessRidge` recursion depth is within a constant of
//!   the dependence depth;
//! * Theorem 3.1: Clarkson–Shor total conflict bound.

use convex_hull_suite::confspace::depgraph::build_dep_graph;
use convex_hull_suite::confspace::instances::hull2d::Hull2dSpace;
use convex_hull_suite::core::par::rounds::rounds_hull;
use convex_hull_suite::core::par::{parallel_hull, ParOptions};
use convex_hull_suite::core::prepare_points;
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, Point2i, PointSet};

/// The instrumented depth in `seq::incremental_hull_run` must equal the
/// oracle's Definition 4.1 depth for the identity insertion order.
#[test]
fn instrumented_depth_matches_confspace_oracle() {
    for seed in 0..4u64 {
        let n = 64;
        let points = generators::disk_2d(n, 1 << 20, seed);
        let ps = prepare_points(&PointSet::from_points2(&points), seed + 1);
        // The prepared order *is* the identity order of `ps`.
        let run = incremental_hull_run(&ps);

        let oracle_points: Vec<Point2i> = (0..ps.len())
            .map(|i| Point2i::new(ps.point(i)[0], ps.point(i)[1]))
            .collect();
        let space = Hull2dSpace::new(oracle_points);
        let order: Vec<usize> = (0..n).collect();
        let stats = build_dep_graph(&space, &order, true);

        assert_eq!(
            run.stats.dep_depth as usize, stats.depth,
            "instrumented vs oracle depth (seed {seed})"
        );
        assert_eq!(
            run.stats.facets_created as usize, stats.configs_created,
            "created-config counts (seed {seed})"
        );
    }
}

/// Theorem 1.1: `depth / H_n` stays bounded as `n` grows (2D and 3D).
#[test]
fn depth_over_harmonic_is_flat() {
    for dim in [2usize, 3] {
        let mut ratios = Vec::new();
        for e in [9u32, 11, 13] {
            let n = 1usize << e;
            let ps = if dim == 2 {
                PointSet::from_points2(&generators::disk_2d(n, 1 << 24, e as u64))
            } else {
                PointSet::from_points3(&generators::ball_3d(n, 1 << 24, e as u64))
            };
            let ps = prepare_points(&ps, 31 + e as u64);
            let run = incremental_hull_run(&ps);
            ratios.push(run.stats.depth_over_harmonic());
        }
        // Theorem 4.2 with g = d, k = 2 gives sigma >= 2 d e^2; the
        // observed constant is far smaller, but most importantly it must
        // not grow with n.
        for r in &ratios {
            assert!(
                *r < 2.0 * (dim as f64) * (std::f64::consts::E.powi(2)),
                "ratio {r}"
            );
        }
        assert!(
            ratios[2] < ratios[0] * 2.0 + 1.0,
            "depth/H_n grew suspiciously: {ratios:?}"
        );
    }
}

/// Theorem 5.3: the `ProcessRidge` recursion depth tracks the dependence
/// depth (each level of the dependence graph adds O(1) recursion levels).
#[test]
fn recursion_depth_tracks_dependence_depth() {
    for seed in 0..3u64 {
        let n = 2048;
        let ps = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(n, 1 << 24, seed)),
            seed + 5,
        );
        let seq = incremental_hull_run(&ps);
        let par = parallel_hull(&ps, ParOptions::default());
        let rr = rounds_hull(&ps, false);
        // Theorem 4.3: the recursion depth is bounded by the dependence
        // depth (plus the seed level and the ridge handoff). It can be
        // *smaller*: a spawned ProcessRidge descends from whichever facet
        // of the ridge arrived second, not from the deeper support.
        assert!(
            par.stats.recursion_depth <= seq.stats.dep_depth + 3,
            "recursion depth {} vs dependence depth {} (seed {seed})",
            par.stats.recursion_depth,
            seq.stats.dep_depth
        );
        assert!(par.stats.recursion_depth >= 3);
        // The synchronous round count dominates the dependence depth (a
        // facet at dependence depth d cannot be created before round d)
        // and stays within a constant of it.
        assert!(rr.stats.rounds >= seq.stats.dep_depth);
        assert!(
            rr.stats.rounds <= seq.stats.dep_depth + 3,
            "rounds {} vs dependence depth {} (seed {seed})",
            rr.stats.rounds,
            seq.stats.dep_depth
        );
    }
}

/// Theorem 3.1 (Clarkson–Shor): measured total conflicts within the bound,
/// averaged over seeds, for the scalable 2D path.
#[test]
fn clarkson_shor_bound_at_scale() {
    let n = 4096;
    let mut ratios = Vec::new();
    for seed in 0..4u64 {
        let ps = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(n, 1 << 24, seed + 40)),
            seed,
        );
        let run = incremental_hull_run(&ps);
        // Total conflicts ~ visibility tests that returned "visible" +
        // facet defining work; tests are an upper proxy for conflicts.
        // Bound: n g^2 sum |T_i| / i^2 with |T_i| <= i (2D hull edges).
        let g = 2.0f64;
        let bound: f64 = (1..=n)
            .map(|i| i as f64 / (i as f64 * i as f64))
            .sum::<f64>()
            * g
            * g
            * n as f64;
        ratios.push(run.stats.visibility_tests as f64 / bound);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean <= 1.0, "mean tests/bound ratio {mean} > 1");
}

/// E12(c): sorted insertion order destroys the logarithmic depth.
#[test]
fn sorted_order_is_deep() {
    let n = 4096;
    let mut points = generators::disk_2d(n, 1 << 24, 9);
    points.sort();
    let ps = PointSet::from_points2(&points);
    let simplex = convex_hull_suite::core::context::initial_simplex(&ps);
    let chosen: Vec<usize> = simplex.iter().map(|&v| v as usize).collect();
    let mut order = chosen.clone();
    order.extend((0..ps.len()).filter(|i| !chosen.contains(i)));
    let sorted_ps = ps.permuted(&order);
    let sorted_run = incremental_hull_run(&sorted_ps);

    let random_ps = prepare_points(&ps, 3);
    let random_run = incremental_hull_run(&random_ps);

    assert!(
        sorted_run.stats.dep_depth > 4 * random_run.stats.dep_depth,
        "sorted depth {} should far exceed random depth {}",
        sorted_run.stats.dep_depth,
        random_run.stats.dep_depth
    );
}

/// Tail-bound shape (Theorem 4.2): over many runs, the worst observed
/// depth stays under `sigma * H_n` for sigma = g k e^2.
#[test]
fn depth_tail_bound() {
    let n = 512;
    let sigma = 2.0 * 2.0 * std::f64::consts::E.powi(2); // g k e^2 for 2D
    let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut max_depth = 0u64;
    for seed in 0..24u64 {
        let ps = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(n, 1 << 24, 77)),
            seed,
        );
        let run = incremental_hull_run(&ps);
        max_depth = max_depth.max(run.stats.dep_depth);
    }
    assert!(
        (max_depth as f64) < sigma * hn,
        "worst depth {max_depth} exceeds sigma H_n = {:.1}",
        sigma * hn
    );
}
