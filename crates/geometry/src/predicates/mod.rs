//! Geometric predicates: exact integer kernels and robust float kernels.

pub mod float;
pub mod int;

pub use int::{incircle, insphere, orient2d, orient3d, orientd, orientd_hom};
