//! Robust floating-point predicates: static filter + exact expansion fallback.
//!
//! Each predicate first evaluates the determinant in plain `f64` and accepts
//! the sign when its magnitude exceeds a forward error bound (Shewchuk's
//! "stage A" filter). Otherwise it recomputes the sign exactly with the
//! expansion arithmetic of [`crate::exact::expansion`], so the returned sign
//! is always the sign of the exact real determinant.
//!
//! Sign conventions match the integer predicates in
//! [`crate::predicates::int`] (homogeneous determinants; `orient2d > 0` is
//! counterclockwise).

use crate::exact::expansion::{det_expansion_rows, Expansion};
use crate::point::{Point2f, Point3f};

/// Machine epsilon in Shewchuk's convention: 2^-53.
const EPS: f64 = f64::EPSILON / 2.0;

/// Stage-A error bound coefficient for orient2d: (3 + 16 eps) eps.
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPS) * EPS;
/// Stage-A error bound coefficient for orient3d: (7 + 56 eps) eps.
const O3D_ERRBOUND_A: f64 = (7.0 + 56.0 * EPS) * EPS;
/// Stage-A error bound coefficient for incircle: (10 + 96 eps) eps.
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPS) * EPS;
/// Stage-A error bound coefficient for insphere: (16 + 224 eps) eps.
const ISP_ERRBOUND_A: f64 = (16.0 + 224.0 * EPS) * EPS;

#[inline]
fn sign_f64(v: f64) -> i32 {
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Orientation of 2D triangle `(a, b, c)`: `1` = counterclockwise,
/// `-1` = clockwise, `0` = exactly collinear. Exact for all finite inputs.
pub fn orient2d(a: Point2f, b: Point2f, c: Point2f) -> i32 {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return sign_f64(det);
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return sign_f64(det);
        }
        -detleft - detright
    } else {
        return sign_f64(-detright);
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return sign_f64(det);
    }
    orient2d_exact(a, b, c)
}

/// Exact orient2d via the homogeneous 3x3 determinant in expansions.
fn orient2d_exact(a: Point2f, b: Point2f, c: Point2f) -> i32 {
    let one = || Expansion::from_f64(1.0);
    let rows = vec![
        vec![Expansion::from_f64(a.x), Expansion::from_f64(a.y), one()],
        vec![Expansion::from_f64(b.x), Expansion::from_f64(b.y), one()],
        vec![Expansion::from_f64(c.x), Expansion::from_f64(c.y), one()],
    ];
    det_expansion_rows(&rows).sign()
}

/// Orientation of 3D tetrahedron `(a, b, c, d)`: the sign of the homogeneous
/// 4x4 determinant with rows `a, b, c, d`. Exact for all finite inputs.
pub fn orient3d(a: Point3f, b: Point3f, c: Point3f, d: Point3f) -> i32 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let adz = a.z - d.z;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let bdz = b.z - d.z;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;
    let cdz = c.z - d.z;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return sign_f64(det);
    }
    orient3d_exact(a, b, c, d)
}

/// Exact orient3d via the homogeneous 4x4 determinant in expansions.
fn orient3d_exact(a: Point3f, b: Point3f, c: Point3f, d: Point3f) -> i32 {
    let row = |p: Point3f| {
        vec![
            Expansion::from_f64(p.x),
            Expansion::from_f64(p.y),
            Expansion::from_f64(p.z),
            Expansion::from_f64(1.0),
        ]
    };
    let rows = vec![row(a), row(b), row(c), row(d)];
    det_expansion_rows(&rows).sign()
}

/// Incircle test: `1` iff `d` is strictly inside the circle through
/// `a, b, c` (counterclockwise `abc`), `-1` outside, `0` cocircular.
/// Exact for all finite inputs.
pub fn incircle(a: Point2f, b: Point2f, c: Point2f, d: Point2f) -> i32 {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return sign_f64(det);
    }
    incircle_exact(a, b, c, d)
}

/// Exact incircle via the homogeneous lifted 4x4 determinant in expansions.
fn incircle_exact(a: Point2f, b: Point2f, c: Point2f, d: Point2f) -> i32 {
    let row = |p: Point2f| {
        let lift = Expansion::from_product(p.x, p.x).add(&Expansion::from_product(p.y, p.y));
        vec![
            Expansion::from_f64(p.x),
            Expansion::from_f64(p.y),
            lift,
            Expansion::from_f64(1.0),
        ]
    };
    let rows = vec![row(a), row(b), row(c), row(d)];
    det_expansion_rows(&rows).sign()
}

/// Insphere test: `1` iff `e` is strictly inside the sphere through
/// `a, b, c, d` (positively oriented per [`orient3d`]), `-1` outside,
/// `0` cospherical. Exact for all finite inputs.
pub fn insphere(a: Point3f, b: Point3f, c: Point3f, d: Point3f, e: Point3f) -> i32 {
    let aex = a.x - e.x;
    let aey = a.y - e.y;
    let aez = a.z - e.z;
    let bex = b.x - e.x;
    let bey = b.y - e.y;
    let bez = b.z - e.z;
    let cex = c.x - e.x;
    let cey = c.y - e.y;
    let cez = c.z - e.z;
    let dex = d.x - e.x;
    let dey = d.y - e.y;
    let dez = d.z - e.z;

    let aexbey = aex * bey;
    let bexaey = bex * aey;
    let ab = aexbey - bexaey;
    let bexcey = bex * cey;
    let cexbey = cex * bey;
    let bc = bexcey - cexbey;
    let cexdey = cex * dey;
    let dexcey = dex * cey;
    let cd = cexdey - dexcey;
    let dexaey = dex * aey;
    let aexdey = aex * dey;
    let da = dexaey - aexdey;
    let aexcey = aex * cey;
    let cexaey = cex * aey;
    let ac = aexcey - cexaey;
    let bexdey = bex * dey;
    let dexbey = dex * bey;
    let bd = bexdey - dexbey;

    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    let det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    let aezplus = aez.abs();
    let bezplus = bez.abs();
    let cezplus = cez.abs();
    let dezplus = dez.abs();
    let aexbeyplus = aexbey.abs();
    let bexaeyplus = bexaey.abs();
    let bexceyplus = bexcey.abs();
    let cexbeyplus = cexbey.abs();
    let cexdeyplus = cexdey.abs();
    let dexceyplus = dexcey.abs();
    let dexaeyplus = dexaey.abs();
    let aexdeyplus = aexdey.abs();
    let aexceyplus = aexcey.abs();
    let cexaeyplus = cexaey.abs();
    let bexdeyplus = bexdey.abs();
    let dexbeyplus = dexbey.abs();
    let permanent = ((cexdeyplus + dexceyplus) * bezplus
        + (dexbeyplus + bexdeyplus) * cezplus
        + (bexceyplus + cexbeyplus) * dezplus)
        * alift
        + ((dexaeyplus + aexdeyplus) * cezplus
            + (aexceyplus + cexaeyplus) * dezplus
            + (cexdeyplus + dexceyplus) * aezplus)
            * blift
        + ((aexbeyplus + bexaeyplus) * dezplus
            + (bexdeyplus + dexbeyplus) * aezplus
            + (dexaeyplus + aexdeyplus) * bezplus)
            * clift
        + ((bexceyplus + cexbeyplus) * aezplus
            + (cexaeyplus + aexceyplus) * bezplus
            + (aexbeyplus + bexaeyplus) * cezplus)
            * dlift;
    let errbound = ISP_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return sign_f64(det);
    }
    insphere_exact(a, b, c, d, e)
}

/// Exact insphere via the homogeneous lifted 5x5 determinant in expansions.
fn insphere_exact(a: Point3f, b: Point3f, c: Point3f, d: Point3f, e: Point3f) -> i32 {
    let row = |p: Point3f| {
        let lift = Expansion::from_product(p.x, p.x)
            .add(&Expansion::from_product(p.y, p.y))
            .add(&Expansion::from_product(p.z, p.z));
        vec![
            Expansion::from_f64(p.x),
            Expansion::from_f64(p.y),
            Expansion::from_f64(p.z),
            lift,
            Expansion::from_f64(1.0),
        ]
    };
    let rows = vec![row(a), row(b), row(c), row(d), row(e)];
    det_expansion_rows(&rows).sign()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2(x: f64, y: f64) -> Point2f {
        Point2f::new(x, y)
    }
    fn p3(x: f64, y: f64, z: f64) -> Point3f {
        Point3f::new(x, y, z)
    }

    #[test]
    fn orient2d_basic() {
        assert_eq!(orient2d(p2(0.0, 0.0), p2(1.0, 0.0), p2(0.0, 1.0)), 1);
        assert_eq!(orient2d(p2(0.0, 0.0), p2(0.0, 1.0), p2(1.0, 0.0)), -1);
        assert_eq!(orient2d(p2(0.0, 0.0), p2(1.0, 1.0), p2(2.0, 2.0)), 0);
    }

    #[test]
    fn orient2d_adversarial_near_collinear() {
        // Classical robustness test: walk a point along a nearly-degenerate
        // line; naive evaluation flips signs chaotically, the exact fallback
        // must produce a coherent (monotone) sequence.
        let a = p2(12.0, 12.0);
        let b = p2(24.0, 24.0);
        let mut signs = Vec::new();
        for i in 0..32 {
            // Points on the line y = x perturbed by one ulp at a time.
            let x = 0.5 + (i as f64) * f64::EPSILON;
            signs.push(orient2d(p2(x, 0.5), a, b));
        }
        // The sequence must be monotone nonincreasing or nondecreasing
        // (a single sign change as the point crosses the line), never
        // oscillating.
        let changes = signs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(changes <= 2, "sign sequence oscillates: {signs:?}");
        // And the exactly-on-line case is zero.
        assert_eq!(orient2d(p2(0.5, 0.5), a, b), 0);
    }

    #[test]
    fn orient2d_exact_matches_filter_on_easy_input() {
        let cases = [
            (p2(0.1, 0.2), p2(3.4, -1.2), p2(-5.0, 2.2)),
            (p2(1e30, 1.0), p2(-1e30, 2.0), p2(0.0, -1e10)),
        ];
        for (a, b, c) in cases {
            assert_eq!(orient2d(a, b, c), orient2d_exact(a, b, c));
        }
    }

    #[test]
    fn orient3d_basic_and_exact_agree() {
        let a = p3(0.0, 0.0, 0.0);
        let b = p3(1.0, 0.0, 0.0);
        let c = p3(0.0, 1.0, 0.0);
        let d = p3(0.0, 0.0, 1.0);
        assert_eq!(orient3d(a, b, c, d), -1);
        assert_eq!(orient3d(a, c, b, d), 1);
        assert_eq!(orient3d(a, b, c, p3(0.5, 0.5, 0.0)), 0);
        assert_eq!(orient3d(a, b, c, d), orient3d_exact(a, b, c, d));
    }

    #[test]
    fn orient3d_near_coplanar() {
        // d within one ulp of the plane z = 0.
        let a = p3(0.0, 0.0, 0.0);
        let b = p3(1.0, 0.0, 0.0);
        let c = p3(0.0, 1.0, 0.0);
        let tiny = f64::MIN_POSITIVE;
        assert_eq!(
            orient3d(a, b, c, p3(0.3, 0.3, tiny)),
            orient3d_exact(a, b, c, p3(0.3, 0.3, tiny))
        );
        assert_ne!(orient3d(a, b, c, p3(0.3, 0.3, tiny)), 0);
        assert_eq!(orient3d(a, b, c, p3(0.3, 0.3, 0.0)), 0);
    }

    #[test]
    fn incircle_basic() {
        let a = p2(0.0, 0.0);
        let b = p2(2.0, 0.0);
        let c = p2(0.0, 2.0);
        assert_eq!(incircle(a, b, c, p2(1.0, 1.0)), 1);
        assert_eq!(incircle(a, b, c, p2(10.0, 10.0)), -1);
        assert_eq!(incircle(a, b, c, p2(2.0, 2.0)), 0);
    }

    #[test]
    fn incircle_near_cocircular() {
        // Unit circle through 4 exact points; nudge the query by one ulp.
        let a = p2(1.0, 0.0);
        let b = p2(0.0, 1.0);
        let c = p2(-1.0, 0.0);
        let on = p2(0.0, -1.0);
        assert_eq!(incircle(a, b, c, on), 0);
        let inside = p2(0.0, -1.0 + f64::EPSILON);
        let outside = p2(0.0, -1.0 - f64::EPSILON);
        assert_eq!(incircle(a, b, c, inside), 1);
        assert_eq!(incircle(a, b, c, outside), -1);
    }

    #[test]
    fn insphere_basic() {
        let a = p3(0.0, 0.0, 0.0);
        let b = p3(2.0, 0.0, 0.0);
        let c = p3(0.0, 2.0, 0.0);
        let d = p3(0.0, 0.0, 2.0);
        // Normalize orientation: want orient3d > 0.
        let (a, b) = if orient3d(a, b, c, d) > 0 {
            (a, b)
        } else {
            (b, a)
        };
        assert_eq!(insphere(a, b, c, d, p3(1.0, 1.0, 1.0)), 1);
        assert_eq!(insphere(a, b, c, d, p3(10.0, 10.0, 10.0)), -1);
        assert_eq!(insphere(a, b, c, d, p3(2.0, 2.0, 0.0)), 0);
    }

    #[test]
    fn float_and_integer_predicates_agree() {
        // Integer-valued float inputs must match the exact integer kernel.
        use crate::point::{Point2i, Point3i};
        use crate::predicates::int;
        let cases2 = [
            ((0i64, 0i64), (4, 1), (2, 7), (3, 3)),
            ((-5, 2), (9, -3), (0, 0), (1, 1)),
        ];
        for ((ax, ay), (bx, by), (cx, cy), (dx, dy)) in cases2 {
            let fa = p2(ax as f64, ay as f64);
            let fb = p2(bx as f64, by as f64);
            let fc = p2(cx as f64, cy as f64);
            let fd = p2(dx as f64, dy as f64);
            let ia = Point2i::new(ax, ay);
            let ib = Point2i::new(bx, by);
            let ic = Point2i::new(cx, cy);
            let id = Point2i::new(dx, dy);
            assert_eq!(orient2d(fa, fb, fc), int::orient2d(ia, ib, ic).as_i32());
            assert_eq!(
                incircle(fa, fb, fc, fd),
                int::incircle(ia, ib, ic, id).as_i32()
            );
        }
        let a = Point3i::new(0, 0, 0);
        let b = Point3i::new(3, 1, 0);
        let c = Point3i::new(1, 4, 0);
        let d = Point3i::new(2, 2, 5);
        let e = Point3i::new(1, 1, 1);
        let f3 = |p: Point3i| p3(p.x as f64, p.y as f64, p.z as f64);
        assert_eq!(
            orient3d(f3(a), f3(b), f3(c), f3(d)),
            int::orient3d(a, b, c, d).as_i32()
        );
        assert_eq!(
            insphere(f3(a), f3(b), f3(c), f3(d), f3(e)),
            int::insphere(a, b, c, d, e).as_i32()
        );
    }
}
