//! # chull-concurrent
//!
//! Lock-free substrate for the parallel incremental convex hull
//! (Algorithm 3 of Blelloch, Gu, Shun, Sun, SPAA 2020):
//!
//! * [`RidgeMapCas`] — the `InsertAndSet`/`GetValue` ridge multimap built on
//!   `CompareAndSwap` (the paper's Algorithm 4);
//! * [`RidgeMapTas`] — the same interface built on `TestAndSet` only (the
//!   paper's Appendix A, Algorithm 5), matching the binary-forking model's
//!   weaker primitive;
//! * [`ConcurrentArena`] — an append-only, lock-free arena with stable dense
//!   ids, used to store facets created concurrently;
//! * [`StripedCounter`] / [`AtomicMax`] — contention-free instrumentation;
//! * [`pool`] — a minimal scoped task pool for the dynamically spawned
//!   `ProcessRidge` tasks of Algorithm 3;
//! * [`BoundedQueue`] — a bounded MPMC queue with explicit backpressure,
//!   the ingest primitive of the `chull-service` serving layer;
//! * [`failpoint`] — a std-only deterministic fault-injection registry:
//!   named sites, armed by a seeded [`failpoint::FaultPlan`], that cost a
//!   single relaxed atomic load when disarmed;
//! * [`fast_hash`] — the deterministic FxHash-style hasher shared by every
//!   ridge map (sequential adjacency included).

#![warn(missing_docs)]

pub mod arena;
pub mod counters;
pub mod failpoint;
pub mod fast_hash;
pub mod pool;
pub mod queue;
pub mod ridge_map_cas;
pub mod ridge_map_locked;
pub mod ridge_map_tas;

pub use arena::ConcurrentArena;
pub use counters::{AtomicMax, StripedCounter};
pub use fast_hash::{FastBuildHasher, FastHashMap, FastHashSet, FxLikeHasher};
pub use queue::{BoundedQueue, PushError};
pub use ridge_map_cas::RidgeMapCas;
pub use ridge_map_locked::RidgeMapLocked;
pub use ridge_map_tas::RidgeMapTas;

/// The two interchangeable multimap implementations share this interface so
/// the hull algorithm can be instantiated with either (E12 ablation).
pub trait RidgeMultimap<K>: Sync {
    /// If `key` is new, associate `value` and return `true`; otherwise
    /// record `value` as the second value and return `false` (the caller is
    /// the unique loser for this key).
    fn insert_and_set(&self, key: K, value: u32) -> bool;
    /// The value associated with `key` that is not `not`; callable only by
    /// the loser of `insert_and_set(key, ..)`.
    fn get_value(&self, key: K, not: u32) -> u32;
}

impl<K: std::hash::Hash + Eq + Copy + Send + Sync> RidgeMultimap<K> for RidgeMapCas<K> {
    fn insert_and_set(&self, key: K, value: u32) -> bool {
        RidgeMapCas::insert_and_set(self, key, value)
    }
    fn get_value(&self, key: K, not: u32) -> u32 {
        RidgeMapCas::get_value(self, key, not)
    }
}

impl<K: std::hash::Hash + Eq + Copy + Send + Sync> RidgeMultimap<K> for RidgeMapTas<K> {
    fn insert_and_set(&self, key: K, value: u32) -> bool {
        RidgeMapTas::insert_and_set(self, key, value)
    }
    fn get_value(&self, key: K, not: u32) -> u32 {
        RidgeMapTas::get_value(self, key, not)
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<M: RidgeMultimap<u64>>(m: &M) {
        assert!(m.insert_and_set(3, 30));
        assert!(!m.insert_and_set(3, 31));
        assert_eq!(m.get_value(3, 31), 30);
    }

    #[test]
    fn both_impls_satisfy_trait() {
        exercise(&RidgeMapCas::<u64>::with_capacity(8));
        exercise(&RidgeMapTas::<u64>::with_capacity(8));
    }
}
