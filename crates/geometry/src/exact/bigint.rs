//! Arbitrary-precision signed integers for exact geometric determinants.
//!
//! The incremental hull needs exact sign-of-determinant tests in arbitrary
//! (constant) dimension. Minors computed by fraction-free Gaussian
//! elimination (Bareiss) grow beyond `i128` once the dimension or the
//! coordinate range is large, so we provide a small sign-magnitude big
//! integer: limbs are base-2^64 digits stored little-endian.
//!
//! Only the operations Bareiss elimination needs are implemented: addition,
//! subtraction, multiplication, exact division (division known to leave no
//! remainder, asserted), comparison, and sign inspection. Division uses
//! Knuth's Algorithm D.

use std::cmp::Ordering;
use std::fmt;

/// Sign of a [`BigInt`] (or of any exact quantity in this crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Map to the conventional `-1 / 0 / +1` integer.
    #[inline]
    pub fn as_i32(self) -> i32 {
        match self {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }

    /// Build from any signed integer-like comparison result.
    #[inline]
    pub fn from_i32(v: i32) -> Sign {
        match v.cmp(&0) {
            Ordering::Less => Sign::Negative,
            Ordering::Equal => Sign::Zero,
            Ordering::Greater => Sign::Positive,
        }
    }

    /// Sign of the product of two signed quantities.
    #[inline]
    pub fn product(self, other: Sign) -> Sign {
        Sign::from_i32(self.as_i32() * other.as_i32())
    }

    /// Flip positive to negative and vice versa.
    #[inline]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// Sign-magnitude arbitrary-precision integer.
///
/// Invariants: `limbs` has no trailing zero limbs; `negative` is `false`
/// when the value is zero.
///
/// ```
/// use chull_geometry::BigInt;
/// let a = BigInt::from(i64::MAX).mul(&BigInt::from(i64::MAX));
/// let b = a.mul(&a); // far beyond i128
/// assert_eq!(b.div_exact(&a), a);
/// assert!(b > a);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    negative: bool,
    limbs: Vec<u64>,
}

impl BigInt {
    /// The value 0.
    #[inline]
    pub fn zero() -> BigInt {
        BigInt {
            negative: false,
            limbs: Vec::new(),
        }
    }

    /// The value 1.
    #[inline]
    pub fn one() -> BigInt {
        BigInt {
            negative: false,
            limbs: vec![1],
        }
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Sign of the value.
    #[inline]
    pub fn sign(&self) -> Sign {
        if self.limbs.is_empty() {
            Sign::Zero
        } else if self.negative {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// Number of limbs in the magnitude (0 for zero).
    #[inline]
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// Number of significant bits in the magnitude (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    fn trim(&mut self) {
        while let Some(&0) = self.limbs.last() {
            self.limbs.pop();
        }
        if self.limbs.is_empty() {
            self.negative = false;
        }
    }

    /// In-place negation.
    #[inline]
    pub fn negate(&mut self) {
        if !self.limbs.is_empty() {
            self.negative = !self.negative;
        }
    }

    /// Negated copy.
    #[inline]
    pub fn neg(&self) -> BigInt {
        let mut r = self.clone();
        r.negate();
        r
    }

    /// Compare magnitudes only, ignoring sign.
    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i];
            let y = if i < short.len() { short[i] } else { 0 };
            let (s1, c1) = x.overflowing_add(y);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` for magnitudes with `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for i in 0..a.len() {
            let y = if i < b.len() { b[i] } else { 0 };
            let (d1, b1) = a[i].overflowing_sub(y);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while let Some(&0) = out.last() {
            out.pop();
        }
        out
    }

    /// Sum of two big integers.
    pub fn add(&self, other: &BigInt) -> BigInt {
        if self.negative == other.negative {
            let mut r = BigInt {
                negative: self.negative,
                limbs: Self::add_mag(&self.limbs, &other.limbs),
            };
            r.trim();
            r
        } else {
            match Self::cmp_mag(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    let mut r = BigInt {
                        negative: self.negative,
                        limbs: Self::sub_mag(&self.limbs, &other.limbs),
                    };
                    r.trim();
                    r
                }
                Ordering::Less => {
                    let mut r = BigInt {
                        negative: other.negative,
                        limbs: Self::sub_mag(&other.limbs, &self.limbs),
                    };
                    r.trim();
                    r
                }
            }
        }
    }

    /// Difference of two big integers.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Product of two big integers.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        let mut r = BigInt {
            negative: self.negative != other.negative,
            limbs: Self::mul_mag(&self.limbs, &other.limbs),
        };
        r.trim();
        r
    }

    /// Divide magnitudes: returns (quotient, remainder). Knuth Algorithm D.
    fn divmod_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            // Short division.
            let d = b[0] as u128;
            let mut q = vec![0u64; a.len()];
            let mut rem = 0u128;
            for i in (0..a.len()).rev() {
                let cur = (rem << 64) | a[i] as u128;
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            while let Some(&0) = q.last() {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u64]
            };
            return (q, r);
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let bn = shl_bits(b, shift);
        let mut an = shl_bits(a, shift);
        an.push(0); // room for the virtual extra limb u[m+n]
        let n = bn.len();
        let m = an.len() - 1 - n;
        let mut q = vec![0u64; m + 1];
        let btop = bn[n - 1] as u128;
        let bsecond = bn[n - 2] as u128;

        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of the current prefix.
            let top2 = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
            let mut q_hat = top2 / btop;
            let mut r_hat = top2 % btop;
            // Refine: at most two corrections bring q_hat within 1 of truth.
            while q_hat >> 64 != 0 || q_hat * bsecond > ((r_hat << 64) | an[j + n - 2] as u128) {
                q_hat -= 1;
                r_hat += btop;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract q_hat * divisor from the prefix.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let prod = q_hat * bn[i] as u128 + carry;
                carry = prod >> 64;
                let sub = an[j + i] as i128 - (prod as u64) as i128 + borrow;
                an[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = an[j + n] as i128 - carry as i128 + borrow;
            an[j + n] = sub as u64;
            if sub < 0 {
                // q_hat was one too large: add the divisor back.
                q_hat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = an[j + i].overflowing_add(bn[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    an[j + i] = s2;
                    carry = (c1 as u64) + (c2 as u64);
                }
                an[j + n] = an[j + n].wrapping_add(carry);
            }
            q[j] = q_hat as u64;
        }
        while let Some(&0) = q.last() {
            q.pop();
        }
        let mut rem = shr_bits(&an[..n], shift);
        while let Some(&0) = rem.last() {
            rem.pop();
        }
        (q, rem)
    }

    /// Quotient and remainder with truncation toward zero
    /// (remainder has the sign of `self`).
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (qm, rm) = Self::divmod_mag(&self.limbs, &other.limbs);
        let mut q = BigInt {
            negative: self.negative != other.negative,
            limbs: qm,
        };
        let mut r = BigInt {
            negative: self.negative,
            limbs: rm,
        };
        q.trim();
        r.trim();
        (q, r)
    }

    /// Exact division: panics (in debug builds) if a remainder would be left.
    ///
    /// Bareiss elimination only ever divides by a previous pivot, which is
    /// guaranteed to divide exactly; the assertion documents that contract.
    pub fn div_exact(&self, other: &BigInt) -> BigInt {
        let (q, r) = self.divmod(other);
        debug_assert!(r.is_zero(), "div_exact called with non-exact division");
        q
    }

    /// Lossy conversion to `f64` (used only for diagnostics/statistics).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            v = v * 18446744073709551616.0 + limb as f64;
        }
        if self.negative {
            -v
        } else {
            v
        }
    }
}

/// Shift a magnitude left by `shift` bits (`shift < 64`), growing if needed.
fn shl_bits(a: &[u64], shift: u32) -> Vec<u64> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u64;
    for &x in a {
        out.push((x << shift) | carry);
        carry = x >> (64 - shift);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shift a magnitude right by `shift` bits (`shift < 64`).
fn shr_bits(a: &[u64], shift: u32) -> Vec<u64> {
    if shift == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u64; a.len()];
    for i in 0..a.len() {
        out[i] = a[i] >> shift;
        if i + 1 < a.len() {
            out[i] |= a[i + 1] << (64 - shift);
        }
    }
    out
}

impl From<i64> for BigInt {
    fn from(v: i64) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let mag = (v as i128).unsigned_abs() as u64;
        BigInt {
            negative: v < 0,
            limbs: vec![mag],
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let mag = v.unsigned_abs();
        let lo = mag as u64;
        let hi = (mag >> 64) as u64;
        let limbs = if hi == 0 { vec![lo] } else { vec![lo, hi] };
        BigInt {
            negative: v < 0,
            limbs,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match (self.sign(), other.sign()) {
            (Sign::Negative, Sign::Negative) => Self::cmp_mag(&other.limbs, &self.limbs),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => Self::cmp_mag(&self.limbs, &other.limbs),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({})", self)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^19 (largest power of ten in u64).
        let ten19 = BigInt::from(10_000_000_000_000_000_000i128);
        let mut chunks = Vec::new();
        let mut cur = BigInt {
            negative: false,
            limbs: self.limbs.clone(),
        };
        while !cur.is_zero() {
            let (q, r) = cur.divmod(&ten19);
            chunks.push(if r.is_zero() { 0 } else { r.limbs[0] });
            cur = q;
        }
        if self.negative {
            write!(f, "-")?;
        }
        write!(f, "{}", chunks.pop().unwrap())?;
        for c in chunks.iter().rev() {
            write!(f, "{:019}", c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn from_and_sign() {
        assert_eq!(bi(0).sign(), Sign::Zero);
        assert_eq!(bi(5).sign(), Sign::Positive);
        assert_eq!(bi(-5).sign(), Sign::Negative);
        assert!(bi(0).is_zero());
        assert_eq!(BigInt::from(i64::MIN).to_f64(), i64::MIN as f64);
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(bi(3).add(&bi(4)), bi(7));
        assert_eq!(bi(3).sub(&bi(4)), bi(-1));
        assert_eq!(bi(-3).add(&bi(-4)), bi(-7));
        assert_eq!(bi(-3).add(&bi(3)), bi(0));
        assert_eq!(bi(10).sub(&bi(10)), bi(0));
    }

    #[test]
    fn mul_small() {
        assert_eq!(bi(6).mul(&bi(7)), bi(42));
        assert_eq!(bi(-6).mul(&bi(7)), bi(-42));
        assert_eq!(bi(-6).mul(&bi(-7)), bi(42));
        assert_eq!(bi(0).mul(&bi(123)), bi(0));
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = bi(i128::MAX);
        let b = a.mul(&a);
        // (2^127 - 1)^2 = 2^254 - 2^128 + 1; check bit length.
        assert_eq!(b.bit_len(), 254);
        assert_eq!(b.sign(), Sign::Positive);
        // (x)^2 - x*(x) == 0
        assert!(b.sub(&a.mul(&a)).is_zero());
    }

    #[test]
    fn divmod_small() {
        let (q, r) = bi(17).divmod(&bi(5));
        assert_eq!((q, r), (bi(3), bi(2)));
        let (q, r) = bi(-17).divmod(&bi(5));
        assert_eq!((q, r), (bi(-3), bi(-2)));
        let (q, r) = bi(17).divmod(&bi(-5));
        assert_eq!((q, r), (bi(-3), bi(2)));
    }

    #[test]
    fn divmod_multi_limb() {
        // (a*b + r) / b == a with remainder r for big values.
        let a = bi(i128::MAX).mul(&bi(987654321));
        let b = bi(1234567890123456789);
        let r = bi(42);
        let n = a.mul(&b).add(&r);
        let (q, rem) = n.divmod(&b);
        assert_eq!(q, a);
        assert_eq!(rem, r);
    }

    #[test]
    fn divmod_requires_addback_path() {
        // Crafted case exercising the rare Knuth-D add-back branch:
        // dividend slightly below a multiple of the divisor.
        let b = BigInt {
            negative: false,
            limbs: vec![0, 0x8000_0000_0000_0000],
        };
        let q_true = BigInt {
            negative: false,
            limbs: vec![u64::MAX, u64::MAX],
        };
        let n = b.mul(&q_true);
        let (q, r) = n.divmod(&b);
        assert_eq!(q, q_true);
        assert!(r.is_zero());
    }

    #[test]
    fn div_exact_roundtrip() {
        let a = bi(123456789123456789).mul(&bi(-987654321987654321));
        let b = bi(-987654321987654321);
        assert_eq!(a.div_exact(&b), bi(123456789123456789));
    }

    #[test]
    fn display_decimal() {
        assert_eq!(bi(0).to_string(), "0");
        assert_eq!(bi(-12345).to_string(), "-12345");
        let big = bi(10_000_000_000_000_000_000i128).mul(&bi(10_000_000_000_000_000_000i128));
        assert_eq!(big.to_string(), format!("1{}", "0".repeat(38)));
    }

    #[test]
    fn ordering() {
        assert!(bi(-10) < bi(-9));
        assert!(bi(-1) < bi(0));
        assert!(bi(0) < bi(1));
        assert!(bi(i128::MAX) > bi(i128::MAX - 1));
        let huge = bi(i128::MAX).mul(&bi(2));
        assert!(huge > bi(i128::MAX));
        assert!(huge.neg() < bi(i128::MIN));
    }

    #[test]
    fn sign_helpers() {
        assert_eq!(Sign::Positive.product(Sign::Negative), Sign::Negative);
        assert_eq!(Sign::Negative.product(Sign::Negative), Sign::Positive);
        assert_eq!(Sign::Zero.product(Sign::Negative), Sign::Zero);
        assert_eq!(Sign::Positive.negate(), Sign::Negative);
        assert_eq!(Sign::from_i32(-7), Sign::Negative);
    }
}
