//! Fast deterministic hashing for ridge keys.
//!
//! Ridge keys are tiny fixed-size arrays of vertex ids, hashed on the hull
//! hot path (once per ridge per facet). The standard library's default
//! SipHash is DoS-resistant but costs far more than the table operation it
//! guards here; this FxHash-style multiply-xor hasher is a few instructions
//! per word and deterministic across runs, which also keeps experiment
//! output stable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher, fast for small keys.
#[derive(Default, Clone, Copy)]
pub struct FxLikeHasher(u64);

impl Hasher for FxLikeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FxLikeHasher`].
pub type FastBuildHasher = BuildHasherDefault<FxLikeHasher>;

/// A `HashMap` keyed with the fast deterministic hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using the fast deterministic hasher.
pub type FastHashSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_spreads_small_keys() {
        let bh = FastBuildHasher::default();
        let h = |k: &[u32; 4]| bh.hash_one(k);
        let a = h(&[1, 2, 3, 4]);
        assert_eq!(a, h(&[1, 2, 3, 4]), "same key must hash identically");
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            seen.insert(h(&[i, i + 1, i + 2, i + 3]) >> 48);
        }
        assert!(seen.len() > 100, "high bits should vary: {}", seen.len());
    }

    #[test]
    fn map_alias_works() {
        let mut m: FastHashMap<[u32; 2], u32> = FastHashMap::default();
        m.insert([1, 2], 3);
        assert_eq!(m.get(&[1, 2]), Some(&3));
    }
}
