//! # chull-net
//!
//! The std-only networking substrate for the hull server's event-loop
//! front end: readiness polling, non-blocking byte queues, incremental
//! framing and a slab keyed by poller tokens. No external crates — the
//! epoll/eventfd/poll bindings are declared by hand in [`sys`], the
//! same way the repo hand-rolled its RNG, task pool and hasher.
//!
//! Layers (each usable alone):
//!
//! * [`poller`] — [`Poller`](poller::Poller) trait over level-triggered
//!   epoll (Linux) with a portable `poll(2)` fallback, plus an
//!   eventfd [`Waker`](poller::Waker) for cross-thread wakeups;
//! * [`buf`] — [`ByteBuf`](buf::ByteBuf), the per-connection FIFO with
//!   amortized-O(1) consume and burst-allocation release;
//! * [`frame`] — [`FrameDecoder`](frame::FrameDecoder), incremental
//!   length-prefixed frame reassembly (the wire format of
//!   `chull-service`), tracking partial frames for deadline reaping;
//! * [`slab`] — [`Slab`](slab::Slab), stable keys for connection state.
//!
//! The reactor built on these lives in `chull-service::event_server`;
//! the `service_load` bench drives tens of thousands of client
//! connections off the same poller (one thread, no blocking reads).

#![warn(missing_docs)]
#![cfg(unix)]

pub mod buf;
pub mod frame;
pub mod poller;
pub mod slab;
pub mod sys;

pub use buf::ByteBuf;
pub use frame::{encode_frame_into, FrameDecoder, FrameError};
pub use poller::{poller, Event, Interest, Poller, Token};
#[cfg(target_os = "linux")]
pub use poller::{Epoll, Waker};
pub use slab::Slab;
pub use sys::raise_nofile_limit;
