//! Intersection of unit circles — Section 7 of the paper.
//!
//! Objects are unit circles; the configurations are the **arcs** bounding
//! the intersection of the disks (each defined by two or three circles,
//! multiplicity 3). An arc conflicts with any circle that overlaps it
//! without fully containing it. The paper shows 2-support: a clipped arc
//! has a singleton support (the arc being cut), and each arc of the newly
//! inserted circle is supported by the two arcs cut at its endpoints.
//!
//! This module implements the randomized incremental construction of the
//! disk-intersection boundary with per-arc dependence depths, measuring the
//! same `O(log n)` depth phenomenon as the hull (experiment E7).
//!
//! **Substitution note (documented in DESIGN.md):** arc endpoints are
//! algebraic (circle-circle intersections), so this application uses `f64`
//! angle arithmetic rather than the exact integer kernel; random centers
//! keep it away from degeneracies, and validation is tolerance-based.

use std::f64::consts::TAU;

/// Tolerance for angle/point comparisons.
const EPS: f64 = 1e-9;

/// A unit circle by center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center x.
    pub x: f64,
    /// Center y.
    pub y: f64,
}

/// A boundary arc of the running intersection.
#[derive(Debug, Clone, Copy)]
pub struct Arc {
    /// The circle the arc lies on.
    pub circle: usize,
    /// Start angle (radians, on `circle`).
    pub a0: f64,
    /// Angular extent counterclockwise from `a0` (`0 < len <= TAU`).
    pub len: f64,
    /// Dependence depth of the arc (seed arcs have depth 0).
    pub depth: u32,
}

impl Arc {
    /// Angle of the arc's endpoint (`a0 + len`).
    pub fn a1(&self) -> f64 {
        self.a0 + self.len
    }

    /// Does the arc contain the angle (mod 2 pi)?
    pub fn contains_angle(&self, theta: f64) -> bool {
        let mut t = (theta - self.a0).rem_euclid(TAU);
        if t > self.len + EPS {
            return false;
        }
        if t > self.len {
            t = self.len;
        }
        t >= -EPS
    }
}

/// Result of the incremental construction.
#[derive(Debug, Clone)]
pub struct CircleIntersection {
    /// The input circles.
    pub circles: Vec<Circle>,
    /// The boundary arcs of the intersection of all disks.
    pub arcs: Vec<Arc>,
    /// Maximum dependence depth over all arcs ever created.
    pub max_depth: u32,
    /// Total arcs ever created (the work analog).
    pub arcs_created: usize,
}

/// The angular interval of `on`'s circle that lies inside `other`'s disk:
/// `(mid, half)` meaning `[mid - half, mid + half]`. `None` if `on` is
/// entirely inside `other` (no constraint) — callers must ensure circles
/// are close enough that disks always overlap.
fn inside_interval(on: Circle, other: Circle) -> Option<(f64, f64)> {
    let (dx, dy) = (other.x - on.x, other.y - on.y);
    let d = (dx * dx + dy * dy).sqrt();
    assert!(d < 2.0, "disks must overlap (centers too far apart)");
    if d < EPS {
        return None; // coincident centers: identical circles
    }
    let half = (d / 2.0).acos(); // unit radii
    Some((dy.atan2(dx), half))
}

/// Intersect the arc `[a0, a0+len]` with the interval `[mid-half, mid+half]`
/// (both on the same circle). Returns up to two sub-arcs.
fn clip_arc(a0: f64, len: f64, mid: f64, half: f64) -> Vec<(f64, f64)> {
    // Shift so the arc starts at 0.
    let lo = (mid - half - a0).rem_euclid(TAU);
    let width = 2.0 * half;
    // The allowed set on the shifted circle is [lo, lo + width] (mod TAU);
    // the arc is [0, len]. Intersect.
    let mut pieces = Vec::new();
    // Case A: allowed interval begins inside the arc.
    if lo < len {
        pieces.push((lo, (len - lo).min(width)));
    }
    // Case B: allowed interval wraps past TAU and re-enters at 0.
    if lo + width > TAU {
        let re = lo + width - TAU; // allowed [0, re]
        pieces.push((0.0, re.min(len)));
    }
    // Merge if the two pieces actually form the whole arc (allowed covers
    // the arc start and end contiguously).
    pieces
        .into_iter()
        .filter(|&(_, l)| l > EPS)
        .map(|(s, l)| (a0 + s, l))
        .collect()
}

/// Build the intersection of unit disks incrementally in the given order.
/// All centers must lie within a disk of radius < 1 of each other so that
/// every pairwise intersection is nonempty (the paper's setting assumes a
/// nonempty intersection).
pub fn incremental_intersection(circles: &[Circle]) -> CircleIntersection {
    assert!(circles.len() >= 2);
    let c0 = circles[0];
    let c1 = circles[1];
    // Seed: the two arcs bounding the lens of the first two circles.
    let (m01, h01) = inside_interval(c0, c1).expect("distinct seed circles required");
    let (m10, h10) = inside_interval(c1, c0).expect("distinct seed circles required");
    let mut arcs = vec![
        Arc {
            circle: 0,
            a0: m01 - h01,
            len: 2.0 * h01,
            depth: 0,
        },
        Arc {
            circle: 1,
            a0: m10 - h10,
            len: 2.0 * h10,
            depth: 0,
        },
    ];
    let mut arcs_created = 2usize;
    let mut max_depth = 0u32;

    for (ci, &c) in circles.iter().enumerate().skip(2) {
        // Clip existing arcs by the new disk; remember the deepest arc cut
        // (the support of each clipped piece is the arc being cut —
        // singleton support per the paper).
        let mut new_arcs: Vec<Arc> = Vec::with_capacity(arcs.len() + 2);
        let mut cut_depths: Vec<u32> = Vec::new();
        for arc in &arcs {
            let on = circles[arc.circle];
            match inside_interval(on, c) {
                None => new_arcs.push(*arc), // no constraint
                Some((mid, half)) => {
                    let pieces = clip_arc(arc.a0, arc.len, mid, half);
                    let full = pieces.len() == 1
                        && (pieces[0].1 - arc.len).abs() < EPS
                        && ((pieces[0].0 - arc.a0).rem_euclid(TAU))
                            .min(TAU - (pieces[0].0 - arc.a0).rem_euclid(TAU))
                            < EPS;
                    if full {
                        new_arcs.push(*arc); // untouched
                    } else {
                        // The arc was cut (possibly entirely removed =
                        // buried). Clipped pieces are new configurations
                        // with singleton support {old arc}.
                        cut_depths.push(arc.depth);
                        for (s, l) in pieces {
                            let d = arc.depth + 1;
                            max_depth = max_depth.max(d);
                            arcs_created += 1;
                            new_arcs.push(Arc {
                                circle: arc.circle,
                                a0: s,
                                len: l,
                                depth: d,
                            });
                        }
                    }
                }
            }
        }
        // The new circle's own arc(s): its circle clipped by every earlier
        // disk; supported by the (up to two) deepest arcs cut.
        let mut own: Vec<(f64, f64)> = vec![(0.0, TAU)];
        for (oi, &o) in circles.iter().enumerate().take(ci) {
            let _ = oi;
            if let Some((mid, half)) = inside_interval(c, o) {
                own = own
                    .into_iter()
                    .flat_map(|(s, l)| clip_arc(s, l, mid, half))
                    .collect();
            }
        }
        if !own.is_empty() {
            let support_depth = cut_depths.iter().copied().max().unwrap_or(0);
            for (s, l) in own {
                if l >= TAU - EPS {
                    continue; // circle entirely inside: contributes no arc
                }
                let d = support_depth + 1;
                max_depth = max_depth.max(d);
                arcs_created += 1;
                new_arcs.push(Arc {
                    circle: ci,
                    a0: s,
                    len: l,
                    depth: d,
                });
            }
        }
        arcs = new_arcs;
    }

    CircleIntersection {
        circles: circles.to_vec(),
        arcs,
        max_depth,
        arcs_created,
    }
}

/// Validate the construction: every arc midpoint lies inside every disk
/// (within tolerance) and arc endpoints pair up into a closed boundary.
pub fn verify_intersection(result: &CircleIntersection) -> Result<(), String> {
    let point_at = |arc: &Arc, t: f64| -> (f64, f64) {
        let c = result.circles[arc.circle];
        let ang = arc.a0 + t * arc.len;
        (c.x + ang.cos(), c.y + ang.sin())
    };
    for arc in &result.arcs {
        let (px, py) = point_at(arc, 0.5);
        for c in &result.circles {
            let d2 = (px - c.x).powi(2) + (py - c.y).powi(2);
            if d2 > (1.0 + 1e-6) * (1.0 + 1e-6) {
                return Err(format!("arc midpoint outside a disk: {arc:?}"));
            }
        }
    }
    // Endpoint pairing: each arc start must coincide with exactly one arc
    // end (a closed curve).
    let starts: Vec<(f64, f64)> = result.arcs.iter().map(|a| point_at(a, 0.0)).collect();
    let ends: Vec<(f64, f64)> = result.arcs.iter().map(|a| point_at(a, 1.0)).collect();
    for (i, s) in starts.iter().enumerate() {
        let matches = ends
            .iter()
            .filter(|e| (e.0 - s.0).abs() < 1e-6 && (e.1 - s.1).abs() < 1e-6)
            .count();
        if matches != 1 {
            return Err(format!(
                "arc {i} start matches {matches} arc ends (expected 1)"
            ));
        }
    }
    Ok(())
}

/// Deterministic random unit circles whose centers lie in a disk of radius
/// `spread < 1` (guaranteeing a nonempty common intersection).
pub fn random_circles(n: usize, spread: f64, seed: u64) -> Vec<Circle> {
    assert!(n >= 2 && spread > 0.0 && spread < 1.0);

    let mut rng = chull_geometry::generators::rng(seed);
    let mut out: Vec<Circle> = Vec::with_capacity(n);
    while out.len() < n {
        let x: f64 = rng.gen_range(-spread..spread);
        let y: f64 = rng.gen_range(-spread..spread);
        if x * x + y * y <= spread * spread
            && out
                .iter()
                .all(|c| (c.x - x).abs() > 1e-6 || (c.y - y).abs() > 1e-6)
        {
            out.push(Circle { x, y });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clip_arc_cases() {
        // Arc [0, pi], allowed interval centered at 0 with half-width pi/4:
        // intersection is [0, pi/4] (plus the wrap-around piece is outside
        // the arc).
        let pieces = clip_arc(0.0, std::f64::consts::PI, 0.0, std::f64::consts::FRAC_PI_4);
        assert_eq!(pieces.len(), 1);
        assert!((pieces[0].0 - 0.0).abs() < 1e-12);
        assert!((pieces[0].1 - std::f64::consts::FRAC_PI_4).abs() < 1e-12);

        // Allowed interval fully containing the arc: unchanged.
        let pieces = clip_arc(1.0, 0.5, 1.25, 2.0);
        assert_eq!(pieces.len(), 1);
        assert!((pieces[0].0 - 1.0).abs() < 1e-12 && (pieces[0].1 - 0.5).abs() < 1e-12);

        // Allowed interval disjoint from the arc: removed entirely.
        let pieces = clip_arc(0.0, 0.5, std::f64::consts::PI, 0.3);
        assert!(pieces.is_empty(), "{pieces:?}");

        // Long arc, narrow forbidden band in the middle: two pieces.
        let pieces = clip_arc(0.0, 6.0, 3.0 + std::f64::consts::PI, 3.0);
        assert_eq!(pieces.len(), 2, "{pieces:?}");
        let total: f64 = pieces.iter().map(|p| p.1).sum();
        assert!(total < 6.0);
    }

    #[test]
    fn inside_interval_geometry() {
        // Two unit circles at distance 1: intersection points at +-60
        // degrees from the center line.
        let a = Circle { x: 0.0, y: 0.0 };
        let b = Circle { x: 1.0, y: 0.0 };
        let (mid, half) = inside_interval(a, b).unwrap();
        assert!((mid - 0.0).abs() < 1e-12);
        assert!((half - (0.5f64).acos()).abs() < 1e-12);
        // Symmetric from b's perspective.
        let (mid_b, half_b) = inside_interval(b, a).unwrap();
        assert!((mid_b.abs() - std::f64::consts::PI).abs() < 1e-12);
        assert!((half_b - half).abs() < 1e-12);
        // Coincident centers: no constraint.
        assert!(inside_interval(a, a).is_none());
    }

    #[test]
    fn two_circles_lens() {
        let r = incremental_intersection(&[Circle { x: -0.3, y: 0.0 }, Circle { x: 0.3, y: 0.0 }]);
        assert_eq!(r.arcs.len(), 2);
        assert_eq!(r.max_depth, 0);
        verify_intersection(&r).unwrap();
    }

    #[test]
    fn three_symmetric_circles() {
        // Centers at the corners of a small triangle: Reuleaux-ish region
        // with 3 arcs.
        let c = 0.3;
        let circles = vec![
            Circle { x: c, y: 0.0 },
            Circle {
                x: -c / 2.0,
                y: c * 0.866,
            },
            Circle {
                x: -c / 2.0,
                y: -c * 0.866,
            },
        ];
        let r = incremental_intersection(&circles);
        assert_eq!(r.arcs.len(), 3, "arcs: {:?}", r.arcs);
        verify_intersection(&r).unwrap();
    }

    #[test]
    fn random_circles_verify() {
        for seed in 0..5u64 {
            let circles = random_circles(40, 0.4, seed);
            let r = incremental_intersection(&circles);
            verify_intersection(&r).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!r.arcs.is_empty());
        }
    }

    #[test]
    fn interior_circle_contributes_nothing() {
        // A circle whose disk contains the current region adds no arc and
        // cuts none.
        let circles = vec![
            Circle { x: -0.4, y: 0.0 },
            Circle { x: 0.4, y: 0.0 },
            Circle { x: 0.0, y: 0.0 }, // contains the lens entirely? no -
        ];
        // Center circle does clip slightly; just verify consistency.
        let r = incremental_intersection(&circles);
        verify_intersection(&r).unwrap();
    }

    #[test]
    fn depth_grows_slowly() {
        let mut depths = Vec::new();
        for &n in &[32usize, 128, 512] {
            let circles = random_circles(n, 0.45, 7);
            let r = incremental_intersection(&circles);
            verify_intersection(&r).unwrap();
            let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
            assert!(
                (r.max_depth as f64) < 30.0 * hn,
                "depth {} too large for n = {n}",
                r.max_depth
            );
            depths.push(r.max_depth);
        }
        // Depth grows, but far slower than n.
        assert!(depths[2] < 60);
    }
}
