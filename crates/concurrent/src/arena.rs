//! A lock-free, append-only concurrent arena with stable indices.
//!
//! Facets are created concurrently by `ProcessRidge` calls and referenced by
//! dense `u32` ids from the ridge multimap; the arena provides `push` (claim
//! an id, write the element, publish) and `get` (read a published element)
//! without ever moving elements — storage is a chain of geometrically
//! growing segments, so references stay valid for the arena's lifetime.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

/// Number of segments: segment `s` holds `FIRST << s` elements.
const SEGMENTS: usize = 32;
/// Size of segment 0.
const FIRST: usize = 64;

struct Segment<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    ready: Box<[AtomicBool]>,
}

impl<T> Segment<T> {
    fn new(len: usize) -> Box<Segment<T>> {
        let slots: Vec<UnsafeCell<MaybeUninit<T>>> = (0..len)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let ready: Vec<AtomicBool> = (0..len).map(|_| AtomicBool::new(false)).collect();
        Box::new(Segment {
            slots: slots.into_boxed_slice(),
            ready: ready.into_boxed_slice(),
        })
    }
}

/// Lock-free append-only arena; see module docs.
pub struct ConcurrentArena<T> {
    segments: [AtomicPtr<Segment<T>>; SEGMENTS],
    len: AtomicUsize,
}

// SAFETY: elements are written exactly once by the pushing thread before the
// per-slot `ready` flag is released; readers check the flag with Acquire.
unsafe impl<T: Send> Send for ConcurrentArena<T> {}
unsafe impl<T: Send + Sync> Sync for ConcurrentArena<T> {}

/// Map a global index to (segment, offset).
#[inline]
fn locate(index: usize) -> (usize, usize) {
    // Segment s covers [FIRST * (2^s - 1), FIRST * (2^(s+1) - 1)).
    let adjusted = index / FIRST + 1;
    let seg = (usize::BITS - 1 - adjusted.leading_zeros()) as usize;
    let seg_start = FIRST * ((1 << seg) - 1);
    (seg, index - seg_start)
}

impl<T> ConcurrentArena<T> {
    /// An empty arena.
    pub fn new() -> ConcurrentArena<T> {
        ConcurrentArena {
            segments: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of ids handed out so far (some may still be mid-write by
    /// other threads; their `get` would spin briefly).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True iff no element was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn segment(&self, seg: usize) -> &Segment<T> {
        let ptr = self.segments[seg].load(Ordering::Acquire);
        if !ptr.is_null() {
            return unsafe { &*ptr };
        }
        // Allocate and race to install; the loser frees its allocation.
        let new = Box::into_raw(Segment::new(FIRST << seg));
        match self.segments[seg].compare_exchange(
            std::ptr::null_mut(),
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => unsafe { &*new },
            Err(existing) => {
                unsafe { drop(Box::from_raw(new)) };
                unsafe { &*existing }
            }
        }
    }

    /// Append an element, returning its dense id.
    pub fn push(&self, value: T) -> u32 {
        let index = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(index < u32::MAX as usize, "arena overflow");
        let (seg, off) = locate(index);
        assert!(seg < SEGMENTS, "arena exhausted its segment table");
        let segment = self.segment(seg);
        unsafe { (*segment.slots[off].get()).write(value) };
        segment.ready[off].store(true, Ordering::Release);
        index as u32
    }

    /// Read element `id`. Spins briefly if the pushing thread has claimed
    /// the id but not yet finished writing (possible only when the id was
    /// obtained through a non-synchronizing channel).
    pub fn get(&self, id: u32) -> &T {
        let (seg, off) = locate(id as usize);
        let segment = self.segment(seg);
        let mut spins = 0u32;
        while !segment.ready[off].load(Ordering::Acquire) {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        unsafe { (*segment.slots[off].get()).assume_init_ref() }
    }

    /// Iterate over all published elements in id order (intended for use
    /// after the parallel phase has quiesced).
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len() as u32).map(move |id| self.get(id))
    }
}

impl<T> Default for ConcurrentArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for ConcurrentArena<T> {
    fn drop(&mut self) {
        let len = *self.len.get_mut();
        for (i, seg_ptr) in self.segments.iter_mut().enumerate() {
            let ptr = *seg_ptr.get_mut();
            if ptr.is_null() {
                continue;
            }
            let mut segment = unsafe { Box::from_raw(ptr) };
            if std::mem::needs_drop::<T>() {
                let seg_start = FIRST * ((1usize << i) - 1);
                let seg_len = FIRST << i;
                for off in 0..seg_len {
                    if seg_start + off < len && *segment.ready[off].get_mut() {
                        unsafe { (*segment.slots[off].get()).assume_init_drop() };
                    }
                }
            }
            drop(segment);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn locate_covers_prefix_densely() {
        let mut expected = 0usize;
        for seg in 0..6 {
            for off in 0..(FIRST << seg) {
                assert_eq!(locate(expected), (seg, off), "index {expected}");
                expected += 1;
            }
        }
    }

    #[test]
    fn push_get_roundtrip() {
        let arena: ConcurrentArena<String> = ConcurrentArena::new();
        let ids: Vec<u32> = (0..1000).map(|i| arena.push(format!("v{i}"))).collect();
        assert_eq!(arena.len(), 1000);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(arena.get(id), &format!("v{i}"));
        }
        let all: Vec<&String> = arena.iter().collect();
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn ids_are_dense_and_ordered_single_thread() {
        let arena: ConcurrentArena<u64> = ConcurrentArena::new();
        for i in 0..500u64 {
            assert_eq!(arena.push(i), i as u32);
        }
    }

    #[test]
    fn references_stable_across_growth() {
        let arena: ConcurrentArena<u64> = ConcurrentArena::new();
        let first = arena.push(42);
        let r: &u64 = arena.get(first);
        for i in 0..100_000u64 {
            arena.push(i);
        }
        // The early reference must still be valid after many segment
        // allocations.
        assert_eq!(*r, 42);
    }

    #[test]
    fn concurrent_push_all_present() {
        let arena: Arc<ConcurrentArena<(usize, usize)>> = Arc::new(ConcurrentArena::new());
        let threads = 8;
        let per = 5_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let arena = Arc::clone(&arena);
                std::thread::spawn(move || {
                    (0..per)
                        .map(|i| (arena.push((t, i)), (t, i)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut seen = vec![false; threads * per];
        for h in handles {
            for (id, val) in h.join().unwrap() {
                assert_eq!(arena.get(id), &val);
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(arena.len(), threads * per);
    }

    #[test]
    fn drop_runs_destructors() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let arena: ConcurrentArena<D> = ConcurrentArena::new();
            for _ in 0..300 {
                arena.push(D);
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 300);
    }
}
