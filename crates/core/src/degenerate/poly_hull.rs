//! A degeneracy-tolerant 3D convex hull with polygonal faces: the exact,
//! brute-force substrate for the Section 6 corner configuration space.
//!
//! Handles four-or-more coplanar points and collinear runs: faces are
//! reported as convex polygons whose vertices are the *corner* points (the
//! paper's note: collinear edge points keep only the outermost two, and
//! face-interior points are dropped). `O(n^4)`; built for validating
//! Lemmas 6.1 and 6.2 on small degenerate inputs, not for production runs.

use chull_geometry::predicates::orient3d;
use chull_geometry::{Hyperplane, KernelCounts, Point3i, Sign};
use std::collections::BTreeSet;

/// Coordinate bound under which all i128 intermediate products here are
/// overflow-safe with huge margin.
pub const DEGEN_MAX_COORD: i64 = 1 << 20;

/// One polygonal face of the hull.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolyFace {
    /// All input points lying on the face plane (sorted ids), including
    /// non-vertex interior/collinear points.
    pub on_plane: Vec<u32>,
    /// The face polygon's vertices in cyclic order (corner points only).
    pub cycle: Vec<u32>,
}

/// A corner of the hull: `pm` is the corner point, `a < b` its two
/// neighboring polygon vertices, and `side` the empty ("outward") side of
/// the ordered triple `(a, pm, b)` — `orient3d(a, pm, b, q) == side` means
/// `q` is strictly outside the face plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Corner {
    /// The corner point.
    pub pm: u32,
    /// Smaller neighbor id.
    pub a: u32,
    /// Larger neighbor id.
    pub b: u32,
    /// Outward side of the ordered triple `(a, pm, b)`:
    /// `true` = `Sign::Positive`, `false` = `Sign::Negative`.
    pub side_positive: bool,
}

impl Corner {
    /// The outward side as a [`Sign`].
    pub fn side(&self) -> Sign {
        if self.side_positive {
            Sign::Positive
        } else {
            Sign::Negative
        }
    }
}

/// The polygonal hull: faces plus the flattened corner list.
#[derive(Debug, Clone)]
pub struct PolyHull {
    /// Polygonal faces.
    pub faces: Vec<PolyFace>,
    /// All corners of all faces (deduplicated, sorted).
    pub corners: Vec<Corner>,
    /// Staged-kernel counters from the supporting-plane classification
    /// sweep (the `O(n^4)` dominant cost).
    pub kernel: KernelCounts,
}

#[inline]
fn sub(p: Point3i, q: Point3i) -> [i128; 3] {
    [
        p.x as i128 - q.x as i128,
        p.y as i128 - q.y as i128,
        p.z as i128 - q.z as i128,
    ]
}

#[inline]
fn cross(u: [i128; 3], v: [i128; 3]) -> [i128; 3] {
    [
        u[1] * v[2] - u[2] * v[1],
        u[2] * v[0] - u[0] * v[2],
        u[0] * v[1] - u[1] * v[0],
    ]
}

#[inline]
fn dot(u: [i128; 3], v: [i128; 3]) -> i128 {
    u[0] * v[0] + u[1] * v[1] + u[2] * v[2]
}

/// Sign of the in-plane orientation of `(x, y, z)` (all on the plane with
/// normal `n`): positive/negative distinguish the two in-plane sides of the
/// directed line `x -> y`; comparisons between two such values are
/// independent of the choice of `n`'s sign.
fn inplane_orient(pts: &[Point3i], n: [i128; 3], x: u32, y: u32, z: u32) -> i128 {
    let u = sub(pts[y as usize], pts[x as usize]);
    let v = sub(pts[z as usize], pts[x as usize]);
    dot(cross(u, v), n).signum()
}

/// Build the polygonal hull of `pts`. Requires: distinct points, affine
/// rank 4 (not all coplanar), and coordinates within
/// [`DEGEN_MAX_COORD`].
pub fn poly_hull(pts: &[Point3i]) -> PolyHull {
    let n = pts.len();
    assert!(n >= 4, "need at least 4 points");
    for p in pts {
        assert!(
            p.x.abs() <= DEGEN_MAX_COORD
                && p.y.abs() <= DEGEN_MAX_COORD
                && p.z.abs() <= DEGEN_MAX_COORD,
            "coordinate exceeds DEGEN_MAX_COORD"
        );
    }

    // Find all supporting planes as deduplicated on-sets.
    let mut seen_on_sets: BTreeSet<Vec<u32>> = BTreeSet::new();
    let mut faces: Vec<PolyFace> = Vec::new();
    let mut any_rank4 = false;
    let mut kernel = KernelCounts::default();
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                let (pi, pj, pk) = (pts[i], pts[j], pts[k]);
                let normal = cross(sub(pj, pi), sub(pk, pi));
                if normal == [0, 0, 0] {
                    continue; // collinear triple
                }
                // One cached plane per candidate triple turns the inner
                // point sweep into staged O(d) sign tests.
                let plane = Hyperplane::new(
                    3,
                    &[
                        &[pi.x, pi.y, pi.z],
                        &[pj.x, pj.y, pj.z],
                        &[pk.x, pk.y, pk.z],
                    ],
                );
                let mut pos = false;
                let mut neg = false;
                let mut on_plane: Vec<u32> = Vec::new();
                for (q, &pq) in pts.iter().enumerate() {
                    match plane.sign_point(&[pq.x, pq.y, pq.z], &mut kernel) {
                        Sign::Positive => pos = true,
                        Sign::Negative => neg = true,
                        Sign::Zero => on_plane.push(q as u32),
                    }
                    if pos && neg {
                        break;
                    }
                }
                if pos && neg {
                    any_rank4 = true;
                    continue;
                }
                if !pos && !neg {
                    panic!("all points coplanar: 3D hull undefined");
                }
                any_rank4 = true;
                on_plane.sort_unstable();
                if !seen_on_sets.insert(on_plane.clone()) {
                    continue; // plane already processed via another triple
                }
                let cycle = face_cycle(pts, &on_plane, normal);
                faces.push(PolyFace { on_plane, cycle });
            }
        }
    }
    assert!(any_rank4, "degenerate input with no supporting plane");

    // Corners from face cycles.
    let mut corners: BTreeSet<Corner> = BTreeSet::new();
    for face in &faces {
        let c = &face.cycle;
        let k = c.len();
        for i in 0..k {
            let pl = c[(i + k - 1) % k];
            let pm = c[i];
            let pr = c[(i + 1) % k];
            corners.insert(make_corner(pts, pl, pm, pr));
        }
    }
    PolyHull {
        faces,
        corners: corners.into_iter().collect(),
        kernel,
    }
}

/// Canonicalize a corner `(pl, pm, pr)` and compute its outward side.
pub fn make_corner(pts: &[Point3i], pl: u32, pm: u32, pr: u32) -> Corner {
    let (a, b) = if pl < pr { (pl, pr) } else { (pr, pl) };
    // The outward side is the side of plane (a, pm, b) containing no point.
    let mut side = None;
    for (q, &pq) in pts.iter().enumerate() {
        let _ = q;
        match orient3d(pts[a as usize], pts[pm as usize], pts[b as usize], pq) {
            Sign::Zero => {}
            s => {
                side = Some(s);
                break;
            }
        }
    }
    let inward = side.expect("corner plane contains all points");
    Corner {
        pm,
        a,
        b,
        side_positive: inward == Sign::Negative,
    }
}

/// Order the on-plane points into the face polygon's vertex cycle: project
/// along the normal's dominant axis (an affine bijection from the plane) and
/// take the strict 2D hull.
fn face_cycle(pts: &[Point3i], on_plane: &[u32], normal: [i128; 3]) -> Vec<u32> {
    use chull_geometry::Point2i;
    let axis = (0..3).max_by_key(|&a| normal[a].unsigned_abs()).unwrap();
    let proj = |p: Point3i| -> Point2i {
        match axis {
            0 => Point2i::new(p.y, p.z),
            1 => Point2i::new(p.x, p.z),
            _ => Point2i::new(p.x, p.y),
        }
    };
    let projected: Vec<Point2i> = on_plane.iter().map(|&i| proj(pts[i as usize])).collect();
    let hull_local = crate::baseline::monotone_chain::hull_indices(&projected);
    assert!(
        hull_local.len() >= 3,
        "face polygon collapsed under projection"
    );
    hull_local
        .into_iter()
        .map(|li| on_plane[li as usize])
        .collect()
}

/// Does point `q` conflict with `corner` per the paper's Figure 3 rules?
///
/// 1. strictly outside the face plane (on the corner's outward side);
/// 2. coplanar and strictly outside either of the lines `pm-a` / `pm-b`;
/// 3. on one of those lines, strictly beyond the neighbor (`a` or `b`) in
///    the direction away from `pm`.
pub fn corner_conflicts(pts: &[Point3i], corner: &Corner, q: u32) -> bool {
    let Corner { pm, a, b, .. } = *corner;
    if q == pm || q == a || q == b {
        return false;
    }
    let (pa, pmid, pb, pq) = (
        pts[a as usize],
        pts[pm as usize],
        pts[b as usize],
        pts[q as usize],
    );
    match orient3d(pa, pmid, pb, pq) {
        s if s == corner.side() => return true,
        Sign::Zero => {}
        _ => return false,
    }
    // Coplanar: in-plane rules.
    let n = cross(sub(pmid, pa), sub(pb, pa));
    let q_vs_ma = inplane_orient(pts, n, pm, a, q);
    let b_vs_ma = inplane_orient(pts, n, pm, a, b);
    debug_assert_ne!(b_vs_ma, 0, "degenerate corner: pl, pm, pr collinear");
    if q_vs_ma != 0 && q_vs_ma != b_vs_ma {
        return true; // strictly outside line pm-a
    }
    let q_vs_mb = inplane_orient(pts, n, pm, b, q);
    let a_vs_mb = inplane_orient(pts, n, pm, b, a);
    if q_vs_mb != 0 && q_vs_mb != a_vs_mb {
        return true; // strictly outside line pm-b
    }
    // On a boundary line: beyond the neighbor, away from pm?
    if q_vs_ma == 0 && dot(sub(pq, pa), sub(pa, pmid)) > 0 {
        return true;
    }
    if q_vs_mb == 0 && dot(sub(pq, pb), sub(pb, pmid)) > 0 {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64, z: i64) -> Point3i {
        Point3i::new(x, y, z)
    }

    /// Unit cube corners plus degenerate extras.
    fn cube_plus_degeneracies() -> Vec<Point3i> {
        vec![
            p(0, 0, 0),
            p(4, 0, 0),
            p(0, 4, 0),
            p(4, 4, 0),
            p(0, 0, 4),
            p(4, 0, 4),
            p(0, 4, 4),
            p(4, 4, 4),
            p(2, 2, 0), // interior of bottom face
            p(2, 0, 0), // middle of a bottom edge (collinear)
            p(1, 1, 1), // strictly interior
        ]
    }

    #[test]
    fn cube_faces_and_corners() {
        let pts = cube_plus_degeneracies();
        let hull = poly_hull(&pts);
        assert_eq!(hull.faces.len(), 6, "a cube has 6 faces");
        for f in &hull.faces {
            assert_eq!(f.cycle.len(), 4, "each cube face is a quad: {f:?}");
            // Degenerate extras are on-plane but never vertices.
            assert!(!f.cycle.contains(&8));
            assert!(!f.cycle.contains(&9));
        }
        // 8 cube vertices x 3 faces = 24 corners.
        assert_eq!(hull.corners.len(), 24);
        // The bottom face contains the interior and edge points on-plane.
        let bottom = hull
            .faces
            .iter()
            .find(|f| f.on_plane.contains(&8))
            .expect("bottom face");
        assert!(bottom.on_plane.contains(&9));
    }

    #[test]
    fn tetrahedron_triangular_faces() {
        let pts = vec![p(0, 0, 0), p(6, 0, 0), p(0, 6, 0), p(0, 0, 6)];
        let hull = poly_hull(&pts);
        assert_eq!(hull.faces.len(), 4);
        assert!(hull.faces.iter().all(|f| f.cycle.len() == 3));
        // 4 vertices x 3 incident faces = 12 corners.
        assert_eq!(hull.corners.len(), 12);
    }

    #[test]
    fn active_corners_have_no_conflicts() {
        // Lemma 6.1, "if" direction: hull corners conflict with nothing.
        let pts = cube_plus_degeneracies();
        let hull = poly_hull(&pts);
        for c in &hull.corners {
            for q in 0..pts.len() as u32 {
                assert!(
                    !corner_conflicts(&pts, c, q),
                    "hull corner {c:?} conflicts with point {q}"
                );
            }
        }
    }

    #[test]
    fn non_corners_conflict() {
        // Lemma 6.1, "only if" direction, spot checks on the cube.
        let pts = cube_plus_degeneracies();
        // (1) Corner at the face-interior point 8: its plane is the bottom
        // face; coplanar vertices lie outside its corner lines.
        let fake = make_corner(&pts, 0, 8, 1);
        let conflicted = (0..pts.len() as u32).any(|q| corner_conflicts(&pts, &fake, q));
        assert!(conflicted, "face-interior corner must conflict");
        // (2) Corner at the collinear edge midpoint 9 along the edge 0-1:
        // the outermost-two rule must kill it.
        let fake = make_corner(&pts, 0, 9, 2);
        let conflicted = (0..pts.len() as u32).any(|q| corner_conflicts(&pts, &fake, q));
        assert!(conflicted, "edge-midpoint corner must conflict");
        // (3) A corner through the strict interior point 10 conflicts with
        // points above its plane.
        let fake = make_corner(&pts, 0, 10, 1);
        let conflicted = (0..pts.len() as u32).any(|q| corner_conflicts(&pts, &fake, q));
        assert!(conflicted, "interior-point corner must conflict");
    }

    #[test]
    fn grid_hull_is_cube_surface() {
        // 3x3x3 grid: hull is the 2x2x2 cube with all corners at the 8
        // extreme grid points.
        let mut pts = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    pts.push(p(x, y, z));
                }
            }
        }
        let hull = poly_hull(&pts);
        assert_eq!(hull.faces.len(), 6);
        assert_eq!(hull.corners.len(), 24);
        for f in &hull.faces {
            assert_eq!(f.on_plane.len(), 9, "each face plane holds 9 grid points");
            assert_eq!(f.cycle.len(), 4);
        }
    }

    #[test]
    fn square_pyramid_mixed_faces() {
        // One quadrilateral base plus four triangular sides.
        let pts = vec![
            p(0, 0, 0),
            p(8, 0, 0),
            p(8, 8, 0),
            p(0, 8, 0),
            p(4, 4, 6), // apex
        ];
        let hull = poly_hull(&pts);
        assert_eq!(hull.faces.len(), 5);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = hull.faces.iter().map(|f| f.cycle.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![3, 3, 3, 3, 4]);
        // Corners: base vertices have 3 incident faces, apex has 4.
        let apex_corners = hull.corners.iter().filter(|c| c.pm == 4).count();
        assert_eq!(apex_corners, 4);
        assert_eq!(hull.corners.len(), 4 * 3 + 4);
    }

    #[test]
    fn tetra_with_collinear_edge_point() {
        // A point strictly inside an edge of a tetrahedron is on the hull
        // boundary but never a corner.
        let pts = vec![
            p(0, 0, 0),
            p(8, 0, 0),
            p(0, 8, 0),
            p(0, 0, 8),
            p(4, 0, 0), // midpoint of edge 0-1
        ];
        let hull = poly_hull(&pts);
        assert_eq!(hull.faces.len(), 4);
        assert!(hull
            .corners
            .iter()
            .all(|c| c.pm != 4 && c.a != 4 && c.b != 4));
        // The midpoint is on-plane for the two faces containing edge 0-1.
        let containing = hull
            .faces
            .iter()
            .filter(|f| f.on_plane.contains(&4))
            .count();
        assert_eq!(containing, 2);
    }

    #[test]
    fn collinear_beyond_rule() {
        // Points 0 -(9)- 1 collinear on the bottom edge; a corner at 1 with
        // neighbor 0 must NOT conflict with the midpoint 9 (between), but a
        // corner claiming 9 as neighbor conflicts with 1 (beyond 9).
        let pts = cube_plus_degeneracies();
        let hull = poly_hull(&pts);
        let corner_at_1 = hull
            .corners
            .iter()
            .find(|c| c.pm == 1 && (c.a == 0 || c.b == 0))
            .expect("cube corner at vertex 1 adjacent to 0");
        assert!(!corner_conflicts(&pts, corner_at_1, 9));
        // Fabricated corner with the midpoint as a neighbor: 1 lies beyond
        // it on the same line.
        let fake = make_corner(&pts, 9, 0, 2);
        assert!(corner_conflicts(&pts, &fake, 1));
    }
}
