//! The history / influence graph of the incremental construction, and
//! point location through it.
//!
//! The paper (Section 4, "Relationship to History Graphs") observes that
//! the configuration dependence graph generalizes the classical history
//! graphs of Mulmuley and the influence graphs of Boissonnat et al.: a
//! search structure where each configuration points to the configurations
//! it supports. The support-set condition
//! `C(t) ⊆ C(t1) ∪ C(t2)` (Definition 3.2) is exactly the *influence*
//! property that makes descent searches complete: if a query point
//! conflicts with (is visible from) a facet, it conflicts with one of the
//! facet's parents, all the way back to the seed simplex.
//!
//! [`HullHistory`] materializes that graph from a sequential run and
//! answers **membership queries** — is `q` inside the hull, and if not,
//! which facets see it — by descending from the seed facets through
//! children whose conflict region contains `q`. The expected number of
//! visited nodes for a random query is `O(log n)` in 2D/3D by the
//! Clarkson–Shor analysis; experiment E13 measures it.
//!
//! Note the paper's caution: bounded search paths do *not* by themselves
//! bound the dependence-graph depth (Section 4 discusses why); here the two
//! coincide structurally because hulls have 2-support.

use crate::context::HullContext;
use crate::facet::Facet;
use crate::seq::{SeqRun, NO_PARENT};
use chull_geometry::{PointSet, Sign};

/// The history (influence) graph of one hull construction.
///
/// ```
/// use chull_core::{history::HullHistory, prepare_points, seq};
/// use chull_geometry::{generators, PointSet};
/// let pts = PointSet::from_points2(&generators::disk_2d(200, 1 << 20, 1));
/// let pts = prepare_points(&pts, 2);
/// let run = seq::incremental_hull_run(&pts);
/// let history = HullHistory::from_run(&pts, &run);
/// assert!(history.contains(pts.point(0)));          // input points inside
/// assert!(!history.contains(&[1 << 40, 1 << 40]));  // far point outside
/// ```
pub struct HullHistory<'a> {
    pts: &'a PointSet,
    ctx: HullContext<'a>,
    facets: Vec<Facet>,
    alive: Vec<bool>,
    children: Vec<Vec<u32>>,
    seeds: Vec<u32>,
}

/// Result of a point-location query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Location {
    /// Alive facets the query point is strictly visible from
    /// (empty iff the point is inside or on the hull boundary).
    pub visible_facets: Vec<u32>,
    /// History nodes visited during the descent (the search cost).
    pub nodes_visited: usize,
}

impl Location {
    /// True iff the query point is inside or on the hull.
    pub fn is_inside(&self) -> bool {
        self.visible_facets.is_empty()
    }
}

impl<'a> HullHistory<'a> {
    /// Build the history graph from a completed sequential run on `pts`.
    pub fn from_run(pts: &'a PointSet, run: &SeqRun) -> HullHistory<'a> {
        let dim = pts.dim();
        let simplex: Vec<u32> = (0..=dim as u32).collect();
        let ctx = HullContext::new(pts, &simplex);
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); run.facets.len()];
        let mut seeds = Vec::new();
        for (id, ps) in run.parents.iter().enumerate() {
            if ps[0] == NO_PARENT {
                seeds.push(id as u32);
            } else {
                children[ps[0] as usize].push(id as u32);
                children[ps[1] as usize].push(id as u32);
            }
        }
        HullHistory {
            pts,
            ctx,
            facets: run.facets.clone(),
            alive: run.alive.clone(),
            children,
            seeds,
        }
    }

    /// Number of history nodes (facets ever created).
    pub fn len(&self) -> usize {
        self.facets.len()
    }

    /// True iff the history is empty (never the case for a valid build).
    pub fn is_empty(&self) -> bool {
        self.facets.is_empty()
    }

    /// Exact visibility of an arbitrary query coordinate (need not be an
    /// input point) from facet `id`.
    fn sees(&self, id: u32, q: &[i64]) -> bool {
        let f = &self.facets[id as usize];
        let mut rows: Vec<&[i64]> = Vec::with_capacity(self.pts.dim() + 1);
        for i in 0..self.pts.dim() {
            rows.push(self.pts.pt(f.verts[i]));
        }
        rows.push(q);
        let s = chull_geometry::predicates::orientd(self.pts.dim(), &rows);
        s != Sign::Zero && s == f.visible_sign
    }

    /// Locate `q` (a coordinate slice of the right dimension): descend from
    /// the seed facets through children whose conflict region contains `q`.
    ///
    /// Uses the same per-thread epoch-stamped visited scratch as the
    /// online hull's descent, so a query costs O(nodes visited) rather
    /// than O(history size) — the serving-path invariants this mirrors
    /// are documented in DESIGN §S18.
    pub fn locate(&self, q: &[i64]) -> Location {
        thread_local! {
            static SCRATCH: std::cell::RefCell<(Vec<u64>, u64)> =
                const { std::cell::RefCell::new((Vec::new(), 0)) };
        }
        assert_eq!(q.len(), self.pts.dim(), "query of wrong dimension");
        let mut visible = Vec::new();
        let visited = SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.1 += 1;
            let epoch = scratch.1;
            if scratch.0.len() < self.facets.len() {
                scratch.0.resize(self.facets.len(), 0);
            }
            let stamps = &mut scratch.0;
            let mut stack: Vec<u32> = Vec::new();
            let mut visited = 0usize;
            for &s in &self.seeds {
                stamps[s as usize] = epoch;
                visited += 1;
                if self.sees(s, q) {
                    stack.push(s);
                }
            }
            while let Some(id) = stack.pop() {
                // Invariant: q is visible from `id`.
                if self.alive[id as usize] {
                    visible.push(id);
                }
                for &c in &self.children[id as usize] {
                    if stamps[c as usize] != epoch {
                        stamps[c as usize] = epoch;
                        visited += 1;
                        if self.sees(c, q) {
                            stack.push(c);
                        }
                    }
                }
            }
            visited
        });
        visible.sort_unstable();
        Location {
            visible_facets: visible,
            nodes_visited: visited,
        }
    }

    /// Membership oracle: is `q` inside or on the hull?
    pub fn contains(&self, q: &[i64]) -> bool {
        self.locate(q).is_inside()
    }

    /// The *influence property* (Definition 3.2, condition 2) checked by
    /// brute force for every non-seed facet: its conflict list is covered
    /// by its parents' conflict lists. Used in tests.
    pub fn verify_influence_property(&self, run: &SeqRun) -> Result<(), String> {
        for (id, ps) in run.parents.iter().enumerate() {
            if ps[0] == NO_PARENT {
                continue;
            }
            let child = &self.facets[id].conflicts;
            let p0 = &self.facets[ps[0] as usize].conflicts;
            let p1 = &self.facets[ps[1] as usize].conflicts;
            for &q in child {
                if p0.binary_search(&q).is_err() && p1.binary_search(&q).is_err() {
                    return Err(format!(
                        "facet {id}: conflict {q} not covered by parents {ps:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Exhaustive (linear) visibility scan — the oracle `locate` is tested
    /// against.
    pub fn locate_brute(&self, q: &[i64]) -> Vec<u32> {
        let mut out: Vec<u32> = (0..self.facets.len() as u32)
            .filter(|&id| self.alive[id as usize] && self.sees(id, q))
            .collect();
        out.sort_unstable();
        out
    }

    /// Shared geometric context (exposed for tests).
    pub fn context(&self) -> &HullContext<'a> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use crate::seq::incremental_hull_run;
    use chull_geometry::generators;

    fn build(n: usize, seed: u64) -> (PointSet, SeqRun) {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(n, 1 << 20, seed)),
            seed + 1,
        );
        let run = incremental_hull_run(&pts);
        (pts, run)
    }

    #[test]
    fn influence_property_holds() {
        for seed in 0..3u64 {
            let (pts, run) = build(400, seed);
            let h = HullHistory::from_run(&pts, &run);
            h.verify_influence_property(&run).unwrap();
        }
    }

    #[test]
    fn locate_matches_brute_force() {
        let (pts, run) = build(300, 4);
        let h = HullHistory::from_run(&pts, &run);
        let mut rng = generators::rng(99);
        for _ in 0..200 {
            let q = [
                rng.gen_range(-(1 << 21)..(1 << 21)),
                rng.gen_range(-(1 << 21)..(1 << 21)),
            ];
            let loc = h.locate(&q);
            assert_eq!(loc.visible_facets, h.locate_brute(&q), "query {q:?}");
        }
    }

    #[test]
    fn input_points_are_inside() {
        let (pts, run) = build(250, 7);
        let h = HullHistory::from_run(&pts, &run);
        for i in 0..pts.len() {
            assert!(h.contains(pts.point(i)), "input point {i} reported outside");
        }
    }

    #[test]
    fn far_points_are_outside() {
        let (pts, run) = build(250, 8);
        let h = HullHistory::from_run(&pts, &run);
        let far = 1i64 << 30;
        for q in [[far, 0], [-far, 0], [0, far], [far, far]] {
            let loc = h.locate(&q);
            assert!(!loc.is_inside(), "far point {q:?} reported inside");
            assert!(!loc.visible_facets.is_empty());
        }
    }

    #[test]
    fn search_cost_logarithmic() {
        // E13: expected nodes visited per random query is O(log n).
        let mut prev_mean = 0.0;
        for n in [500usize, 4000] {
            let (pts, run) = build(n, 11);
            let h = HullHistory::from_run(&pts, &run);
            let mut rng = generators::rng(5);
            let queries = 100;
            let mut total = 0usize;
            for _ in 0..queries {
                let q = [
                    rng.gen_range(-(1 << 20)..(1 << 20)),
                    rng.gen_range(-(1 << 20)..(1 << 20)),
                ];
                total += h.locate(&q).nodes_visited;
            }
            let mean = total as f64 / queries as f64;
            let hn: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
            assert!(
                mean < 20.0 * hn,
                "mean search cost {mean} too large for n = {n}"
            );
            if prev_mean > 0.0 {
                // 8x more points must not mean 8x more visits.
                assert!(mean < prev_mean * 4.0);
            }
            prev_mean = mean;
        }
    }

    #[test]
    fn works_in_3d() {
        let pts = prepare_points(
            &PointSet::from_points3(&generators::ball_3d(300, 1 << 20, 3)),
            4,
        );
        let run = incremental_hull_run(&pts);
        let h = HullHistory::from_run(&pts, &run);
        h.verify_influence_property(&run).unwrap();
        let mut rng = generators::rng(6);
        for _ in 0..100 {
            let q = [
                rng.gen_range(-(1 << 21)..(1 << 21)),
                rng.gen_range(-(1 << 21)..(1 << 21)),
                rng.gen_range(-(1 << 21)..(1 << 21)),
            ];
            assert_eq!(h.locate(&q).visible_facets, h.locate_brute(&q));
        }
    }
}
