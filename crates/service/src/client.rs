//! A blocking client for the hull wire protocol — used by the `hull
//! query` CLI, the loopback tests, and the load generator.

use crate::wire::{read_frame, write_frame, Request, Response, ALL_SHARDS};
use std::io::{self};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded `Snapshot` reply.
#[derive(Debug, Clone)]
pub struct SnapshotReply {
    /// Publication epoch.
    pub epoch: u64,
    /// Dimension.
    pub dim: usize,
    /// Points, one `Vec` per point, in the shard's vertex-id order.
    pub points: Vec<Vec<i64>>,
    /// Facets as vertex-id tuples into `points`.
    pub facets: Vec<Vec<u32>>,
}

/// One connection to a hull server; methods are synchronous
/// request/response calls. Not thread-safe — use one client per thread
/// (connections are cheap).
pub struct HullClient {
    stream: TcpStream,
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

fn server_error(msg: String) -> io::Error {
    io::Error::other(format!("server error: {msg}"))
}

impl HullClient {
    /// Connect (with `TCP_NODELAY`, request/response is latency-bound).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HullClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HullClient { stream })
    }

    /// Send one request and read its reply (any variant).
    pub fn raw(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Queue one point; `false` means the shard is overloaded (retry).
    pub fn insert(&mut self, shard: u16, point: &[i64]) -> io::Result<bool> {
        match self.raw(&Request::Insert {
            shard,
            point: point.to_vec(),
        })? {
            Response::Inserted => Ok(true),
            Response::Overloaded => Ok(false),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Insert, retrying with a short sleep while the shard pushes back.
    /// Returns the number of `Overloaded` rejections absorbed.
    pub fn insert_retry(&mut self, shard: u16, point: &[i64]) -> io::Result<u64> {
        let mut rejections = 0;
        while !self.insert(shard, point)? {
            rejections += 1;
            // Brief pause: the worker drains whole batches, so capacity
            // tends to reappear in bursts.
            std::thread::sleep(Duration::from_micros(200));
        }
        Ok(rejections)
    }

    /// Membership query; `None` while the shard is bootstrapping.
    pub fn contains(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<bool>> {
        match self.raw(&Request::Contains {
            shard,
            point: point.to_vec(),
        })? {
            Response::Bool(b) => Ok(Some(b)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Number of facets visible from the point; `None` while bootstrapping.
    pub fn visible(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<u32>> {
        match self.raw(&Request::Visible {
            shard,
            point: point.to_vec(),
        })? {
            Response::VisibleCount(n) => Ok(Some(n)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Extreme vertex in a direction; `None` while bootstrapping.
    pub fn extreme(&mut self, shard: u16, dir: &[i64]) -> io::Result<Option<(u32, Vec<i64>)>> {
        match self.raw(&Request::Extreme {
            shard,
            direction: dir.to_vec(),
        })? {
            Response::Extreme { vertex, coords } => Ok(Some((vertex, coords))),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Service counters as JSON (`None` aggregates all shards).
    pub fn stats(&mut self, shard: Option<u16>) -> io::Result<String> {
        match self.raw(&Request::Stats {
            shard: shard.unwrap_or(ALL_SHARDS),
        })? {
            Response::Stats(json) => Ok(json),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// The shard's current points and hull facets.
    pub fn snapshot(&mut self, shard: u16) -> io::Result<SnapshotReply> {
        match self.raw(&Request::Snapshot { shard })? {
            Response::Snapshot {
                epoch,
                dim,
                points,
                facets,
            } => Ok(SnapshotReply {
                epoch,
                dim,
                points: points.chunks(dim).map(|c| c.to_vec()).collect(),
                facets: facets.chunks(dim).map(|c| c.to_vec()).collect(),
            }),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Barrier: every insert this client enqueued before the call is
    /// applied once this returns. Returns the publication epoch.
    pub fn flush(&mut self, shard: u16) -> io::Result<u64> {
        match self.raw(&Request::Flush { shard })? {
            Response::Flushed { epoch } => Ok(epoch),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.raw(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }
}
