//! Andrew's monotone chain: the exact `O(n log n)` 2D baseline.
//!
//! The fastest comparison-based 2D hull; used as the ground-truth oracle for
//! every 2D test and as the sequential baseline in the benchmarks.

use crate::facet::facet_verts;
use crate::output::HullOutput;
use chull_geometry::predicates::orient2d;
use chull_geometry::{Point2i, Sign};

/// Hull vertex indices in counterclockwise order (strict hull: collinear
/// boundary points are excluded). Returns all distinct points if fewer than
/// 3 or all collinear.
pub fn hull_indices(points: &[Point2i]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..points.len() as u32).collect();
    idx.sort_unstable_by_key(|&i| points[i as usize]);
    idx.dedup_by_key(|i| points[*i as usize]);
    if idx.len() < 3 {
        return idx;
    }
    let p = |i: u32| points[i as usize];
    let mut lower: Vec<u32> = Vec::new();
    for &i in &idx {
        while lower.len() >= 2
            && orient2d(p(lower[lower.len() - 2]), p(lower[lower.len() - 1]), p(i))
                != Sign::Positive
        {
            lower.pop();
        }
        lower.push(i);
    }
    let mut upper: Vec<u32> = Vec::new();
    for &i in idx.iter().rev() {
        while upper.len() >= 2
            && orient2d(p(upper[upper.len() - 2]), p(upper[upper.len() - 1]), p(i))
                != Sign::Positive
        {
            upper.pop();
        }
        upper.push(i);
    }
    lower.pop();
    upper.pop();
    if upper.len() + lower.len() < 3 {
        // Fully collinear input: return the two extremes.
        let mut ends = vec![*idx.first().unwrap(), *idx.last().unwrap()];
        ends.dedup();
        return ends;
    }
    lower.extend(upper);
    lower
}

/// The hull as a [`HullOutput`] (edges between cyclically adjacent hull
/// vertices), comparable with the incremental algorithms' output.
pub fn hull_output(points: &[Point2i]) -> HullOutput {
    let h = hull_indices(points);
    let facets = (0..h.len())
        .map(|i| facet_verts(&[h[i], h[(i + 1) % h.len()]]))
        .collect();
    HullOutput { dim: 2, facets }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point2i {
        Point2i::new(x, y)
    }

    #[test]
    fn square_with_interior_and_boundary_points() {
        let pts = vec![
            p(0, 0),
            p(10, 0),
            p(10, 10),
            p(0, 10),
            p(5, 5), // interior
            p(5, 0), // on edge: excluded by strict hull
            p(0, 5),
        ];
        let h = hull_indices(&pts);
        assert_eq!(h.len(), 4);
        let hull_set: std::collections::BTreeSet<u32> = h.into_iter().collect();
        assert_eq!(hull_set, [0u32, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn counterclockwise_order() {
        let pts = vec![p(0, 0), p(4, 0), p(4, 4), p(0, 4)];
        let h = hull_indices(&pts);
        for i in 0..h.len() {
            let a = pts[h[i] as usize];
            let b = pts[h[(i + 1) % h.len()] as usize];
            let c = pts[h[(i + 2) % h.len()] as usize];
            assert_eq!(orient2d(a, b, c), Sign::Positive);
        }
    }

    #[test]
    fn collinear_input() {
        let pts = vec![p(0, 0), p(1, 1), p(2, 2), p(3, 3)];
        let h = hull_indices(&pts);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![p(0, 0), p(0, 0), p(5, 0), p(5, 0), p(0, 5)];
        let h = hull_indices(&pts);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn hull_output_is_closed_cycle() {
        let pts = vec![p(0, 0), p(9, 1), p(7, 8), p(1, 7), p(4, 4)];
        let out = hull_output(&pts);
        assert_eq!(out.num_facets(), out.vertices().len());
    }
}
