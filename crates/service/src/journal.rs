//! Per-shard append-only insert journals — the recovery substrate.
//!
//! Every insert a shard worker pops from its ingest queue is appended
//! here **before** it is applied to the hull; the journal append is the
//! commit point. A worker that panics mid-batch is therefore fully
//! described by (journal prefix, remaining queue): the supervisor
//! rebuilds the hull by replaying the journal through
//! [`chull_core::online::HullBuilder::replay`] and resumes draining the
//! queue — no acked insert is lost and none is applied twice
//! (exactly-once through the journal).
//!
//! Two tiers:
//!
//! * the **in-memory log** (always on): a `Vec` of coordinate rows,
//!   enough to survive worker panics within one process;
//! * an optional **on-disk WAL** (`hull serve --wal <dir>`): one file
//!   per shard of length-prefixed, crc32-checked records, enough to
//!   survive process crashes. Reopening tolerates a truncated or
//!   corrupt tail (the classic torn-write case): the file is truncated
//!   back to its last intact record and appending resumes there.
//!
//! Replay cost is one incremental construction over the journal —
//! Devillers' randomized `O(n log* n)` line (and this repo's measured
//! expected `O(log n)` per insert) is what keeps "recovery = re-run the
//! algorithm" cheap enough to be the *whole* recovery story.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Small and std-only; speed is irrelevant next to the hull geometry.
fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// One WAL record on disk: `u32` LE payload length, `u32` LE crc32 of
/// the payload, then the payload. Two payload shapes exist:
///
/// * an **insert**: `dim` i64 LE coordinates (`len == dim * 8 >= 16`);
/// * a **batch marker**: a single `u32` LE — the number of inserts in
///   the batch it closes (`len == 4`, unambiguous since `dim >= 2`).
///
/// Markers delimit the atomic units of apply: one marker is appended
/// (and synced) after a batch's inserts and **before** the batch is
/// applied to the hull, so recovery replays whole batches through the
/// same parallel path the live shard used. Inserts after the last
/// marker are a batch whose marker was lost to a crash; they are
/// committed (journal append is the commit point) and replay as one
/// final batch.
const RECORD_HEADER: usize = 8;

/// Marker payload size; collides with no insert payload (`dim >= 2`).
const MARKER_LEN: usize = 4;

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_HEADER + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    rec
}

fn encode_record(p: &[i64]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(p.len() * 8);
    for &c in p {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    frame(&payload)
}

fn encode_marker(count: u32) -> Vec<u8> {
    frame(&count.to_le_bytes())
}

/// Result of scanning a WAL file on reopen.
struct WalScan {
    /// Intact insert records, in append order.
    records: Vec<Vec<i64>>,
    /// Batch boundaries: cumulative insert counts at each marker.
    marks: Vec<usize>,
    /// Byte offset of the first damaged/incomplete record (== file
    /// length when the tail is clean).
    good_len: u64,
    /// Whether a damaged tail was found (and will be truncated away).
    tail_damaged: bool,
}

/// Read every intact record of dimension `dim`; stop at the first
/// truncated or corrupt one. Never errors on damage — damage is data.
fn scan_wal(file: &mut File, dim: usize) -> io::Result<WalScan> {
    let mut buf = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut buf)?;
    let mut records: Vec<Vec<i64>> = Vec::new();
    let mut marks: Vec<usize> = Vec::new();
    let mut at = 0usize;
    loop {
        if at + RECORD_HEADER > buf.len() {
            break; // clean EOF or torn header
        }
        let len = u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]) as usize;
        let crc = u32::from_le_bytes([buf[at + 4], buf[at + 5], buf[at + 6], buf[at + 7]]);
        // A record sized as neither an insert nor a marker is corruption,
        // not a format change: stop here.
        if (len != dim * 8 && len != MARKER_LEN) || at + RECORD_HEADER + len > buf.len() {
            break;
        }
        let payload = &buf[at + RECORD_HEADER..at + RECORD_HEADER + len];
        if crc32(payload) != crc {
            break;
        }
        if len == MARKER_LEN {
            let count =
                u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
            // A marker must close a non-empty batch of exactly the
            // inserts since the previous marker; anything else is a
            // damaged record that happened to checksum clean.
            let since = records.len() - marks.last().copied().unwrap_or(0);
            if count == 0 || count != since {
                break;
            }
            marks.push(records.len());
        } else {
            let row: Vec<i64> = payload
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect();
            records.push(row);
        }
        at += RECORD_HEADER + len;
    }
    Ok(WalScan {
        records,
        marks,
        good_len: at as u64,
        tail_damaged: at as u64 != buf.len() as u64,
    })
}

/// The per-shard WAL file name inside a `--wal` directory.
pub fn wal_path(dir: &Path, shard: u16) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

/// Typed journal failure surfaced from replay-time sealing — previously
/// only a `debug_assert`, so release builds replayed a torn journal
/// silently.
#[derive(Debug)]
pub enum JournalError {
    /// Sealing the open tail left the journal with fewer batch units
    /// than the epoch the shard had already published: acked, applied
    /// units vanished from the journal (a torn tail the crc/size scan
    /// could not see, or a corrupted in-memory log). The rebuilt hull
    /// would be missing published state.
    TornTail {
        /// Batch units the shard had published before recovery.
        epoch: u64,
        /// Batch units actually present after sealing.
        batches: u64,
    },
    /// The WAL write of the sealing marker failed (the in-memory seal
    /// still landed; memory stays authoritative in-process).
    Wal(io::Error),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::TornTail { epoch, batches } => write!(
                f,
                "torn journal tail: {batches} batch units on record, epoch {epoch} published"
            ),
            JournalError::Wal(e) => write!(f, "journal WAL write failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// An append-only insert journal; see module docs. Owned by one shard's
/// supervisor thread (no internal locking needed).
pub struct Journal {
    dim: usize,
    mem: Vec<Vec<i64>>,
    /// Batch boundaries: cumulative insert counts at each
    /// [`Journal::mark_batch`], ascending. Inserts past the last mark
    /// form the open (in-flight) batch.
    marks: Vec<usize>,
    wal: Option<BufWriter<File>>,
    /// Records recovered from disk on open (prefix of `mem`).
    recovered: usize,
    /// Whether the reopened WAL had a damaged tail that was dropped.
    tail_damaged: bool,
}

impl Journal {
    /// A purely in-memory journal (survives worker panics, not process
    /// crashes).
    pub fn in_memory(dim: usize) -> Journal {
        Journal {
            dim,
            mem: Vec::new(),
            marks: Vec::new(),
            wal: None,
            recovered: 0,
            tail_damaged: false,
        }
    }

    /// Open (or create) the shard's WAL under `dir`, recovering every
    /// intact record already on disk. A truncated or corrupt tail is
    /// cut off — [`Journal::tail_damaged`] reports that it happened —
    /// and appending resumes after the last intact record.
    pub fn with_wal(dim: usize, dir: &Path, shard: u16) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = wal_path(dir, shard);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let scan = scan_wal(&mut file, dim)?;
        if scan.tail_damaged {
            file.set_len(scan.good_len)?;
        }
        file.seek(SeekFrom::Start(scan.good_len))?;
        let recovered = scan.records.len();
        Ok(Journal {
            dim,
            mem: scan.records,
            marks: scan.marks,
            wal: Some(BufWriter::new(file)),
            recovered,
            tail_damaged: scan.tail_damaged,
        })
    }

    /// Append one insert. The in-memory log is updated first (it is the
    /// intra-process source of truth); the WAL write is buffered until
    /// [`Journal::sync`].
    pub fn append(&mut self, p: &[i64]) -> io::Result<()> {
        debug_assert_eq!(p.len(), self.dim, "journal row of wrong dimension");
        self.mem.push(p.to_vec());
        if let Some(w) = &mut self.wal {
            w.write_all(&encode_record(p))?;
        }
        Ok(())
    }

    /// Flush buffered WAL writes to the OS (called once per applied
    /// batch, before the snapshot publishes). No-op without a WAL.
    pub fn sync(&mut self) -> io::Result<()> {
        if let Some(w) = &mut self.wal {
            w.flush()?;
        }
        Ok(())
    }

    /// Close the open batch: record that every insert appended since the
    /// previous mark forms one atomic apply unit. Written (and meant to
    /// be [`Journal::sync`]ed) **before** the batch is applied, so a
    /// crash mid-apply still replays the batch whole. No-op when no
    /// inserts are pending (batches are never empty).
    pub fn mark_batch(&mut self) -> io::Result<()> {
        let since = self.mem.len() - self.marks.last().copied().unwrap_or(0);
        if since == 0 {
            return Ok(());
        }
        // The in-memory mark lands even if the WAL write errors — like
        // `append`, memory stays authoritative for in-process recovery.
        let res = match &mut self.wal {
            Some(w) => w.write_all(&encode_marker(since as u32)),
            None => Ok(()),
        };
        self.marks.push(self.mem.len());
        res
    }

    /// Number of batch units in the journal: every marked batch, plus
    /// the open tail (inserts past the last marker) if non-empty. The
    /// shard's published epoch equals this count.
    pub fn batch_count(&self) -> u64 {
        let marked = self.marks.last().copied().unwrap_or(0);
        (self.marks.len() + usize::from(self.mem.len() > marked)) as u64
    }

    /// The journal split into its batch units, in append order — the
    /// batch-replay input. The open tail (if any) is the final unit.
    pub fn batches(&self) -> impl Iterator<Item = &[Vec<i64>]> {
        let mut bounds = Vec::with_capacity(self.marks.len() + 1);
        let mut prev = 0usize;
        for &m in &self.marks {
            bounds.push((prev, m));
            prev = m;
        }
        if self.mem.len() > prev {
            bounds.push((prev, self.mem.len()));
        }
        bounds.into_iter().map(move |(a, b)| &self.mem[a..b])
    }

    /// Every journaled insert, in append order — the replay input.
    pub fn entries(&self) -> &[Vec<i64>] {
        &self.mem
    }

    /// Number of journaled inserts.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.mem.is_empty()
    }

    /// Seal the open tail for replay and **validate** the sealed journal
    /// against `published_epoch`, the number of batch units the shard had
    /// published before recovery began. Replay call sites use this
    /// instead of a bare [`Journal::mark_batch`]: a journal holding
    /// *fewer* units than were published means applied state has been
    /// lost — a torn tail — which used to be caught only by a
    /// `debug_assert` in the apply loop. Returns the sealed batch count
    /// (which may legitimately exceed `published_epoch` by the units that
    /// were journaled but died before publishing; replay reapplies them).
    /// A torn tail takes priority over a WAL write error.
    pub fn seal_tail(&mut self, published_epoch: u64) -> Result<u64, JournalError> {
        let wal = self.mark_batch();
        let batches = self.batch_count();
        if batches < published_epoch {
            return Err(JournalError::TornTail {
                epoch: published_epoch,
                batches,
            });
        }
        wal.map_err(JournalError::Wal)?;
        Ok(batches)
    }

    /// Records recovered from disk when this journal was opened.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Whether opening found (and dropped) a damaged WAL tail.
    pub fn tail_damaged(&self) -> bool {
        self.tail_damaged
    }
}

/// Snapshot compaction (offline; `hull compact`): atomically rewrite the
/// shard's WAL as **one checkpoint unit** — `rows` in order, closed by a
/// single batch marker. The caller passes the bulk sweep's candidate
/// rows, so a long incremental history collapses into one unit holding
/// only the points that can still matter to the hull. The rewrite goes
/// through a temp file + rename, so a crash mid-compaction leaves the
/// old WAL intact. Collapsing batch history resets the epoch/unit count
/// to 1: replication cursors into this WAL are invalidated, and any
/// follower must re-bootstrap (documented in DESIGN §S21).
pub fn rewrite_wal(dim: usize, dir: &Path, shard: u16, rows: &[Vec<i64>]) -> io::Result<u64> {
    let final_path = wal_path(dir, shard);
    let tmp_path = final_path.with_extension("wal.tmp");
    let mut written = 0u64;
    {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        let mut w = BufWriter::new(file);
        for p in rows {
            debug_assert_eq!(p.len(), dim, "compaction row of wrong dimension");
            let rec = encode_record(p);
            w.write_all(&rec)?;
            written += rec.len() as u64;
        }
        if !rows.is_empty() {
            let rec = encode_marker(rows.len() as u32);
            w.write_all(&rec)?;
            written += rec.len() as u64;
        }
        w.flush()?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    }
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chull-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn in_memory_appends_in_order() {
        let mut j = Journal::in_memory(2);
        j.append(&[1, 2]).unwrap();
        j.append(&[-3, 4]).unwrap();
        assert_eq!(j.entries(), &[vec![1, 2], vec![-3, 4]]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.recovered(), 0);
    }

    #[test]
    fn wal_roundtrip_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let mut j = Journal::with_wal(3, &dir, 0).unwrap();
            for i in 0..50i64 {
                j.append(&[i, -i, i * 7]).unwrap();
            }
            j.sync().unwrap();
        }
        let j = Journal::with_wal(3, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 50);
        assert!(!j.tail_damaged());
        assert_eq!(j.entries()[49], vec![49, -49, 343]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_shards_are_separate_files() {
        let dir = tmpdir("shards");
        let mut a = Journal::with_wal(2, &dir, 0).unwrap();
        let mut b = Journal::with_wal(2, &dir, 1).unwrap();
        a.append(&[1, 1]).unwrap();
        b.append(&[2, 2]).unwrap();
        a.sync().unwrap();
        b.sync().unwrap();
        drop((a, b));
        assert_eq!(
            Journal::with_wal(2, &dir, 0).unwrap().entries(),
            &[vec![1, 1]]
        );
        assert_eq!(
            Journal::with_wal(2, &dir, 1).unwrap().entries(),
            &[vec![2, 2]]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_tolerated_and_cut() {
        let dir = tmpdir("torn");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..10i64 {
                j.append(&[i, i + 1]).unwrap();
            }
            j.sync().unwrap();
        }
        let path = wal_path(&dir, 0);
        // Tear the last record: drop its final 5 bytes.
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            assert_eq!(j.recovered(), 9, "torn final record dropped");
            assert!(j.tail_damaged());
            // Appending after recovery lands where the tear was cut.
            j.append(&[99, 100]).unwrap();
            j.sync().unwrap();
        }
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 10);
        assert_eq!(j.entries()[9], vec![99, 100]);
        assert!(!j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_stops_recovery_at_last_good_record() {
        let dir = tmpdir("crc");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..6i64 {
                j.append(&[i, i]).unwrap();
            }
            j.sync().unwrap();
        }
        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of record 4 (0-based): every record is
        // 8 + 16 bytes; payload of record 4 starts at 4*24 + 8.
        let off = 4 * 24 + 8;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(
            j.recovered(),
            4,
            "records 4 and 5 dropped (crc broke the chain)"
        );
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_marks_roundtrip_across_reopen() {
        let dir = tmpdir("marks");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..4i64 {
                j.append(&[i, i]).unwrap();
            }
            j.mark_batch().unwrap();
            j.mark_batch().unwrap(); // empty: no-op
            for i in 4..9i64 {
                j.append(&[i, i]).unwrap();
            }
            j.mark_batch().unwrap();
            // Open tail: journaled but the process dies before the marker.
            j.append(&[99, 99]).unwrap();
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 3);
        }
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 10);
        assert_eq!(j.batch_count(), 3, "open tail replays as one final batch");
        let units: Vec<usize> = j.batches().map(|b| b.len()).collect();
        assert_eq!(units, vec![4, 5, 1]);
        assert_eq!(j.batches().next().unwrap()[0], vec![0, 0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bogus_marker_count_stops_recovery() {
        let dir = tmpdir("bogus-mark");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            j.append(&[1, 2]).unwrap();
            j.append(&[3, 4]).unwrap();
            j.mark_batch().unwrap();
            j.sync().unwrap();
        }
        // Append a well-framed marker claiming a 7-insert batch that the
        // journal does not contain: the scan must treat it as damage.
        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&encode_marker(7));
        std::fs::write(&path, &bytes).unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 2);
        assert_eq!(j.batch_count(), 1);
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_batches_track_marks() {
        let mut j = Journal::in_memory(2);
        assert_eq!(j.batch_count(), 0);
        j.append(&[0, 0]).unwrap();
        assert_eq!(j.batch_count(), 1, "open tail counts as a batch");
        j.mark_batch().unwrap();
        assert_eq!(j.batch_count(), 1);
        j.append(&[1, 1]).unwrap();
        j.append(&[2, 2]).unwrap();
        j.mark_batch().unwrap();
        assert_eq!(j.batch_count(), 2);
        let units: Vec<usize> = j.batches().map(|b| b.len()).collect();
        assert_eq!(units, vec![1, 2]);
    }

    #[test]
    fn seal_tail_validates_published_epoch() {
        let mut j = Journal::in_memory(2);
        j.append(&[0, 0]).unwrap();
        j.append(&[1, 1]).unwrap();
        j.mark_batch().unwrap();
        j.append(&[2, 2]).unwrap(); // open tail
        assert_eq!(j.batch_count(), 2);
        // Normal recovery: published epoch matches (or trails by the
        // unpublished unit) — the tail seals into its own unit.
        assert_eq!(j.seal_tail(2).unwrap(), 2);
        assert_eq!(j.batch_count(), 2);
        // Published 5 units but the journal only holds 2: torn tail,
        // detected in release builds too.
        match j.seal_tail(5) {
            Err(JournalError::TornTail {
                epoch: 5,
                batches: 2,
            }) => {}
            other => panic!("expected TornTail, got {other:?}"),
        }
        // Journal ahead of the published epoch is legitimate (unit died
        // between marker and publish; replay reapplies it).
        assert_eq!(j.seal_tail(1).unwrap(), 2);
    }

    #[test]
    fn rewrite_wal_collapses_to_one_unit() {
        let dir = tmpdir("compact");
        {
            let mut j = Journal::with_wal(2, &dir, 0).unwrap();
            for i in 0..9i64 {
                j.append(&[i, i * 3]).unwrap();
                j.mark_batch().unwrap();
            }
            j.sync().unwrap();
            assert_eq!(j.batch_count(), 9);
        }
        // Compact down to three surviving rows.
        let kept = vec![vec![0i64, 0], vec![4, 12], vec![8, 24]];
        let bytes = rewrite_wal(2, &dir, 0, &kept).unwrap();
        assert!(bytes > 0);
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 3);
        assert!(!j.tail_damaged());
        assert_eq!(j.batch_count(), 1, "checkpoint is one sealed unit");
        assert_eq!(j.entries(), &kept[..]);
        let units: Vec<usize> = j.batches().map(|b| b.len()).collect();
        assert_eq!(units, vec![3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_prefix_yields_empty_journal() {
        let dir = tmpdir("garbage");
        std::fs::write(wal_path(&dir, 0), b"not a wal at all").unwrap();
        let j = Journal::with_wal(2, &dir, 0).unwrap();
        assert_eq!(j.recovered(), 0);
        assert!(j.tail_damaged());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
