//! Shared geometric context for the hull algorithms: exact visibility tests
//! against an interior reference point.
//!
//! Every facet stores the orientation sign that means "visible". That sign
//! is fixed at facet creation by orienting against a reference point that is
//! strictly interior to the hull — the centroid of the initial simplex,
//! kept exact as the homogeneous row `(sum of simplex vertices, d + 1)`.
//!
//! Visibility tests run on the **staged kernel**
//! ([`chull_geometry::kernel`]): each facet caches its exact hyperplane at
//! creation ([`HullContext::make_facet`]), and every test is an `O(d)`
//! filtered dot-product sign instead of a fresh `O(d³)` orientation
//! determinant. The staged sign is bit-identical to [`orientd`], so hulls,
//! facet-creation sequences, and test counts are unchanged — only cheaper.

use crate::facet::{Facet, FacetVerts, MAX_DIM};
use chull_geometry::predicates::{orientd, orientd_hom};
use chull_geometry::{Hyperplane, KernelCounts, PointSet, Sign};

/// Immutable geometric context shared by one hull construction.
pub struct HullContext<'a> {
    /// The (already permuted) input points; index order == insertion order.
    pub pts: &'a PointSet,
    /// Dimension `d`.
    pub dim: usize,
    /// Coordinate sums of the initial simplex vertices (homogeneous
    /// numerator of the interior centroid).
    interior_row: Vec<i64>,
    /// Homogeneous weight of the interior centroid (`d + 1`).
    interior_hom: i64,
}

impl<'a> HullContext<'a> {
    /// Build the context from the `d + 1` affinely independent initial
    /// simplex vertices.
    pub fn new(pts: &'a PointSet, simplex: &[u32]) -> HullContext<'a> {
        let dim = pts.dim();
        assert!((2..=MAX_DIM).contains(&dim), "dimension out of range");
        assert_eq!(
            simplex.len(),
            dim + 1,
            "initial simplex needs d + 1 vertices"
        );
        let mut interior_row = vec![0i64; dim];
        for &v in simplex {
            for (acc, &c) in interior_row.iter_mut().zip(pts.pt(v)) {
                *acc += c;
            }
        }
        HullContext {
            pts,
            dim,
            interior_row,
            interior_hom: dim as i64 + 1,
        }
    }

    /// The exact hyperplane through the facet's vertices, oriented to match
    /// [`orientd`] with the query as the last row.
    pub fn plane_for(&self, verts: &FacetVerts) -> Hyperplane {
        let mut rows: [&[i64]; MAX_DIM] = [&[]; MAX_DIM];
        for i in 0..self.dim {
            rows[i] = self.pts.pt(verts[i]);
        }
        Hyperplane::new(self.dim, &rows[..self.dim])
    }

    /// Orientation sign of the facet's vertices (in sorted order) against
    /// query point `q`, evaluated as a fresh `O(d³)` determinant.
    ///
    /// This is the **naive reference kernel**: the staged kernel used by
    /// [`HullContext::make_facet`] / [`HullContext::is_visible`] must agree
    /// with it bit-for-bit (property-tested), and the `predicates` bench
    /// compares their cost.
    #[inline]
    pub fn sign_vs_point(&self, verts: &FacetVerts, q: u32) -> Sign {
        let mut rows: [&[i64]; MAX_DIM + 1] = [&[]; MAX_DIM + 1];
        for i in 0..self.dim {
            rows[i] = self.pts.pt(verts[i]);
        }
        rows[self.dim] = self.pts.pt(q);
        orientd(self.dim, &rows[..=self.dim])
    }

    /// Orientation sign of the facet's vertices against the interior
    /// reference point. Panics if zero (the reference point would lie on the
    /// facet's hyperplane, impossible for a point interior to the hull).
    pub fn sign_vs_interior(&self, verts: &FacetVerts) -> Sign {
        let mut rows: Vec<(&[i64], i64)> = Vec::with_capacity(self.dim + 1);
        for &v in &verts[..self.dim] {
            rows.push((self.pts.pt(v), 1));
        }
        rows.push((self.interior_row.as_slice(), self.interior_hom));
        let s = orientd_hom(self.dim, &rows);
        assert_ne!(
            s,
            Sign::Zero,
            "interior reference point on a facet hyperplane: degenerate input \
             (the core algorithms require general position; see DESIGN.md)"
        );
        s
    }

    /// The sign that means "visible" for a facet with these vertices:
    /// the opposite side from the hull interior.
    #[inline]
    pub fn visible_sign_for(&self, verts: &FacetVerts) -> Sign {
        self.sign_vs_interior(verts).negate()
    }

    /// Is point `q` strictly visible from (i.e. in conflict with) `facet`?
    /// Points exactly on the hyperplane are *not* visible.
    ///
    /// Uses the facet's cached plane via the staged kernel; counters are
    /// discarded (see [`HullContext::is_visible_counted`] to keep them).
    #[inline]
    pub fn is_visible(&self, facet: &Facet, q: u32) -> bool {
        let mut counts = KernelCounts::default();
        self.is_visible_counted(facet, q, &mut counts)
    }

    /// [`HullContext::is_visible`], accumulating staged-kernel counters.
    #[inline]
    pub fn is_visible_counted(&self, facet: &Facet, q: u32, counts: &mut KernelCounts) -> bool {
        self.kernel_sign(facet, q, counts) == facet.visible_sign
    }

    /// One visibility-test sign through the active kernel.
    #[cfg(not(feature = "naive-kernel"))]
    #[inline]
    fn kernel_sign(&self, facet: &Facet, q: u32, counts: &mut KernelCounts) -> Sign {
        facet.plane.sign_point(self.pts.pt(q), counts)
    }

    /// One visibility-test sign through the naive `O(d³)` determinant —
    /// the pre-staged-kernel behavior, kept behind the `naive-kernel`
    /// feature purely for A/B benchmarking. Counted as an exact fallback so
    /// the counter partition invariant still holds.
    #[cfg(feature = "naive-kernel")]
    #[inline]
    fn kernel_sign(&self, facet: &Facet, q: u32, counts: &mut KernelCounts) -> Sign {
        counts.tests += 1;
        counts.i128_fallbacks += 1;
        self.sign_vs_point(&facet.verts, q)
    }

    /// Create a facet: computes its cached hyperplane and visible
    /// orientation once, then filters its conflict list from `candidates`
    /// (which must be sorted ascending); `skip` (the just-inserted pivot)
    /// is excluded. Returns the facet and the staged-kernel counters for
    /// the visibility tests performed (`counts.tests` of them).
    pub fn make_facet(
        &self,
        verts: FacetVerts,
        candidates: &[u32],
        skip: u32,
    ) -> (Facet, KernelCounts) {
        let plane = self.plane_for(&verts);
        let s = plane.sign_hom(&self.interior_row, self.interior_hom);
        assert_ne!(
            s,
            Sign::Zero,
            "interior reference point on a facet hyperplane: degenerate input \
             (the core algorithms require general position; see DESIGN.md)"
        );
        let visible_sign = s.negate();
        let mut facet = Facet {
            verts,
            visible_sign,
            conflicts: Vec::new(),
            plane,
        };
        let mut counts = KernelCounts::default();
        for &q in candidates {
            if q == skip {
                continue;
            }
            if self.kernel_sign(&facet, q, &mut counts) == visible_sign {
                facet.conflicts.push(q);
            }
        }
        (facet, counts)
    }
}

/// Select `d + 1` affinely independent points, scanning from the front of
/// the point set; returns their indices in scan order.
///
/// Panics if the input is fully degenerate (affine rank < d + 1).
pub fn initial_simplex(pts: &PointSet) -> Vec<u32> {
    let dim = pts.dim();
    let mut chosen: Vec<u32> = Vec::with_capacity(dim + 1);
    for i in 0..pts.len() {
        let mut rows: Vec<&[i64]> = chosen.iter().map(|&c| pts.pt(c)).collect();
        rows.push(pts.point(i));
        if chull_geometry::exact::affine_rank(&rows) == rows.len() {
            chosen.push(i as u32);
            if chosen.len() == dim + 1 {
                return chosen;
            }
        }
    }
    panic!(
        "input is degenerate: affine rank {} < {} (need d + 1 affinely independent points)",
        chosen.len(),
        dim + 1
    );
}

/// Permute `pts` uniformly at random (seeded), then rotate the lexically
/// smallest affinely independent `d + 1` points to the front so the seed
/// simplex exists. Returns the permuted point set.
///
/// The randomized incremental analysis assumes a uniformly random order;
/// promoting the first independent `d + 1` points perturbs that order by
/// `O(1)` positions in expectation for general-position inputs (where the
/// first `d + 1` points are already independent with probability 1).
pub fn prepare_points(pts: &PointSet, seed: u64) -> PointSet {
    prepare_points_with_perm(pts, seed).0
}

/// Like [`prepare_points`], additionally returning the permutation:
/// `perm[i]` is the index *in the original input* of prepared point `i`
/// (use it to translate hull vertex ids back to input ids).
pub fn prepare_points_with_perm(pts: &PointSet, seed: u64) -> (PointSet, Vec<usize>) {
    let perm = chull_geometry::generators::random_permutation(pts.len(), seed);
    let shuffled = pts.permuted(&perm);
    let simplex = initial_simplex(&shuffled);
    // Stable-move the simplex indices to the front.
    let simplex_set: std::collections::HashSet<usize> =
        simplex.iter().map(|&v| v as usize).collect();
    let mut order: Vec<usize> = simplex.iter().map(|&v| v as usize).collect();
    order.extend((0..shuffled.len()).filter(|i| !simplex_set.contains(i)));
    let composed: Vec<usize> = order.iter().map(|&i| perm[i]).collect();
    (shuffled.permuted(&order), composed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::facet_verts;
    use chull_geometry::generators;

    fn square_pts() -> PointSet {
        PointSet::from_rows(
            2,
            &[
                vec![0, 0],
                vec![10, 0],
                vec![0, 10],
                vec![10, 10],
                vec![5, 5],
            ],
        )
    }

    #[test]
    fn initial_simplex_picks_first_independent() {
        let pts = square_pts();
        assert_eq!(initial_simplex(&pts), vec![0, 1, 2]);
        // With a collinear prefix, the scan skips the dependent point.
        let pts = PointSet::from_rows(2, &[vec![0, 0], vec![1, 1], vec![2, 2], vec![5, 0]]);
        assert_eq!(initial_simplex(&pts), vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn initial_simplex_panics_on_flat_input() {
        let pts = PointSet::from_rows(2, &[vec![0, 0], vec![1, 1], vec![2, 2], vec![3, 3]]);
        initial_simplex(&pts);
    }

    #[test]
    fn visibility_against_interior() {
        let pts = square_pts();
        let ctx = HullContext::new(&pts, &[0, 1, 2]);
        // Facet {0, 1} is the bottom edge; point 3 = (10, 10) is above it
        // (same side as the interior), point at (5, -5) would be visible —
        // emulate by checking the sign directly.
        let verts = facet_verts(&[0, 1]);
        let vis = ctx.visible_sign_for(&verts);
        assert_ne!(vis, Sign::Zero);
        assert_ne!(
            ctx.sign_vs_point(&verts, 3),
            vis,
            "interior-side point visible"
        );
        // Point 4 = (5,5) strictly inside: not visible from any facet.
        for pair in [[0u32, 1], [0, 2], [1, 2]] {
            let verts = facet_verts(&pair);
            let (facet, _) = ctx.make_facet(verts, &[3, 4], u32::MAX);
            assert!(!ctx.is_visible(&facet, 4));
        }
    }

    #[test]
    fn make_facet_counts_tests_and_filters() {
        let pts = PointSet::from_rows(
            2,
            &[
                vec![0, 0],
                vec![10, 0],
                vec![0, 10],
                vec![5, -5],
                vec![5, 5],
                vec![20, -1],
            ],
        );
        let ctx = HullContext::new(&pts, &[0, 1, 2]);
        let verts = facet_verts(&[0, 1]); // bottom edge
        let (facet, counts) = ctx.make_facet(verts, &[3, 4, 5], u32::MAX);
        assert_eq!(counts.tests, 3);
        assert_eq!(
            counts.tests,
            counts.filter_hits + counts.i128_fallbacks + counts.bigint_fallbacks,
            "every test resolves in exactly one kernel stage"
        );
        // (5,-5) and (20,-1) are below the bottom edge; (5,5) is not.
        assert_eq!(facet.conflicts, vec![3, 5]);
        let (_, counts) = ctx.make_facet(verts, &[3, 4, 5], 3);
        assert_eq!(counts.tests, 2, "skip must not be tested");
    }

    #[test]
    fn staged_kernel_matches_naive_reference() {
        let pts = square_pts();
        let ctx = HullContext::new(&pts, &[0, 1, 2]);
        for pair in [[0u32, 1], [0, 2], [1, 2]] {
            let verts = facet_verts(&pair);
            let (facet, _) = ctx.make_facet(verts, &[], u32::MAX);
            let mut counts = KernelCounts::default();
            for q in 0..pts.len() as u32 {
                assert_eq!(
                    facet.plane.sign_point(pts.pt(q), &mut counts),
                    ctx.sign_vs_point(&verts, q),
                    "facet {pair:?} vs point {q}"
                );
            }
        }
    }

    #[test]
    fn prepare_points_perm_maps_back_to_input() {
        let pts = PointSet::from_points2(&generators::disk_2d(50, 1 << 20, 7));
        let (prepared, perm) = prepare_points_with_perm(&pts, 3);
        assert_eq!(perm.len(), 50);
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(prepared.point(i), pts.point(p), "index {i}");
        }
        // perm is a permutation.
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn prepare_points_deterministic_and_independent_prefix() {
        let pts = PointSet::from_points2(&generators::disk_2d(64, 1 << 20, 5));
        let a = prepare_points(&pts, 9);
        let b = prepare_points(&pts, 9);
        assert_eq!(a, b);
        let c = prepare_points(&pts, 10);
        assert_ne!(a, c);
        // First d + 1 of the prepared set must be affinely independent.
        let rows: Vec<&[i64]> = (0..3).map(|i| a.point(i)).collect();
        assert_eq!(chull_geometry::exact::affine_rank(&rows), 3);
    }
}
