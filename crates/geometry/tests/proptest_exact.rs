//! Property tests for the exact-arithmetic substrate: the big integer, the
//! fraction-free determinants, the expansion arithmetic, and the agreement
//! of all predicate implementations.

use chull_geometry::exact::expansion::{det_expansion, Expansion};
use chull_geometry::exact::{det_i64, det_sign_i64, rank_i64, BigInt, Sign};
use chull_geometry::predicates::{self, float};
use chull_geometry::{Point2f, Point2i, Point3f, Point3i};
use proptest::prelude::*;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let exact = a as i128 + b as i128;
        prop_assert_eq!(bi(a as i128).add(&bi(b as i128)), bi(exact));
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let exact = a as i128 * b as i128;
        prop_assert_eq!(bi(a as i128).mul(&bi(b as i128)), bi(exact));
    }

    #[test]
    fn bigint_divmod_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        let (q, r) = bi(a).divmod(&bi(b));
        prop_assert_eq!(q, bi(a / b));
        prop_assert_eq!(r, bi(a % b));
    }

    #[test]
    fn bigint_mul_div_roundtrip(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        // (a * b) / b == a even when a*b needs multiple limbs.
        let prod = bi(a).mul(&bi(b));
        prop_assert_eq!(prod.div_exact(&bi(b)), bi(a));
    }

    #[test]
    fn bigint_ordering_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
    }

    #[test]
    fn bigint_display_matches_i128(a in any::<i128>()) {
        prop_assert_eq!(bi(a).to_string(), a.to_string());
    }

    #[test]
    fn det3_sign_matches_cofactor(entries in prop::array::uniform9(-1_000_000i64..1_000_000)) {
        let m: Vec<Vec<i64>> = entries.chunks(3).map(|c| c.to_vec()).collect();
        let a = &m;
        let cof: i128 = (a[0][0] as i128)
            * ((a[1][1] as i128) * (a[2][2] as i128) - (a[1][2] as i128) * (a[2][1] as i128))
            - (a[0][1] as i128)
                * ((a[1][0] as i128) * (a[2][2] as i128) - (a[1][2] as i128) * (a[2][0] as i128))
            + (a[0][2] as i128)
                * ((a[1][0] as i128) * (a[2][1] as i128) - (a[1][1] as i128) * (a[2][0] as i128));
        prop_assert_eq!(det_sign_i64(&m).as_i32(), cof.signum() as i32);
        prop_assert_eq!(det_i64(&m), BigInt::from(cof));
    }

    #[test]
    fn det_antisymmetry_and_transpose(entries in prop::array::uniform16(-10_000i64..10_000)) {
        let m: Vec<Vec<i64>> = entries.chunks(4).map(|c| c.to_vec()).collect();
        // Swapping two rows flips the sign.
        let mut swapped = m.clone();
        swapped.swap(0, 2);
        prop_assert_eq!(det_sign_i64(&swapped), det_sign_i64(&m).negate());
        // Transpose preserves the determinant.
        let t: Vec<Vec<i64>> = (0..4).map(|j| (0..4).map(|i| m[i][j]).collect()).collect();
        prop_assert_eq!(det_sign_i64(&t), det_sign_i64(&m));
    }

    #[test]
    fn det_duplicate_row_is_zero(entries in prop::array::uniform12(-10_000i64..10_000)) {
        let m: Vec<Vec<i64>> = entries.chunks(4).map(|c| c.to_vec()).collect(); // 3x4
        let m4: Vec<Vec<i64>> = vec![m[0].clone(), m[1].clone(), m[2].clone(), m[1].clone()];
        prop_assert_eq!(det_sign_i64(&m4), Sign::Zero);
    }

    #[test]
    fn rank_bounds(entries in prop::array::uniform12(-100i64..100)) {
        let m: Vec<Vec<i64>> = entries.chunks(4).map(|c| c.to_vec()).collect(); // 3x4
        let r = rank_i64(&m);
        prop_assert!(r <= 3);
        // Appending a copy of an existing row never raises the rank.
        let mut m2 = m.clone();
        m2.push(m[0].clone());
        prop_assert_eq!(rank_i64(&m2), r);
        // Appending a scaled sum of rows never raises the rank.
        let combo: Vec<i64> =
            (0..4).map(|j| 2 * m[0][j] - 3 * m[1][j] + m[2][j]).collect();
        let mut m3 = m.clone();
        m3.push(combo);
        prop_assert_eq!(rank_i64(&m3), r);
    }

    #[test]
    fn expansion_det_matches_integer_det(entries in prop::array::uniform9(-1_000_000i64..1_000_000)) {
        // Integer-valued f64 matrices: expansion arithmetic must agree with
        // the exact integer kernel.
        let mi: Vec<Vec<i64>> = entries.chunks(3).map(|c| c.to_vec()).collect();
        let mf: Vec<Vec<f64>> = mi.iter().map(|r| r.iter().map(|&v| v as f64).collect()).collect();
        prop_assert_eq!(det_expansion(&mf).sign(), det_sign_i64(&mi).as_i32());
    }

    #[test]
    fn expansion_sum_identity(vals in prop::collection::vec(-1e12f64..1e12, 1..12)) {
        // Sum all values through expansions in two different orders: the
        // exact results must agree (associativity holds exactly).
        let fwd = vals.iter().fold(Expansion::zero(), |acc, &v| acc.add(&Expansion::from_f64(v)));
        let rev = vals.iter().rev().fold(Expansion::zero(), |acc, &v| acc.add(&Expansion::from_f64(v)));
        prop_assert_eq!(fwd.sub(&rev).sign(), 0);
    }

    #[test]
    fn orient2d_int_float_agree(
        ax in -1_000_000i64..1_000_000, ay in -1_000_000i64..1_000_000,
        bx in -1_000_000i64..1_000_000, by in -1_000_000i64..1_000_000,
        cx in -1_000_000i64..1_000_000, cy in -1_000_000i64..1_000_000,
    ) {
        let int = predicates::orient2d(
            Point2i::new(ax, ay), Point2i::new(bx, by), Point2i::new(cx, cy));
        let flt = float::orient2d(
            Point2f::new(ax as f64, ay as f64),
            Point2f::new(bx as f64, by as f64),
            Point2f::new(cx as f64, cy as f64));
        prop_assert_eq!(int.as_i32(), flt);
    }

    #[test]
    fn orient3d_int_float_agree(
        coords in prop::array::uniform12(-100_000i64..100_000),
    ) {
        let p = |i: usize| Point3i::new(coords[3*i], coords[3*i+1], coords[3*i+2]);
        let f = |i: usize| Point3f::new(coords[3*i] as f64, coords[3*i+1] as f64, coords[3*i+2] as f64);
        let int = predicates::orient3d(p(0), p(1), p(2), p(3));
        let flt = float::orient3d(f(0), f(1), f(2), f(3));
        prop_assert_eq!(int.as_i32(), flt);
    }

    #[test]
    fn incircle_int_float_agree(coords in prop::array::uniform8(-30_000i64..30_000)) {
        let p = |i: usize| Point2i::new(coords[2*i], coords[2*i+1]);
        let f = |i: usize| Point2f::new(coords[2*i] as f64, coords[2*i+1] as f64);
        let int = predicates::incircle(p(0), p(1), p(2), p(3));
        let flt = float::incircle(f(0), f(1), f(2), f(3));
        prop_assert_eq!(int.as_i32(), flt);
    }

    #[test]
    fn orient2d_permutation_parity(
        ax in -1_000i64..1_000, ay in -1_000i64..1_000,
        bx in -1_000i64..1_000, by in -1_000i64..1_000,
        cx in -1_000i64..1_000, cy in -1_000i64..1_000,
    ) {
        let (a, b, c) = (Point2i::new(ax, ay), Point2i::new(bx, by), Point2i::new(cx, cy));
        let s = predicates::orient2d(a, b, c);
        prop_assert_eq!(predicates::orient2d(b, c, a), s);
        prop_assert_eq!(predicates::orient2d(c, a, b), s);
        prop_assert_eq!(predicates::orient2d(b, a, c), s.negate());
        prop_assert_eq!(predicates::orient2d(a, c, b), s.negate());
    }

    #[test]
    fn orient2d_translation_invariant(
        ax in -100_000i64..100_000, ay in -100_000i64..100_000,
        bx in -100_000i64..100_000, by in -100_000i64..100_000,
        cx in -100_000i64..100_000, cy in -100_000i64..100_000,
        tx in -100_000i64..100_000, ty in -100_000i64..100_000,
    ) {
        let t = |x: i64, y: i64| Point2i::new(x + tx, y + ty);
        prop_assert_eq!(
            predicates::orient2d(Point2i::new(ax, ay), Point2i::new(bx, by), Point2i::new(cx, cy)),
            predicates::orient2d(t(ax, ay), t(bx, by), t(cx, cy))
        );
    }

    #[test]
    fn orientd_agrees_with_specialized(coords in prop::array::uniform12(-50_000i64..50_000)) {
        // The generic homogeneous path must match the 3D fast path.
        let rows: Vec<Vec<i64>> = coords.chunks(3).map(|c| c.to_vec()).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let generic = {
            // Bypass the dispatch by building the homogeneous matrix.
            let m: Vec<Vec<i64>> = rows.iter().map(|r| {
                let mut row = r.clone();
                row.push(1);
                row
            }).collect();
            det_sign_i64(&m)
        };
        prop_assert_eq!(predicates::orientd(3, &refs), generic);
    }
}

#[test]
fn bigint_huge_products_cross_checked() {
    // (a*b)*(c*d) computed two ways over multi-limb values.
    let a = bi(i128::MAX - 12345);
    let b = bi(i128::MIN + 999);
    let c = bi(987654321987654321);
    let d = bi(-123456789123456789);
    let left = a.mul(&b).mul(&c.mul(&d));
    let right = a.mul(&c).mul(&b.mul(&d));
    assert_eq!(left, right);
    assert_eq!(left.sign(), Sign::Positive); // neg * neg among the four
}
