//! The `hull` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message is one **frame**: a `u32` little-endian payload length
//! followed by the payload (capped at [`MAX_FRAME`] bytes; a peer sending
//! a longer prefix is protocol-broken and the connection is dropped).
//!
//! Request payloads start with an opcode byte and a `u16` LE shard id;
//! response payloads start with a status byte. Points and directions are
//! a `u8` dimension followed by that many `i64` LE coordinates.
//!
//! | opcode | request    | Ok-response body                               |
//! |-------:|------------|------------------------------------------------|
//! | `0x01` | `Insert`   | empty (insert queued for the shard's batch)     |
//! | `0x02` | `Contains` | `u8` boolean                                    |
//! | `0x03` | `Visible`  | `u32` count of visible facets (0 = inside/on)   |
//! | `0x04` | `Extreme`  | `u32` vertex id, point                          |
//! | `0x05` | `Stats`    | `u32` length + JSON utf-8                       |
//! | `0x06` | `Snapshot` | `u64` epoch, `u8` dim, points, facets           |
//! | `0x07` | `Flush`    | `u64` epoch after all prior inserts applied     |
//! | `0x08` | `Shutdown` | empty (server begins graceful shutdown)         |
//! | `0x09` | `Metrics`  | `u32` length + Prometheus text exposition utf-8 |
//! | `0x0A` | `InsertBatch` | `u32` count, per-point accepted bitmap, `u64` epoch |
//! | `0x0B` | `Hello`    | `u16` negotiated version, `u32` capability bits |
//! | `0x0C` | `ContainsScan` | `u8` boolean (same body as `Contains`)      |
//! | `0x0D` | `VisibleScan`  | `u32` count (same body as `Visible`)        |
//! | `0x0E` | `ExtremeScan`  | `u32` vertex id, point (same as `Extreme`)  |
//! | `0x0F` | `Tagged`   | status `0x05` + `u64` id + complete inner reply |
//! | `0x10` | `ReplSubscribe` | `u64` index, `u64` total, `u8` dim, packed batch |
//! | `0x11` | `ReplAck`  | `u64` lag (total − acked batches)               |
//! | `0x12` | `Mutate`   | `u32` count, per-mutation accepted bitmap, `u64` epoch |
//! | `0x13` | `ReplUnitFetch` | `u64` index, `u64` total, `u8` dim, typed unit |
//!
//! Opcodes `0x0A`–`0x0B` are **protocol v2** ([`PROTOCOL_V2`]);
//! `0x0C`–`0x0E` are **protocol v3** ([`PROTOCOL_V3`]): the `*Scan`
//! query ops answer through the linear-scan oracle path (full staged
//! scan over alive facets) instead of the history-graph descent, for
//! live A/B comparison (`hull query --scan`). Answers are bit-identical
//! to the fast ops; request/response bodies reuse the v1 encodings.
//! `InsertBatch` carries `u32` count then `count` packed points, and its
//! Ok-reply bitmap records which points were *queued* (bit clear =
//! that point hit `Overloaded` backpressure; geometric acceptance is
//! decided later by the shard worker), plus the shard's publication
//! epoch at enqueue time. `Hello` is optional and stateless: a client
//! sends its highest supported version and the server answers
//! `min(client, server)` plus capability bits ([`CAP_INSERT_BATCH`]).
//! A v1 client that never sends `Hello` sees byte-for-byte v1 behavior;
//! the server accepts v2 ops with or without a preceding `Hello`.
//!
//! Opcode `0x0F` is **protocol v4** ([`PROTOCOL_V4`]): request
//! **pipelining** with correlation ids. A `Tagged` request wraps any
//! other request (never another `Tagged`) with a client-chosen `u64`
//! id; the reply comes back as a `Tagged` response (status `0x05`)
//! carrying the same id around the complete inner reply. Tagged frames
//! on one connection may be answered **out of order** — the id, not
//! arrival position, correlates replies — so a client can keep many
//! requests in flight on one socket. Untagged frames keep the strict
//! v1 contract: on any single connection they are executed and answered
//! in arrival order, one at a time. `Tagged` wraps outermost on the
//! response side: `Tagged(id, Degraded(g, inner))` is legal,
//! `Degraded(g, Tagged(..))` is not.
//!
//! Opcodes `0x10`–`0x11` are **protocol v5** ([`PROTOCOL_V5`],
//! [`CAP_REPLICATION`]): **journal shipping** between nodes. Replication
//! is *pull-based* so it works unchanged through both request/reply
//! front ends: a follower sends `ReplSubscribe { shard, from_index }`
//! and the primary answers with the journal **batch unit** at that
//! index (the atomic unit of S17 — one journal marker, one epoch) plus
//! the primary's current batch total; an empty batch with
//! `index == total` means "caught up, poll again". `ReplAck { shard,
//! index }` tells the primary the follower has durably applied every
//! batch below `index`; the primary answers the follower's current lag
//! and feeds the `chull_replica_*` gauges. Order-independence
//! (Theorem 4.2) is what makes this safe without consensus: batches may
//! be re-fetched after a dropped or duplicated shipment and applied in
//! any interleaving — the follower skips indices it already holds and
//! the hull converges bit-identical regardless.
//!
//! Status `0x06` (`Stale`) is the v5 read-side wrapper: a follower
//! serving a read while `lag` batch units behind its primary wraps the
//! answer as `Stale { lag, inner }` — the epoch-staleness bound
//! surfaced in-band, exactly as `Degraded` surfaces recovery windows.
//! Wrapper order is fixed: `Tagged` ⊃ `Stale` ⊃ `Degraded` ⊃ plain;
//! any other nesting is a decode error, and no wrapper nests in itself.
//!
//! Opcodes `0x12`–`0x13` are **protocol v6** ([`PROTOCOL_V6`],
//! [`CAP_MUTATION`]): the **unified mutation envelope** and **typed
//! journal-unit replication**. `Mutate` carries a heterogeneous list of
//! [`Mutation`] ops — inserts, deletes, and window expirations — that
//! the shard worker applies as *one* journal unit (one marker, one
//! epoch); its Ok-reply mirrors `InsertedBatch`: a bitmap of which
//! mutations entered the queue plus the enqueue-time epoch. A batch of
//! pure inserts sent through `Mutate` is behaviorally identical to
//! `InsertBatch` — the old op stays bit-for-bit as the v2 shim.
//! `ReplUnitFetch` is `ReplSubscribe` generalized to typed units: the
//! reply is a [`ReplUnit`] that is either `Ops` (inserts + tombstones,
//! the v6 superset of the flat v5 batch) or `Checkpoint` (a survivor
//! set that *replaces* the follower's shard state — how rebuilds from
//! windowed/deleted shards replicate without shipping history).
//! Tombstone- or checkpoint-bearing journals cannot ship over the flat
//! v5 op; the primary answers those `ReplSubscribe` pulls with an
//! error telling the follower to upgrade.
//!
//! From v6 on, the per-op admission data — minimum version, capability
//! bit, pipeline-wrappability, write-path flag — lives in one place:
//! the [`OP_TABLE`] registry. The server's `Hello` capability mask is
//! [`server_caps`] (the OR of every registered bit) rather than a
//! hand-maintained constant.
//!
//! Non-Ok statuses: `Overloaded` (ingest queue full — retry), `NotReady`
//! (shard still bootstrapping its seed simplex), `Error` (+ utf-8 text),
//! and `Degraded` (`u32` recovery generation + a complete nested
//! response): the shard's worker died and is replaying its journal, and
//! the enclosed answer was served from the last good snapshot.
//!
//! **No decode path panics.** Every malformed byte sequence yields a
//! typed [`WireError`]; the only panics left in this module are
//! invariant violations on the *encode* side (a response we built
//! ourselves exceeding [`MAX_FRAME`] is a bug, not input).

use chull_concurrent::failpoint::{self, sites, FaultAction};
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload (16 MiB — a full snapshot of a large
/// shard stays well under this; anything bigger is a broken peer).
pub const MAX_FRAME: usize = 16 << 20;

/// Shard id meaning "aggregate over all shards" (Stats only).
pub const ALL_SHARDS: u16 = u16::MAX;

/// The original protocol: single-point inserts, no handshake.
pub const PROTOCOL_V1: u16 = 1;
/// Adds the `Hello` handshake and batched inserts (`InsertBatch`).
pub const PROTOCOL_V2: u16 = 2;
/// Adds the linear-scan query ops (`ContainsScan`/`VisibleScan`/
/// `ExtremeScan`) — runtime A/B oracles for the sublinear read path.
pub const PROTOCOL_V3: u16 = 3;
/// Adds `Tagged` correlation-id frames: pipelined, possibly
/// out-of-order replies on one connection.
pub const PROTOCOL_V4: u16 = 4;
/// Adds the replication ops (`ReplSubscribe`/`ReplAck`) and the
/// `Stale` staleness wrapper on follower reads.
pub const PROTOCOL_V5: u16 = 5;
/// Adds the unified `Mutate` envelope (insert/delete/expire in one
/// frame, one journal unit) and typed-unit replication
/// (`ReplUnitFetch` shipping ops or checkpoints).
pub const PROTOCOL_V6: u16 = 6;
/// Capability bit: the server accepts `InsertBatch` frames.
pub const CAP_INSERT_BATCH: u32 = 1;
/// Capability bit: the server accepts the `*Scan` query ops.
pub const CAP_SCAN_QUERIES: u32 = 2;
/// Capability bit: the server accepts `Tagged` (pipelined) frames.
pub const CAP_PIPELINE: u32 = 4;
/// Capability bit: the server ships journal batch units to
/// subscribers (`ReplSubscribe`/`ReplAck`).
pub const CAP_REPLICATION: u32 = 8;
/// Capability bit: the server accepts `Mutate` envelopes (deletes and
/// window expirations) and ships typed units via `ReplUnitFetch`.
pub const CAP_MUTATION: u32 = 16;

/// The version a server answers to a client advertising `client_max`:
/// the highest both sides speak (never below [`PROTOCOL_V1`] — a
/// client advertising 0 is treated as v1).
pub fn negotiate(client_max: u16) -> u16 {
    client_max.clamp(PROTOCOL_V1, PROTOCOL_V6)
}

const OP_INSERT: u8 = 0x01;
const OP_CONTAINS: u8 = 0x02;
const OP_VISIBLE: u8 = 0x03;
const OP_EXTREME: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_SNAPSHOT: u8 = 0x06;
const OP_FLUSH: u8 = 0x07;
const OP_SHUTDOWN: u8 = 0x08;
const OP_METRICS: u8 = 0x09;
const OP_INSERT_BATCH: u8 = 0x0A;
const OP_HELLO: u8 = 0x0B;
const OP_CONTAINS_SCAN: u8 = 0x0C;
const OP_VISIBLE_SCAN: u8 = 0x0D;
const OP_EXTREME_SCAN: u8 = 0x0E;
const OP_TAGGED: u8 = 0x0F;
const OP_REPL_SUBSCRIBE: u8 = 0x10;
const OP_REPL_ACK: u8 = 0x11;
const OP_MUTATE: u8 = 0x12;
const OP_REPL_UNIT: u8 = 0x13;

// Mutation tags inside a `Mutate` envelope.
const MUT_INSERT: u8 = 0;
const MUT_DELETE: u8 = 1;
const MUT_EXPIRE: u8 = 2;

// ReplUnit kind tags inside a `ReplUnit` reply.
const UNIT_OPS: u8 = 0;
const UNIT_CHECKPOINT: u8 = 1;

/// One wire op's registry row: the admission data the server and
/// router consult — which protocol version introduced the op, which
/// capability bit advertises it, whether it may ride inside a `Tagged`
/// pipeline wrapper, and whether it takes the journaled write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpSpec {
    /// The opcode byte.
    pub code: u8,
    /// Stable label, used for the `op="..."` metric series.
    pub name: &'static str,
    /// First protocol version that includes the op.
    pub min_version: u16,
    /// Capability bit advertising the op in `Hello` (0 = always on).
    pub cap: u32,
    /// May the op be wrapped in a `Tagged` pipeline frame?
    pub wrappable: bool,
    /// Does the op mutate shard state (journaled write path)?
    pub write: bool,
}

/// The op registry, in opcode order. Growing the protocol means adding
/// a row here plus the codec arms; the server capability mask
/// ([`server_caps`]) and per-op admission checks derive from this
/// table instead of hand-maintained constants scattered across layers.
pub const OP_TABLE: &[OpSpec] = &[
    OpSpec {
        code: OP_INSERT,
        name: "insert",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: true,
    },
    OpSpec {
        code: OP_CONTAINS,
        name: "contains",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_VISIBLE,
        name: "visible",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_EXTREME,
        name: "extreme",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_STATS,
        name: "stats",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_SNAPSHOT,
        name: "snapshot",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_FLUSH,
        name: "flush",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: true,
    },
    OpSpec {
        code: OP_SHUTDOWN,
        name: "shutdown",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_METRICS,
        name: "metrics",
        min_version: PROTOCOL_V1,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_INSERT_BATCH,
        name: "insert_batch",
        min_version: PROTOCOL_V2,
        cap: CAP_INSERT_BATCH,
        wrappable: true,
        write: true,
    },
    OpSpec {
        code: OP_HELLO,
        name: "hello",
        min_version: PROTOCOL_V2,
        cap: 0,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_CONTAINS_SCAN,
        name: "contains_scan",
        min_version: PROTOCOL_V3,
        cap: CAP_SCAN_QUERIES,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_VISIBLE_SCAN,
        name: "visible_scan",
        min_version: PROTOCOL_V3,
        cap: CAP_SCAN_QUERIES,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_EXTREME_SCAN,
        name: "extreme_scan",
        min_version: PROTOCOL_V3,
        cap: CAP_SCAN_QUERIES,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_TAGGED,
        name: "tagged",
        min_version: PROTOCOL_V4,
        cap: CAP_PIPELINE,
        wrappable: false,
        write: false,
    },
    OpSpec {
        code: OP_REPL_SUBSCRIBE,
        name: "repl_subscribe",
        min_version: PROTOCOL_V5,
        cap: CAP_REPLICATION,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_REPL_ACK,
        name: "repl_ack",
        min_version: PROTOCOL_V5,
        cap: CAP_REPLICATION,
        wrappable: true,
        write: false,
    },
    OpSpec {
        code: OP_MUTATE,
        name: "mutate",
        min_version: PROTOCOL_V6,
        cap: CAP_MUTATION,
        wrappable: true,
        write: true,
    },
    OpSpec {
        code: OP_REPL_UNIT,
        name: "repl_unit",
        min_version: PROTOCOL_V6,
        cap: CAP_MUTATION,
        wrappable: true,
        write: false,
    },
];

/// Look up the registry row for an opcode byte.
pub fn op_spec(code: u8) -> Option<&'static OpSpec> {
    OP_TABLE.iter().find(|s| s.code == code)
}

/// The capability mask a server advertises in `Hello`: the OR of every
/// registered op's bit. Derived, so a new registry row is advertised
/// automatically.
pub fn server_caps() -> u32 {
    OP_TABLE.iter().fold(0, |m, s| m | s.cap)
}

const ST_OK: u8 = 0x00;
const ST_OVERLOADED: u8 = 0x01;
const ST_NOT_READY: u8 = 0x02;
const ST_ERROR: u8 = 0x03;
const ST_DEGRADED: u8 = 0x04;
const ST_TAGGED: u8 = 0x05;
const ST_STALE: u8 = 0x06;

/// Why a frame payload failed to decode. Typed so callers can reply
/// with a precise error status (and tests can assert on the cause)
/// instead of fishing through strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field: needed `need` bytes at
    /// `offset`, only `have` remained.
    Truncated {
        /// Bytes the next field needed.
        need: usize,
        /// Offset the read started at.
        offset: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Bytes left over after a complete message.
    Trailing(usize),
    /// Point/direction/snapshot dimension outside `2..=MAX_DIM`.
    BadDim(usize),
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Unknown Ok-body tag.
    BadTag(u8),
    /// A declared length would exceed the frame cap.
    Oversized(usize),
    /// Text field was not valid UTF-8.
    BadUtf8(&'static str),
    /// A `Degraded` response nested inside another `Degraded`.
    NestedDegraded,
    /// A `Tagged` frame nested inside another `Tagged` (or inside a
    /// `Degraded` wrapper, which `Tagged` must enclose, not ride in).
    NestedTagged,
    /// A `Stale` wrapper nested inside another `Stale` (or inside a
    /// `Degraded`, which `Stale` must enclose, not ride in).
    NestedStale,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { need, offset, have } => write!(
                f,
                "truncated frame: need {need} bytes at offset {offset}, have {have}"
            ),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadDim(d) => write!(f, "dimension {d} out of range"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadStatus(st) => write!(f, "unknown status byte {st:#04x}"),
            WireError::BadTag(t) => write!(f, "unknown Ok-body tag {t:#04x}"),
            WireError::Oversized(n) => write!(f, "declared length {n} exceeds frame cap"),
            WireError::BadUtf8(what) => write!(f, "{what} not utf-8"),
            WireError::NestedDegraded => write!(f, "Degraded response nested in Degraded"),
            WireError::NestedTagged => write!(f, "Tagged frame nested inside another wrapper"),
            WireError::NestedStale => write!(f, "Stale wrapper nested where it may not ride"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// One op inside a v6 `Mutate` envelope. A mixed list of these is
/// applied by the shard worker as one journal unit (one marker, one
/// epoch bump), so a delete and the insert that replaces it commit or
/// replay together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Insert one point (same semantics as `Insert`/`InsertBatch`).
    Insert(Vec<i64>),
    /// Tombstone one live copy of the point (oldest arrival first).
    /// A miss — deleting a point that is not live — is counted and
    /// ignored, never an error: deletes are idempotent under replay.
    Delete(Vec<i64>),
    /// Expire the `n` oldest live points (explicit window advance; the
    /// serve-side window policy issues these implicitly).
    Expire(u32),
}

/// One typed journal unit shipped to a v6 replication subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplUnit {
    /// A normal unit: the inserts and tombstones journaled together
    /// under one marker. The flat v5 batch is the `tombstones: []`
    /// special case.
    Ops {
        /// Rows inserted by the unit, journal order.
        inserts: Vec<Vec<i64>>,
        /// Rows tombstoned by the unit (delete or window expiry).
        tombstones: Vec<Vec<i64>>,
    },
    /// A rebuild checkpoint: the follower must *replace* its shard
    /// state with `survivors` and resume pulling at `units_after`.
    /// Shipped when the primary compacts (tombstone-ratio or
    /// journal-ratio rebuild), so followers skip the dead history.
    Checkpoint {
        /// The primary's batch-unit count right after the checkpoint
        /// (the follower's next `from_index`).
        units_after: u64,
        /// The live rows the rebuilt hull was constructed from.
        survivors: Vec<Vec<i64>>,
    },
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Queue one point for insertion into `shard`'s hull.
    Insert {
        /// Target shard.
        shard: u16,
        /// The point's coordinates.
        point: Vec<i64>,
    },
    /// Is the point inside (or on) `shard`'s current hull snapshot?
    Contains {
        /// Target shard.
        shard: u16,
        /// The query point.
        point: Vec<i64>,
    },
    /// How many hull facets are visible from the point?
    Visible {
        /// Target shard.
        shard: u16,
        /// The query point.
        point: Vec<i64>,
    },
    /// The hull vertex extreme in a direction.
    Extreme {
        /// Target shard.
        shard: u16,
        /// The direction to maximize.
        direction: Vec<i64>,
    },
    /// Service counters as JSON ([`ALL_SHARDS`] aggregates).
    Stats {
        /// Target shard, or [`ALL_SHARDS`].
        shard: u16,
    },
    /// The shard's current points and hull facets.
    Snapshot {
        /// Target shard.
        shard: u16,
    },
    /// Barrier: returns once every insert enqueued before it is applied.
    Flush {
        /// Target shard.
        shard: u16,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
    /// The telemetry registry as Prometheus text exposition.
    Metrics,
    /// Queue a whole batch of points for `shard` in one frame (v2).
    InsertBatch {
        /// Target shard.
        shard: u16,
        /// The points, applied by the shard worker as one parallel
        /// batch insert (one journal unit, one epoch).
        points: Vec<Vec<i64>>,
    },
    /// Version/capability handshake (v2; optional and stateless).
    Hello {
        /// Highest protocol version the client speaks.
        max_version: u16,
    },
    /// [`Request::Contains`] answered via the linear-scan oracle (v3):
    /// full staged scan over alive facets, no history descent. Same
    /// answer, used for live A/B.
    ContainsScan {
        /// Target shard.
        shard: u16,
        /// The query point.
        point: Vec<i64>,
    },
    /// [`Request::Visible`] via the linear-scan oracle (v3).
    VisibleScan {
        /// Target shard.
        shard: u16,
        /// The query point.
        point: Vec<i64>,
    },
    /// [`Request::Extreme`] via the per-query vertex re-derivation
    /// baseline (v3), bypassing the snapshot's cached vertex list.
    ExtremeScan {
        /// Target shard.
        shard: u16,
        /// The direction to maximize.
        direction: Vec<i64>,
    },
    /// A pipelined request (v4): the reply will be a
    /// [`Response::Tagged`] carrying the same `id`, possibly out of
    /// order with other tagged replies on the connection. The inner
    /// request may be anything except another `Tagged`.
    Tagged {
        /// Client-chosen correlation id, echoed on the reply.
        id: u64,
        /// The request being pipelined.
        inner: Box<Request>,
    },
    /// Pull one journal batch unit from `shard`'s replication log (v5).
    /// The reply is the batch at `from_index` (or an empty
    /// [`Response::ReplBatch`] with `index == total` when caught up).
    ReplSubscribe {
        /// Source shard on the primary.
        shard: u16,
        /// Index of the first batch unit the subscriber still needs —
        /// its own applied batch count, which makes
        /// resubscribe-with-resume a plain reconnect.
        from_index: u64,
    },
    /// Tell the primary every batch unit below `index` is durably
    /// applied on this subscriber (v5); drives the replica lag gauges.
    ReplAck {
        /// Source shard on the primary.
        shard: u16,
        /// One past the highest batch unit applied by the subscriber.
        index: u64,
    },
    /// Apply a mixed mutation list to `shard` as one journal unit
    /// (v6). Subsumes `Insert`/`InsertBatch` — a pure-insert envelope
    /// behaves exactly like the old batch op.
    Mutate {
        /// Target shard.
        shard: u16,
        /// The mutations, applied in list order within one unit.
        muts: Vec<Mutation>,
    },
    /// Pull one *typed* journal unit from `shard`'s replication log
    /// (v6). Unlike `ReplSubscribe`, the reply can carry tombstones or
    /// a rebuild checkpoint, and after a compaction the answered index
    /// may be *behind* `from_index` (the checkpoint the follower must
    /// reset to).
    ReplUnitFetch {
        /// Source shard on the primary.
        shard: u16,
        /// Index of the first unit the subscriber still needs.
        from_index: u64,
    },
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Insert accepted into the shard's ingest queue.
    Inserted,
    /// Boolean answer (Contains).
    Bool(bool),
    /// Number of visible facets (Visible).
    VisibleCount(u32),
    /// Extreme vertex: id within the shard and its coordinates.
    Extreme {
        /// Vertex id in the shard's insertion order.
        vertex: u32,
        /// The vertex coordinates.
        coords: Vec<i64>,
    },
    /// Service counters as a JSON line.
    Stats(String),
    /// Epoch-stamped shard contents.
    Snapshot {
        /// Snapshot epoch (batches applied so far).
        epoch: u64,
        /// Dimension.
        dim: usize,
        /// Flat coordinates, `dim` per point, insertion order.
        points: Vec<i64>,
        /// Flat facet vertex ids, `dim` per facet.
        facets: Vec<u32>,
    },
    /// Flush barrier passed at this epoch.
    Flushed {
        /// Epoch after the barrier.
        epoch: u64,
    },
    /// Server acknowledges shutdown.
    ShuttingDown,
    /// Prometheus text exposition of the telemetry registry.
    Metrics(String),
    /// Batch enqueue outcome (v2): which points were queued, and the
    /// shard's publication epoch observed at enqueue time.
    InsertedBatch {
        /// `accepted[i]` iff point `i` entered the ingest queue (a
        /// clear bit means that point was dropped by backpressure and
        /// should be retried); geometric extremeness is decided later
        /// by the shard worker.
        accepted: Vec<bool>,
        /// Snapshot epoch when the batch was enqueued.
        epoch: u64,
    },
    /// Handshake answer (v2): the negotiated version and capabilities.
    Hello {
        /// `min(client max, server max)`, at least [`PROTOCOL_V1`].
        version: u16,
        /// Capability bits ([`CAP_INSERT_BATCH`], ...).
        caps: u32,
    },
    /// Ingest queue full — backpressure; retry later.
    Overloaded,
    /// Shard has fewer than `d + 1` affinely independent points.
    NotReady,
    /// The shard's worker is recovering (generation counts recoveries);
    /// the nested response was served from the last good snapshot.
    Degraded {
        /// Shard recovery generation (how many workers have died).
        generation: u32,
        /// The answer, served from the last published snapshot.
        inner: Box<Response>,
    },
    /// The reply to a [`Request::Tagged`] (v4): the request's
    /// correlation id around the complete inner response. Always the
    /// outermost wrapper (a `Degraded` inner is legal; another
    /// `Tagged` is not).
    Tagged {
        /// The correlation id from the request.
        id: u64,
        /// The answer to the wrapped request.
        inner: Box<Response>,
    },
    /// One journal batch unit (v5 reply to [`Request::ReplSubscribe`]).
    /// An empty `points` with `index == total` means the subscriber is
    /// caught up and should poll again.
    ReplBatch {
        /// Index of this batch unit in the shard's journal.
        index: u64,
        /// The shard's total batch count at reply time — the
        /// subscriber's staleness bound is `total - applied`.
        total: u64,
        /// Dimension.
        dim: usize,
        /// Flat coordinates, `dim` per point, journal order.
        points: Vec<i64>,
    },
    /// Ack accepted (v5 reply to [`Request::ReplAck`]).
    ReplAcked {
        /// Batch units the subscriber still trails by, as seen by the
        /// primary (`total - acked index`, saturating).
        lag: u64,
    },
    /// Mutation envelope outcome (v6): which mutations were queued,
    /// and the shard's publication epoch at enqueue time. The bitmap
    /// is positional over the request's mutation list, exactly as
    /// `InsertedBatch` is over its point list.
    Mutated {
        /// `accepted[i]` iff mutation `i` entered the ingest queue (a
        /// clear bit means backpressure — retry that mutation).
        accepted: Vec<bool>,
        /// Snapshot epoch when the envelope was enqueued.
        epoch: u64,
    },
    /// One typed journal unit (v6 reply to [`Request::ReplUnitFetch`]).
    /// An empty `Ops` unit with `index == total` means caught up.
    ReplUnit {
        /// Index of this unit in the shard's (possibly checkpointed)
        /// replication log. May be below the requested `from_index`
        /// when the unit is a checkpoint the follower must reset to.
        index: u64,
        /// The shard's total unit count at reply time.
        total: u64,
        /// Dimension.
        dim: usize,
        /// The unit itself.
        unit: ReplUnit,
    },
    /// The answer was served by a follower `lag` batch units behind
    /// its replication source (v5): the epoch-staleness bound,
    /// surfaced in-band. Wrapper order: `Tagged` ⊃ `Stale` ⊃
    /// `Degraded` ⊃ plain.
    Stale {
        /// Batch units the serving follower trails its primary by.
        lag: u64,
        /// The answer, served from the follower's latest snapshot.
        inner: Box<Response>,
    },
    /// Request failed.
    Error(String),
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_point(out: &mut Vec<u8>, p: &[i64]) {
    out.push(p.len() as u8);
    for &c in p {
        out.extend_from_slice(&c.to_le_bytes());
    }
}
/// `u32` count, then dim-less flat rows (the envelope carries `dim`).
fn put_rows(out: &mut Vec<u8>, rows: &[Vec<i64>]) {
    put_u32(out, rows.len() as u32);
    for p in rows {
        for &c in p {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
}
/// LSB-first accept bitmap: bit `i` lives at byte `i/8`, bit `i%8`.
fn put_bitmap(out: &mut Vec<u8>, bits: &[bool]) {
    put_u32(out, bits.len() as u32);
    let mut byte = 0u8;
    for (i, &a) in bits.iter().enumerate() {
        if a {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// Byte-slice cursor for decoding; every read is bounds-checked so a
/// malformed frame yields a [`WireError`], never a panic (no `unwrap`
/// anywhere on this path — fixed-size reads build their arrays by
/// index, which the preceding bounds check makes infallible).
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.at + n > self.buf.len() {
            return Err(WireError::Truncated {
                need: n,
                offset: self.at,
                have: self.buf.len() - self.at,
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }
    fn point(&mut self) -> Result<Vec<i64>, WireError> {
        let d = self.u8()? as usize;
        if !(2..=chull_core::facet::MAX_DIM).contains(&d) {
            return Err(WireError::BadDim(d));
        }
        (0..d).map(|_| self.i64()).collect()
    }
    /// A declared element count must fit in the remaining payload, so a
    /// forged header cannot make us reserve gigabytes.
    fn checked_count(&self, n: usize, elem_bytes: usize) -> Result<usize, WireError> {
        if n.saturating_mul(elem_bytes) > self.buf.len() - self.at {
            return Err(WireError::Oversized(n * elem_bytes));
        }
        Ok(n)
    }
    /// `u32` count then that many dim-less flat rows of `dim` coords.
    fn rows(&mut self, dim: usize) -> Result<Vec<Vec<i64>>, WireError> {
        let declared = self.u32()? as usize;
        let n = self.checked_count(declared, dim * 8)?;
        (0..n)
            .map(|_| (0..dim).map(|_| self.i64()).collect())
            .collect()
    }
    /// `u32` count then an LSB-first bitmap of that many bits.
    fn bitmap(&mut self) -> Result<Vec<bool>, WireError> {
        let declared = self.u32()? as usize;
        // take() bounds-checks the bitmap before the Vec is sized, so
        // a forged count cannot over-allocate.
        let bits = self.take(declared.div_ceil(8))?;
        Ok((0..declared)
            .map(|i| bits[i / 8] >> (i % 8) & 1 != 0)
            .collect())
    }
    fn done(&self) -> Result<(), WireError> {
        if self.at != self.buf.len() {
            return Err(WireError::Trailing(self.buf.len() - self.at));
        }
        Ok(())
    }
}

impl Request {
    /// The opcode byte this request serializes under.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Insert { .. } => OP_INSERT,
            Request::Contains { .. } => OP_CONTAINS,
            Request::Visible { .. } => OP_VISIBLE,
            Request::Extreme { .. } => OP_EXTREME,
            Request::Stats { .. } => OP_STATS,
            Request::Snapshot { .. } => OP_SNAPSHOT,
            Request::Flush { .. } => OP_FLUSH,
            Request::Shutdown => OP_SHUTDOWN,
            Request::Metrics => OP_METRICS,
            Request::InsertBatch { .. } => OP_INSERT_BATCH,
            Request::Hello { .. } => OP_HELLO,
            Request::ContainsScan { .. } => OP_CONTAINS_SCAN,
            Request::VisibleScan { .. } => OP_VISIBLE_SCAN,
            Request::ExtremeScan { .. } => OP_EXTREME_SCAN,
            Request::Tagged { .. } => OP_TAGGED,
            Request::ReplSubscribe { .. } => OP_REPL_SUBSCRIBE,
            Request::ReplAck { .. } => OP_REPL_ACK,
            Request::Mutate { .. } => OP_MUTATE,
            Request::ReplUnitFetch { .. } => OP_REPL_UNIT,
        }
    }

    /// The registry row for this request's op (every variant has one).
    pub fn spec(&self) -> &'static OpSpec {
        op_spec(self.opcode()).expect("every Request variant is registered in OP_TABLE")
    }

    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Request::Insert { shard, point } => {
                out.push(OP_INSERT);
                put_u16(&mut out, *shard);
                put_point(&mut out, point);
            }
            Request::Contains { shard, point } => {
                out.push(OP_CONTAINS);
                put_u16(&mut out, *shard);
                put_point(&mut out, point);
            }
            Request::Visible { shard, point } => {
                out.push(OP_VISIBLE);
                put_u16(&mut out, *shard);
                put_point(&mut out, point);
            }
            Request::Extreme { shard, direction } => {
                out.push(OP_EXTREME);
                put_u16(&mut out, *shard);
                put_point(&mut out, direction);
            }
            Request::Stats { shard } => {
                out.push(OP_STATS);
                put_u16(&mut out, *shard);
            }
            Request::Snapshot { shard } => {
                out.push(OP_SNAPSHOT);
                put_u16(&mut out, *shard);
            }
            Request::Flush { shard } => {
                out.push(OP_FLUSH);
                put_u16(&mut out, *shard);
            }
            Request::Shutdown => {
                out.push(OP_SHUTDOWN);
                put_u16(&mut out, 0);
            }
            Request::Metrics => {
                out.push(OP_METRICS);
                put_u16(&mut out, 0);
            }
            Request::InsertBatch { shard, points } => {
                out.push(OP_INSERT_BATCH);
                put_u16(&mut out, *shard);
                put_u32(&mut out, points.len() as u32);
                for p in points {
                    put_point(&mut out, p);
                }
            }
            Request::Hello { max_version } => {
                out.push(OP_HELLO);
                put_u16(&mut out, 0);
                put_u16(&mut out, *max_version);
            }
            Request::ContainsScan { shard, point } => {
                out.push(OP_CONTAINS_SCAN);
                put_u16(&mut out, *shard);
                put_point(&mut out, point);
            }
            Request::VisibleScan { shard, point } => {
                out.push(OP_VISIBLE_SCAN);
                put_u16(&mut out, *shard);
                put_point(&mut out, point);
            }
            Request::ExtremeScan { shard, direction } => {
                out.push(OP_EXTREME_SCAN);
                put_u16(&mut out, *shard);
                put_point(&mut out, direction);
            }
            Request::Tagged { id, inner } => {
                assert!(
                    !matches!(**inner, Request::Tagged { .. }),
                    "invariant: Tagged requests never nest"
                );
                out.push(OP_TAGGED);
                put_u16(&mut out, 0);
                put_u64(&mut out, *id);
                out.extend_from_slice(&inner.encode());
            }
            Request::ReplSubscribe { shard, from_index } => {
                out.push(OP_REPL_SUBSCRIBE);
                put_u16(&mut out, *shard);
                put_u64(&mut out, *from_index);
            }
            Request::ReplAck { shard, index } => {
                out.push(OP_REPL_ACK);
                put_u16(&mut out, *shard);
                put_u64(&mut out, *index);
            }
            Request::Mutate { shard, muts } => {
                out.push(OP_MUTATE);
                put_u16(&mut out, *shard);
                put_u32(&mut out, muts.len() as u32);
                for m in muts {
                    match m {
                        Mutation::Insert(p) => {
                            out.push(MUT_INSERT);
                            put_point(&mut out, p);
                        }
                        Mutation::Delete(p) => {
                            out.push(MUT_DELETE);
                            put_point(&mut out, p);
                        }
                        Mutation::Expire(n) => {
                            out.push(MUT_EXPIRE);
                            put_u32(&mut out, *n);
                        }
                    }
                }
            }
            Request::ReplUnitFetch { shard, from_index } => {
                out.push(OP_REPL_UNIT);
                put_u16(&mut out, *shard);
                put_u64(&mut out, *from_index);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Request, WireError> {
        let mut c = Cursor::new(buf);
        let req = Self::decode_at(&mut c, true)?;
        c.done()?;
        Ok(req)
    }

    fn decode_at(c: &mut Cursor<'_>, allow_tagged: bool) -> Result<Request, WireError> {
        let op = c.u8()?;
        let shard = c.u16()?;
        let req = match op {
            OP_INSERT => Request::Insert {
                shard,
                point: c.point()?,
            },
            OP_CONTAINS => Request::Contains {
                shard,
                point: c.point()?,
            },
            OP_VISIBLE => Request::Visible {
                shard,
                point: c.point()?,
            },
            OP_EXTREME => Request::Extreme {
                shard,
                direction: c.point()?,
            },
            OP_STATS => Request::Stats { shard },
            OP_SNAPSHOT => Request::Snapshot { shard },
            OP_FLUSH => Request::Flush { shard },
            OP_SHUTDOWN => Request::Shutdown,
            OP_METRICS => Request::Metrics,
            OP_INSERT_BATCH => {
                let declared = c.u32()? as usize;
                // Smallest wire point: 1 dim byte + 2 × i64 coords.
                let n = c.checked_count(declared, 17)?;
                let points = (0..n).map(|_| c.point()).collect::<Result<Vec<_>, _>>()?;
                Request::InsertBatch { shard, points }
            }
            OP_HELLO => Request::Hello {
                max_version: c.u16()?,
            },
            OP_CONTAINS_SCAN => Request::ContainsScan {
                shard,
                point: c.point()?,
            },
            OP_VISIBLE_SCAN => Request::VisibleScan {
                shard,
                point: c.point()?,
            },
            OP_EXTREME_SCAN => Request::ExtremeScan {
                shard,
                direction: c.point()?,
            },
            OP_TAGGED => {
                if !allow_tagged {
                    return Err(WireError::NestedTagged);
                }
                let id = c.u64()?;
                Request::Tagged {
                    id,
                    inner: Box::new(Self::decode_at(c, false)?),
                }
            }
            OP_REPL_SUBSCRIBE => Request::ReplSubscribe {
                shard,
                from_index: c.u64()?,
            },
            OP_REPL_ACK => Request::ReplAck {
                shard,
                index: c.u64()?,
            },
            OP_MUTATE => {
                let declared = c.u32()? as usize;
                // Smallest wire mutation: 1 tag byte + u32 expire count.
                let n = c.checked_count(declared, 5)?;
                let muts = (0..n)
                    .map(|_| {
                        Ok(match c.u8()? {
                            MUT_INSERT => Mutation::Insert(c.point()?),
                            MUT_DELETE => Mutation::Delete(c.point()?),
                            MUT_EXPIRE => Mutation::Expire(c.u32()?),
                            other => return Err(WireError::BadTag(other)),
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Request::Mutate { shard, muts }
            }
            OP_REPL_UNIT => Request::ReplUnitFetch {
                shard,
                from_index: c.u64()?,
            },
            other => return Err(WireError::BadOpcode(other)),
        };
        Ok(req)
    }
}

impl Response {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            Response::Inserted => {
                out.push(ST_OK);
                out.push(OP_INSERT);
            }
            Response::Bool(b) => {
                out.push(ST_OK);
                out.push(OP_CONTAINS);
                out.push(*b as u8);
            }
            Response::VisibleCount(n) => {
                out.push(ST_OK);
                out.push(OP_VISIBLE);
                put_u32(&mut out, *n);
            }
            Response::Extreme { vertex, coords } => {
                out.push(ST_OK);
                out.push(OP_EXTREME);
                put_u32(&mut out, *vertex);
                put_point(&mut out, coords);
            }
            Response::Stats(json) => {
                out.push(ST_OK);
                out.push(OP_STATS);
                put_u32(&mut out, json.len() as u32);
                out.extend_from_slice(json.as_bytes());
            }
            Response::Snapshot {
                epoch,
                dim,
                points,
                facets,
            } => {
                out.push(ST_OK);
                out.push(OP_SNAPSHOT);
                put_u64(&mut out, *epoch);
                out.push(*dim as u8);
                put_u32(&mut out, (points.len() / dim) as u32);
                for &c in points {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                put_u32(&mut out, (facets.len() / dim) as u32);
                for &v in facets {
                    put_u32(&mut out, v);
                }
            }
            Response::Flushed { epoch } => {
                out.push(ST_OK);
                out.push(OP_FLUSH);
                put_u64(&mut out, *epoch);
            }
            Response::ShuttingDown => {
                out.push(ST_OK);
                out.push(OP_SHUTDOWN);
            }
            Response::Metrics(text) => {
                out.push(ST_OK);
                out.push(OP_METRICS);
                put_u32(&mut out, text.len() as u32);
                out.extend_from_slice(text.as_bytes());
            }
            Response::InsertedBatch { accepted, epoch } => {
                out.push(ST_OK);
                out.push(OP_INSERT_BATCH);
                put_bitmap(&mut out, accepted);
                put_u64(&mut out, *epoch);
            }
            Response::Mutated { accepted, epoch } => {
                out.push(ST_OK);
                out.push(OP_MUTATE);
                put_bitmap(&mut out, accepted);
                put_u64(&mut out, *epoch);
            }
            Response::Hello { version, caps } => {
                out.push(ST_OK);
                out.push(OP_HELLO);
                put_u16(&mut out, *version);
                put_u32(&mut out, *caps);
            }
            Response::ReplBatch {
                index,
                total,
                dim,
                points,
            } => {
                out.push(ST_OK);
                out.push(OP_REPL_SUBSCRIBE);
                put_u64(&mut out, *index);
                put_u64(&mut out, *total);
                out.push(*dim as u8);
                put_u32(&mut out, (points.len() / dim) as u32);
                for &c in points {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
            Response::ReplAcked { lag } => {
                out.push(ST_OK);
                out.push(OP_REPL_ACK);
                put_u64(&mut out, *lag);
            }
            Response::ReplUnit {
                index,
                total,
                dim,
                unit,
            } => {
                out.push(ST_OK);
                out.push(OP_REPL_UNIT);
                put_u64(&mut out, *index);
                put_u64(&mut out, *total);
                out.push(*dim as u8);
                match unit {
                    ReplUnit::Ops {
                        inserts,
                        tombstones,
                    } => {
                        out.push(UNIT_OPS);
                        put_rows(&mut out, inserts);
                        put_rows(&mut out, tombstones);
                    }
                    ReplUnit::Checkpoint {
                        units_after,
                        survivors,
                    } => {
                        out.push(UNIT_CHECKPOINT);
                        put_u64(&mut out, *units_after);
                        put_rows(&mut out, survivors);
                    }
                }
            }
            Response::Overloaded => out.push(ST_OVERLOADED),
            Response::NotReady => out.push(ST_NOT_READY),
            Response::Tagged { id, inner } => {
                // Invariant: Tagged wraps outermost, exactly once.
                assert!(
                    !matches!(**inner, Response::Tagged { .. }),
                    "invariant: Tagged responses never nest"
                );
                out.push(ST_TAGGED);
                put_u64(&mut out, *id);
                out.extend_from_slice(&inner.encode());
            }
            Response::Degraded { generation, inner } => {
                // Invariant: a Degraded wrapper is applied at most once
                // (the dispatch layer never wraps a wrapped response),
                // and the wrapper order is fixed — Stale encloses
                // Degraded, never the reverse.
                assert!(
                    !matches!(**inner, Response::Degraded { .. } | Response::Stale { .. }),
                    "invariant: Degraded wraps at most once, below Stale"
                );
                out.push(ST_DEGRADED);
                put_u32(&mut out, *generation);
                out.extend_from_slice(&inner.encode());
            }
            Response::Stale { lag, inner } => {
                // Invariant: Stale wraps at most once, inside Tagged
                // and outside Degraded.
                assert!(
                    !matches!(**inner, Response::Stale { .. } | Response::Tagged { .. }),
                    "invariant: Stale wraps at most once, inside Tagged"
                );
                out.push(ST_STALE);
                put_u64(&mut out, *lag);
                out.extend_from_slice(&inner.encode());
            }
            Response::Error(msg) => {
                out.push(ST_ERROR);
                let bytes = msg.as_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Parse a frame payload.
    pub fn decode(buf: &[u8]) -> Result<Response, WireError> {
        let mut c = Cursor::new(buf);
        let resp = Self::decode_at(&mut c, true, true, true)?;
        c.done()?;
        Ok(resp)
    }

    fn decode_at(
        c: &mut Cursor<'_>,
        allow_tagged: bool,
        allow_stale: bool,
        allow_degraded: bool,
    ) -> Result<Response, WireError> {
        let resp = match c.u8()? {
            ST_OVERLOADED => Response::Overloaded,
            ST_NOT_READY => Response::NotReady,
            ST_TAGGED => {
                if !allow_tagged {
                    return Err(WireError::NestedTagged);
                }
                let id = c.u64()?;
                // Stale and Degraded answers may ride inside the tag
                // wrapper; another Tagged may not.
                let inner = Self::decode_at(c, false, true, true)?;
                return Ok(Response::Tagged {
                    id,
                    inner: Box::new(inner),
                });
            }
            ST_STALE => {
                if !allow_stale {
                    return Err(WireError::NestedStale);
                }
                let lag = c.u64()?;
                // Degraded may ride inside Stale (a follower can be
                // both behind and recovering); Tagged and Stale not.
                let inner = Self::decode_at(c, false, false, true)?;
                return Ok(Response::Stale {
                    lag,
                    inner: Box::new(inner),
                });
            }
            ST_DEGRADED => {
                if !allow_degraded {
                    return Err(WireError::NestedDegraded);
                }
                let generation = c.u32()?;
                let inner = Self::decode_at(c, false, false, false)?;
                return Ok(Response::Degraded {
                    generation,
                    inner: Box::new(inner),
                });
            }
            ST_ERROR => {
                let n = c.u32()? as usize;
                let n = c.checked_count(n, 1)?;
                let msg = String::from_utf8(c.take(n)?.to_vec())
                    .map_err(|_| WireError::BadUtf8("error message"))?;
                Response::Error(msg)
            }
            ST_OK => match c.u8()? {
                OP_INSERT => Response::Inserted,
                OP_CONTAINS => Response::Bool(c.u8()? != 0),
                OP_VISIBLE => Response::VisibleCount(c.u32()?),
                OP_EXTREME => {
                    let vertex = c.u32()?;
                    Response::Extreme {
                        vertex,
                        coords: c.point()?,
                    }
                }
                OP_STATS => {
                    let n = c.u32()? as usize;
                    let n = c.checked_count(n, 1)?;
                    let json = String::from_utf8(c.take(n)?.to_vec())
                        .map_err(|_| WireError::BadUtf8("stats"))?;
                    Response::Stats(json)
                }
                OP_SNAPSHOT => {
                    let epoch = c.u64()?;
                    let dim = c.u8()? as usize;
                    if !(2..=chull_core::facet::MAX_DIM).contains(&dim) {
                        return Err(WireError::BadDim(dim));
                    }
                    let declared = c.u32()? as usize;
                    let npts = c.checked_count(declared, dim * 8)?;
                    let mut points = Vec::with_capacity(npts * dim);
                    for _ in 0..npts * dim {
                        points.push(c.i64()?);
                    }
                    let declared = c.u32()? as usize;
                    let nfacets = c.checked_count(declared, dim * 4)?;
                    let mut facets = Vec::with_capacity(nfacets * dim);
                    for _ in 0..nfacets * dim {
                        facets.push(c.u32()?);
                    }
                    Response::Snapshot {
                        epoch,
                        dim,
                        points,
                        facets,
                    }
                }
                OP_FLUSH => Response::Flushed { epoch: c.u64()? },
                OP_SHUTDOWN => Response::ShuttingDown,
                OP_INSERT_BATCH => Response::InsertedBatch {
                    accepted: c.bitmap()?,
                    epoch: c.u64()?,
                },
                OP_MUTATE => Response::Mutated {
                    accepted: c.bitmap()?,
                    epoch: c.u64()?,
                },
                OP_HELLO => Response::Hello {
                    version: c.u16()?,
                    caps: c.u32()?,
                },
                OP_METRICS => {
                    let n = c.u32()? as usize;
                    let n = c.checked_count(n, 1)?;
                    let text = String::from_utf8(c.take(n)?.to_vec())
                        .map_err(|_| WireError::BadUtf8("metrics"))?;
                    Response::Metrics(text)
                }
                OP_REPL_SUBSCRIBE => {
                    let index = c.u64()?;
                    let total = c.u64()?;
                    let dim = c.u8()? as usize;
                    if !(2..=chull_core::facet::MAX_DIM).contains(&dim) {
                        return Err(WireError::BadDim(dim));
                    }
                    let declared = c.u32()? as usize;
                    let npts = c.checked_count(declared, dim * 8)?;
                    let mut points = Vec::with_capacity(npts * dim);
                    for _ in 0..npts * dim {
                        points.push(c.i64()?);
                    }
                    Response::ReplBatch {
                        index,
                        total,
                        dim,
                        points,
                    }
                }
                OP_REPL_ACK => Response::ReplAcked { lag: c.u64()? },
                OP_REPL_UNIT => {
                    let index = c.u64()?;
                    let total = c.u64()?;
                    let dim = c.u8()? as usize;
                    if !(2..=chull_core::facet::MAX_DIM).contains(&dim) {
                        return Err(WireError::BadDim(dim));
                    }
                    let unit = match c.u8()? {
                        UNIT_OPS => ReplUnit::Ops {
                            inserts: c.rows(dim)?,
                            tombstones: c.rows(dim)?,
                        },
                        UNIT_CHECKPOINT => {
                            let units_after = c.u64()?;
                            ReplUnit::Checkpoint {
                                units_after,
                                survivors: c.rows(dim)?,
                            }
                        }
                        other => return Err(WireError::BadTag(other)),
                    };
                    Response::ReplUnit {
                        index,
                        total,
                        dim,
                        unit,
                    }
                }
                other => return Err(WireError::BadTag(other)),
            },
            other => return Err(WireError::BadStatus(other)),
        };
        Ok(resp)
    }
}

/// Write one frame (length prefix + payload). A payload over
/// [`MAX_FRAME`] is rejected as `InvalidInput` (we built it — but a
/// typed error beats a panic on a connection thread).
///
/// Failpoint `wire.write_frame`: an armed chaos schedule may truncate
/// the frame after a prefix and abort, simulating a peer (or process)
/// dying mid-write — the reader sees a torn frame, never a hang.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    if let FaultAction::TruncateWrite(n) = failpoint::eval(sites::WIRE_WRITE_FRAME) {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        let cut = n.min(frame.len());
        w.write_all(&frame[..cut])?;
        let _ = w.flush();
        return Err(io::Error::new(
            io::ErrorKind::ConnectionAborted,
            "failpoint 'wire.write_frame' truncated the frame",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame payload; `Ok(None)` on clean EOF before any byte.
/// Blocking — the server uses its own deadline-aware variant.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut hdr = [0u8; 4];
    match r.read(&mut hdr) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < 4 {
                let n = r.read(&mut hdr[got..])?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof inside frame header",
                    ));
                }
                got += n;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Insert {
                shard: 3,
                point: vec![1, -2],
            },
            Request::Contains {
                shard: 0,
                point: vec![i64::MIN / 8, i64::MAX / 8, 0],
            },
            Request::Visible {
                shard: 9,
                point: vec![5, 5],
            },
            Request::Extreme {
                shard: 1,
                direction: vec![1, 0, 0, -1],
            },
            Request::Stats { shard: ALL_SHARDS },
            Request::Snapshot { shard: 2 },
            Request::Flush { shard: 7 },
            Request::Shutdown,
            Request::Metrics,
            Request::InsertBatch {
                shard: 5,
                points: vec![vec![1, 2], vec![-3, 4], vec![0, 0]],
            },
            Request::InsertBatch {
                shard: 0,
                points: vec![],
            },
            Request::Hello {
                max_version: PROTOCOL_V2,
            },
            Request::Hello {
                max_version: PROTOCOL_V3,
            },
            Request::ContainsScan {
                shard: 4,
                point: vec![3, -7],
            },
            Request::VisibleScan {
                shard: 0,
                point: vec![1, 2, 3],
            },
            Request::ExtremeScan {
                shard: 6,
                direction: vec![0, -1],
            },
            Request::Hello {
                max_version: PROTOCOL_V4,
            },
            Request::Tagged {
                id: 0,
                inner: Box::new(Request::Insert {
                    shard: 1,
                    point: vec![7, -8],
                }),
            },
            Request::Tagged {
                id: u64::MAX,
                inner: Box::new(Request::Flush { shard: 0 }),
            },
            Request::Hello {
                max_version: PROTOCOL_V5,
            },
            Request::ReplSubscribe {
                shard: 3,
                from_index: 0,
            },
            Request::ReplSubscribe {
                shard: 0,
                from_index: u64::MAX,
            },
            Request::ReplAck { shard: 1, index: 7 },
            Request::Tagged {
                id: 11,
                inner: Box::new(Request::ReplSubscribe {
                    shard: 0,
                    from_index: 4,
                }),
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Inserted,
            Response::Bool(true),
            Response::Bool(false),
            Response::VisibleCount(17),
            Response::Extreme {
                vertex: 4,
                coords: vec![10, -10],
            },
            Response::Stats("{\"requests\":1}".to_string()),
            Response::Snapshot {
                epoch: 12,
                dim: 2,
                points: vec![0, 0, 4, 0, 0, 4],
                facets: vec![0, 1, 1, 2, 0, 2],
            },
            Response::Flushed { epoch: 99 },
            Response::ShuttingDown,
            Response::Metrics("# HELP x y\n# TYPE x counter\nx 1\n".to_string()),
            Response::Overloaded,
            Response::NotReady,
            Response::Degraded {
                generation: 3,
                inner: Box::new(Response::Bool(true)),
            },
            Response::Degraded {
                generation: 1,
                inner: Box::new(Response::NotReady),
            },
            Response::Error("boom".to_string()),
            Response::InsertedBatch {
                accepted: vec![true; 8],
                epoch: 3,
            },
            Response::InsertedBatch {
                accepted: vec![true, false, true, false, false, true, true, false, true],
                epoch: u64::MAX,
            },
            Response::InsertedBatch {
                accepted: vec![],
                epoch: 0,
            },
            Response::Hello {
                version: PROTOCOL_V2,
                caps: CAP_INSERT_BATCH,
            },
            Response::Hello {
                version: PROTOCOL_V3,
                caps: CAP_INSERT_BATCH | CAP_SCAN_QUERIES,
            },
            Response::Hello {
                version: PROTOCOL_V4,
                caps: CAP_INSERT_BATCH | CAP_SCAN_QUERIES | CAP_PIPELINE,
            },
            Response::Tagged {
                id: 42,
                inner: Box::new(Response::Bool(true)),
            },
            Response::Tagged {
                id: u64::MAX,
                inner: Box::new(Response::Degraded {
                    generation: 2,
                    inner: Box::new(Response::VisibleCount(5)),
                }),
            },
            Response::Tagged {
                id: 0,
                inner: Box::new(Response::Error("boom".to_string())),
            },
            Response::Hello {
                version: PROTOCOL_V5,
                caps: CAP_INSERT_BATCH | CAP_SCAN_QUERIES | CAP_PIPELINE | CAP_REPLICATION,
            },
            Response::ReplBatch {
                index: 4,
                total: 9,
                dim: 2,
                points: vec![0, 0, 5, -5, 7, 7],
            },
            Response::ReplBatch {
                index: 9,
                total: 9,
                dim: 3,
                points: vec![],
            },
            Response::ReplAcked { lag: 0 },
            Response::ReplAcked { lag: u64::MAX },
            Response::Stale {
                lag: 3,
                inner: Box::new(Response::Bool(true)),
            },
            Response::Stale {
                lag: 1,
                inner: Box::new(Response::Degraded {
                    generation: 2,
                    inner: Box::new(Response::NotReady),
                }),
            },
            Response::Tagged {
                id: 8,
                inner: Box::new(Response::Stale {
                    lag: 5,
                    inner: Box::new(Response::VisibleCount(2)),
                }),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn malformed_frames_error_not_panic() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xEE, 0, 0]).is_err());
        // Truncated point.
        assert!(Request::decode(&[OP_INSERT, 0, 0, 2, 1, 2, 3]).is_err());
        // Dimension out of range.
        assert!(Request::decode(&[OP_CONTAINS, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Trailing garbage.
        let mut buf = Request::Shutdown.encode();
        buf.push(0);
        assert_eq!(Request::decode(&buf), Err(WireError::Trailing(1)));
        assert_eq!(Response::decode(&[0x77]), Err(WireError::BadStatus(0x77)));
    }

    #[test]
    fn v2_batch_counts_are_checked() {
        // A forged count far beyond the payload: rejected before any
        // allocation sized by it.
        let mut buf = vec![OP_INSERT_BATCH, 0, 0];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(2);
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::Oversized(_))
        ));
        // Count says 2 but only one point follows.
        let mut buf = vec![OP_INSERT_BATCH, 0, 0];
        buf.extend_from_slice(&2u32.to_le_bytes());
        let mut one = Vec::new();
        put_point(&mut one, &[1, 2]);
        buf.extend_from_slice(&one);
        assert!(Request::decode(&buf).is_err());
        // Reply bitmap claiming a gigantic batch: bounds-checked.
        let mut buf = vec![ST_OK, OP_INSERT_BATCH];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0xFF);
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Truncated { .. })
        ));
        // Truncated Hello.
        assert!(Request::decode(&[OP_HELLO, 0, 0, 2]).is_err());
        assert!(Response::decode(&[ST_OK, OP_HELLO, 2, 0]).is_err());
    }

    #[test]
    fn negotiate_clamps_to_supported_range() {
        assert_eq!(negotiate(0), PROTOCOL_V1);
        assert_eq!(negotiate(PROTOCOL_V1), PROTOCOL_V1);
        assert_eq!(negotiate(PROTOCOL_V2), PROTOCOL_V2);
        assert_eq!(negotiate(PROTOCOL_V3), PROTOCOL_V3);
        assert_eq!(negotiate(PROTOCOL_V4), PROTOCOL_V4);
        assert_eq!(negotiate(PROTOCOL_V5), PROTOCOL_V5);
        assert_eq!(negotiate(PROTOCOL_V6), PROTOCOL_V6);
        assert_eq!(negotiate(u16::MAX), PROTOCOL_V6);
    }

    #[test]
    fn v6_mutate_and_unit_roundtrip() {
        let reqs = [
            Request::Mutate {
                shard: 2,
                muts: vec![
                    Mutation::Insert(vec![1, 2]),
                    Mutation::Delete(vec![-3, 4]),
                    Mutation::Expire(7),
                    Mutation::Insert(vec![0, 0]),
                ],
            },
            Request::Mutate {
                shard: 0,
                muts: vec![],
            },
            Request::Mutate {
                shard: 9,
                muts: vec![Mutation::Expire(u32::MAX)],
            },
            Request::ReplUnitFetch {
                shard: 1,
                from_index: 0,
            },
            Request::ReplUnitFetch {
                shard: 0,
                from_index: u64::MAX,
            },
            Request::Tagged {
                id: 5,
                inner: Box::new(Request::Mutate {
                    shard: 3,
                    muts: vec![Mutation::Delete(vec![8, 8, 8])],
                }),
            },
            Request::Hello {
                max_version: PROTOCOL_V6,
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
        let resps = [
            Response::Mutated {
                accepted: vec![true, false, true],
                epoch: 11,
            },
            Response::Mutated {
                accepted: vec![],
                epoch: 0,
            },
            Response::ReplUnit {
                index: 4,
                total: 9,
                dim: 2,
                unit: ReplUnit::Ops {
                    inserts: vec![vec![0, 0], vec![5, -5]],
                    tombstones: vec![vec![7, 7]],
                },
            },
            Response::ReplUnit {
                index: 9,
                total: 9,
                dim: 3,
                unit: ReplUnit::Ops {
                    inserts: vec![],
                    tombstones: vec![],
                },
            },
            Response::ReplUnit {
                index: 2,
                total: 3,
                dim: 2,
                unit: ReplUnit::Checkpoint {
                    units_after: 3,
                    survivors: vec![vec![1, 1], vec![-1, -1], vec![9, 0]],
                },
            },
            Response::Hello {
                version: PROTOCOL_V6,
                caps: server_caps(),
            },
            Response::Tagged {
                id: 6,
                inner: Box::new(Response::Mutated {
                    accepted: vec![true; 9],
                    epoch: 3,
                }),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn v6_bodies_are_bounds_checked() {
        // Mutate with a forged count far beyond the payload.
        let mut buf = vec![OP_MUTATE, 0, 0];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(MUT_EXPIRE);
        assert!(matches!(
            Request::decode(&buf),
            Err(WireError::Oversized(_))
        ));
        // Mutate with an unknown mutation tag.
        let mut buf = vec![OP_MUTATE, 0, 0];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(9);
        buf.extend_from_slice(&[0; 4]);
        assert_eq!(Request::decode(&buf), Err(WireError::BadTag(9)));
        // Mutate whose count says 2 but only one mutation follows.
        let mut buf = vec![OP_MUTATE, 0, 0];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(MUT_EXPIRE);
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.push(0);
        assert!(Request::decode(&buf).is_err());
        // Delete with a dimension out of range.
        let mut buf = vec![OP_MUTATE, 0, 0];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(MUT_DELETE);
        buf.push(1);
        buf.extend_from_slice(&[0; 8]);
        assert_eq!(Request::decode(&buf), Err(WireError::BadDim(1)));
        // ReplUnit with an unknown unit kind.
        let mut buf = vec![ST_OK, OP_REPL_UNIT];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(2);
        buf.push(7);
        assert_eq!(Response::decode(&buf), Err(WireError::BadTag(7)));
        // ReplUnit checkpoint claiming a gigantic survivor count.
        let mut buf = vec![ST_OK, OP_REPL_UNIT];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(2);
        buf.push(UNIT_CHECKPOINT);
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Oversized(_))
        ));
        // Truncated ReplUnitFetch (index cut short).
        assert!(Request::decode(&[OP_REPL_UNIT, 0, 0, 1, 2]).is_err());
        // Mutated reply bitmap claiming a gigantic envelope.
        let mut buf = vec![ST_OK, OP_MUTATE];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.push(0xFF);
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn op_table_is_sound() {
        // Codes are unique and every row resolves through op_spec.
        for (i, s) in OP_TABLE.iter().enumerate() {
            assert_eq!(op_spec(s.code), Some(s), "row {i}");
            for t in &OP_TABLE[i + 1..] {
                assert_ne!(s.code, t.code, "duplicate opcode {:#04x}", s.code);
                assert_ne!(s.name, t.name, "duplicate op name {}", s.name);
            }
        }
        assert_eq!(op_spec(0xEE), None);
        // The derived capability mask carries every advertised bit.
        assert_eq!(
            server_caps(),
            CAP_INSERT_BATCH | CAP_SCAN_QUERIES | CAP_PIPELINE | CAP_REPLICATION | CAP_MUTATION
        );
        // Every Request variant maps to a registered row.
        let reqs = [
            Request::Shutdown,
            Request::Mutate {
                shard: 0,
                muts: vec![],
            },
            Request::ReplUnitFetch {
                shard: 0,
                from_index: 0,
            },
        ];
        assert_eq!(reqs[0].spec().name, "shutdown");
        assert_eq!(reqs[1].spec().name, "mutate");
        assert!(reqs[1].spec().write);
        assert_eq!(reqs[1].spec().min_version, PROTOCOL_V6);
        assert_eq!(reqs[1].spec().cap, CAP_MUTATION);
        assert_eq!(reqs[2].spec().name, "repl_unit");
        assert!(!reqs[2].spec().write);
        // Only Tagged refuses to ride inside Tagged.
        for s in OP_TABLE {
            assert_eq!(s.wrappable, s.name != "tagged", "{}", s.name);
        }
    }

    #[test]
    fn stale_wrapper_nesting_rules() {
        // Stale inside Stale: rejected.
        let mut buf = vec![ST_STALE];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(
            &Response::Stale {
                lag: 2,
                inner: Box::new(Response::NotReady),
            }
            .encode(),
        );
        assert_eq!(Response::decode(&buf), Err(WireError::NestedStale));
        // Stale inside Degraded: wrapper order is fixed, rejected.
        let mut buf = vec![ST_DEGRADED];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(
            &Response::Stale {
                lag: 2,
                inner: Box::new(Response::NotReady),
            }
            .encode(),
        );
        assert_eq!(Response::decode(&buf), Err(WireError::NestedStale));
        // Tagged inside Stale: rejected (Tagged wraps outermost).
        let mut buf = vec![ST_STALE];
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(
            &Response::Tagged {
                id: 3,
                inner: Box::new(Response::NotReady),
            }
            .encode(),
        );
        assert_eq!(Response::decode(&buf), Err(WireError::NestedTagged));
        // Truncated Stale header (lag cut short).
        assert!(Response::decode(&[ST_STALE, 1, 2]).is_err());
    }

    #[test]
    fn v5_repl_bodies_are_bounds_checked() {
        // ReplBatch claiming a gigantic point count: rejected before
        // any allocation sized by it.
        let mut buf = vec![ST_OK, OP_REPL_SUBSCRIBE];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(2);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Oversized(_))
        ));
        // ReplBatch with a dimension out of range.
        let mut buf = vec![ST_OK, OP_REPL_SUBSCRIBE];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push(1);
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(Response::decode(&buf), Err(WireError::BadDim(1)));
        // Truncated ReplSubscribe (index cut short).
        assert!(Request::decode(&[OP_REPL_SUBSCRIBE, 0, 0, 1, 2]).is_err());
        assert!(Request::decode(&[OP_REPL_ACK, 0, 0]).is_err());
        // Trailing bytes after a complete ReplAck.
        let mut buf = Request::ReplAck { shard: 0, index: 3 }.encode();
        buf.push(0xAA);
        assert_eq!(Request::decode(&buf), Err(WireError::Trailing(1)));
    }

    #[test]
    fn tagged_cannot_nest() {
        // Tagged request inside a Tagged request: rejected at decode.
        let inner = Request::Tagged {
            id: 1,
            inner: Box::new(Request::Shutdown),
        }
        .encode();
        let mut buf = vec![OP_TAGGED, 0, 0];
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&inner);
        assert_eq!(Request::decode(&buf), Err(WireError::NestedTagged));
        // Tagged response inside a Tagged response.
        let inner = Response::Tagged {
            id: 1,
            inner: Box::new(Response::NotReady),
        }
        .encode();
        let mut buf = vec![ST_TAGGED];
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&inner);
        assert_eq!(Response::decode(&buf), Err(WireError::NestedTagged));
        // Tagged riding inside Degraded: the wrapper order is fixed
        // (Tagged outermost), so this is also rejected.
        let mut buf = vec![ST_DEGRADED];
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(
            &Response::Tagged {
                id: 9,
                inner: Box::new(Response::NotReady),
            }
            .encode(),
        );
        assert_eq!(Response::decode(&buf), Err(WireError::NestedTagged));
        // Truncated Tagged header (id cut short).
        assert!(Request::decode(&[OP_TAGGED, 0, 0, 1, 2]).is_err());
        assert!(Response::decode(&[ST_TAGGED, 1]).is_err());
    }

    #[test]
    fn degraded_cannot_nest_and_error_lengths_are_checked() {
        // Degraded wrapping Degraded: rejected, not stack-overflowed.
        let mut buf = vec![ST_DEGRADED];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(ST_DEGRADED);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(ST_NOT_READY);
        assert_eq!(Response::decode(&buf), Err(WireError::NestedDegraded));
        // Error text claiming more bytes than the payload holds.
        let mut buf = vec![ST_ERROR];
        buf.extend_from_slice(&1_000_000u32.to_le_bytes());
        buf.extend_from_slice(b"hi");
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Oversized(_))
        ));
        // Snapshot claiming a gigantic point count.
        let mut buf = vec![ST_OK, OP_SNAPSHOT];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.push(2);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Response::decode(&buf),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
        let big = vec![0u8; MAX_FRAME + 1];
        let mut out = Vec::new();
        let e = write_frame(&mut out, &big).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        assert!(out.is_empty(), "nothing written for an oversized frame");
    }
}
