//! # chull-core
//!
//! The paper's primary contribution, executable: sequential (Algorithm 2)
//! and parallel (Algorithm 3) randomized incremental convex hull in any
//! constant dimension `2..=8`, with exact arithmetic, full instrumentation
//! of the quantities the paper's theorems bound, baselines, and a
//! verification suite.
//!
//! Quick start:
//!
//! ```
//! use chull_core::{context::prepare_points, par, seq};
//! use chull_geometry::{generators, PointSet};
//!
//! let pts = PointSet::from_points2(&generators::disk_2d(500, 1 << 20, 42));
//! let pts = prepare_points(&pts, 7); // random insertion order
//! let (seq_hull, seq_stats) = seq::incremental_hull(&pts);
//! let par_run = par::parallel_hull(&pts, par::ParOptions::default());
//! assert_eq!(seq_hull.canonical(), par_run.output.canonical());
//! assert_eq!(seq_stats.visibility_tests, par_run.stats.visibility_tests);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod bulk;
pub mod context;
pub mod degenerate;
pub mod facet;
pub mod float2d;
pub mod history;
pub mod liveset;
pub mod measure;
pub mod online;
pub mod output;
pub mod par;
pub mod seq;
pub mod stats;
pub mod telemetry;
pub mod verify;

pub use context::prepare_points;
pub use liveset::{LiveSet, RemoveOutcome, WindowPolicy};
pub use output::HullOutput;
pub use stats::HullStats;
