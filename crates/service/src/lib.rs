//! # chull-service
//!
//! A long-lived convex hull **server** over the SPAA 2020 reproduction's
//! online hull: the history (influence) graph already gives expected
//! `O(log n)` point location per query (Section 4 of the paper), so this
//! crate packages it as a concurrent serving subsystem:
//!
//! * [`shard::HullService`] — the shard manager: independent
//!   epoch-versioned [`online hulls`](chull_core::online::OnlineHull),
//!   one worker thread per shard, copy-on-write snapshot publication
//!   (an `Arc<HullSnapshot>` swapped under a short critical section) so
//!   reads never block ingest;
//! * batched ingest — a bounded MPMC queue
//!   ([`chull_concurrent::BoundedQueue`]) coalesces inserts into batches
//!   applied through the staged exact kernel, with explicit backpressure
//!   (`Overloaded` replies) instead of unbounded buffering;
//! * [`wire`] — a length-prefixed binary protocol (`Insert`, `Contains`,
//!   `Visible`, `Extreme`, `Stats`, `Snapshot`, `Flush`, `Shutdown`,
//!   `Metrics`, protocol v2's `InsertBatch` + `Hello` handshake, v3's
//!   `*Scan` oracle queries, v4's `Tagged` correlation-id frames for
//!   pipelining, and v5's `ReplSubscribe`/`ReplAck` journal shipping +
//!   `Stale` staleness wrapper) over std TCP; v1 clients interoperate
//!   unchanged;
//! * [`replica`] — follower replicas: a puller thread subscribes to a
//!   primary's journal batch units (pull-based, resume cursor = its own
//!   batch count, so faults reduce to reconnects), applies them through
//!   the same parallel replay path, and self-promotes if the primary
//!   stays unreachable; Theorem 4.2's order-independence makes this
//!   convergent without consensus;
//! * [`router`] — a thin front end that consistent-hashes read traffic
//!   across a primary + followers, health-checks via `Stats`, and fails
//!   reads over (wrapped `Degraded`) when a node dies;
//! * [`server::serve`] — two interchangeable front ends over one
//!   dispatch core: the default **event loop** (a `chull-net` epoll
//!   reactor + dispatcher pool, scaling to tens of thousands of
//!   connections with out-of-order pipelined replies) and the original
//!   **thread-per-connection** loop ([`server::ServeOptions::threaded`])
//!   kept as the A/B + correctness oracle; both give graceful shutdown
//!   and per-request deadlines;
//! * [`metrics`] — `chull_obs`-backed telemetry handles: per-op request
//!   series, shard gauges, pipeline latency histograms, and kernel
//!   counters, exposed via the wire `Metrics` op and the optional
//!   plain-HTTP `GET /metrics` listener (`ServeOptions::metrics_addr`);
//! * [`client::HullClient`] — the blocking client used by the `hull`
//!   CLI, the integration tests, and the load generator in `chull-bench`;
//!   opened through [`client::HullClientBuilder`] (address, connect
//!   deadline, retry policy, protocol floor/ceiling), with
//!   [`client::HullClient::mutate`] streaming whole
//!   [`client::MutationBatch`]es (inserts, deletes, window expirations)
//!   as v6 `Mutate` envelopes and downgrading pure-insert batches to
//!   v2 `InsertBatch` frames or v1 single inserts against old servers.
//!
//! Since wire v6 shards also serve **windowed / deletable** hulls:
//! `Delete` tombstones a live point, a per-shard
//! [`chull_core::WindowPolicy`] expires the oldest live points, and when
//! tombstones (or journal growth) pass a configurable ratio the worker
//! rebuilds the hull from survivors through the parallel bulk builder
//! and journals the result as one checkpoint unit — crash-safe across
//! WAL replay, supervised recovery, and follower replication.
//!
//! Correctness bar: the served hull is **bit-identical** to the offline
//! sequential Algorithm 2 on the same point multiset (the loopback
//! integration test in the workspace root proves it under concurrent
//! clients), because both paths run the same staged exact predicates.

#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
mod event_server;
pub mod journal;
pub mod metrics;
pub mod replica;
pub mod router;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod wire;

pub use chull_core::WindowPolicy;
pub use client::{
    BatchInsertReply, HullClient, HullClientBuilder, MutateReply, MutationBatch, RetryPolicy,
    SnapshotReply,
};
pub use journal::{rewrite_wal, wal_path, Journal, JournalError, JournalOp};
pub use metrics::{op_metrics, service_metrics, OpMetrics, ServiceMetrics, ShardGauges};
pub use replica::{follow, FollowOptions, ReplicaHandle, ReplicaState};
pub use router::{route, RouterHandle, RouterOptions};
pub use server::{serve, ServeOptions, ServerHandle};
pub use shard::{HullService, InsertOutcome, ServiceConfig, ServiceError};
pub use snapshot::HullSnapshot;
pub use stats::{AtomicKernel, ShardStats};
pub use wire::{Mutation, ReplUnit, WireError};
