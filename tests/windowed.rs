//! Sliding-window & deletion hulls end to end (DESIGN §S22): a served
//! shard under a retention window — or explicit `Delete`s — must answer
//! with a hull **canonically identical** to the offline sequential
//! Algorithm 2 run on exactly the surviving points, for any worker
//! count. Theorem 4.2 makes this checkable: the hull of a point set is
//! independent of insertion order, so "rebuild from survivors" has one
//! right answer no matter how batches interleaved or how many rebuilds
//! the tombstone ratio triggered along the way.
//!
//! What is pinned down here:
//!
//! * **count windows** — seven workload shapes x {1,2,4} workers x two
//!   window sizes: the served hull equals offline Algorithm 2 on the
//!   newest `window` rows, and the live-point gauge agrees;
//! * **epoch windows** — rows older than N publication epochs retire;
//! * **explicit deletes** — a model [`LiveSet`] predicts the survivor
//!   multiset (deletes kill the oldest live copy; misses are counted,
//!   not errors) and the served hull matches offline on it;
//! * **mid-rebuild crash** — a failpoint panic inside the survivor
//!   rebuild, recovered in-process by the supervisor AND across a full
//!   process restart from the WAL: both converge to the survivor hull
//!   (the checkpoint either committed or is replayed from the old ops).
//!
//! The failpoint registry is process-global, so every test here takes a
//! shared mutex (armed or not — a concurrent armed test would leak
//! panics into an unarmed server).

use convex_hull_suite::concurrent::failpoint::{self, sites, FaultPlan, SiteSpec};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::core::LiveSet;
use convex_hull_suite::geometry::{generators, PointSet};
use convex_hull_suite::service::{
    serve, HullClient, Mutation, MutationBatch, ServeOptions, ServiceConfig, SnapshotReply,
    WindowPolicy,
};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn test_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn opts(dim: usize, workers: usize, window: WindowPolicy) -> ServeOptions {
    ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 1024,
            max_batch: 64,
            workers,
            wal_dir: None,
            bulk_threshold: 0,
            window,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A hull as an order-free set of facets, each facet the sorted list of
/// its vertices' coordinate rows (vertex ids depend on rebuild history;
/// coordinates cannot).
fn canonical(facets: impl Iterator<Item = Vec<Vec<i64>>>) -> BTreeSet<Vec<Vec<i64>>> {
    facets
        .map(|mut f| {
            f.sort();
            f
        })
        .collect()
}

fn canonical_offline(rows: &[Vec<i64>], dim: usize) -> BTreeSet<Vec<Vec<i64>>> {
    let pts = PointSet::from_rows(dim, rows);
    let run = incremental_hull_run(&pts);
    canonical(run.output.facets.iter().map(|f| {
        f[..dim]
            .iter()
            .map(|&v| pts.point(v as usize).to_vec())
            .collect()
    }))
}

fn canonical_served(snap: &SnapshotReply) -> BTreeSet<Vec<Vec<i64>>> {
    canonical(
        snap.facets
            .iter()
            .map(|f| f.iter().map(|&v| snap.points[v as usize].clone()).collect()),
    )
}

fn rows_of(pts: &PointSet) -> Vec<Vec<i64>> {
    (0..pts.len()).map(|i| pts.point(i).to_vec()).collect()
}

/// Pull one numeric counter out of a stats JSON line.
fn grab(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("stats json missing {key}: {json}"))
        + pat.len();
    json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("stats counter is a number")
}

/// Stream `rows` into shard 0 as 16-mutation envelopes from one
/// connection (order preserved, so the survivor set is deterministic),
/// flush, snapshot, and return the stats line too.
fn serve_windowed(
    dim: usize,
    rows: &[Vec<i64>],
    workers: usize,
    window: WindowPolicy,
) -> (SnapshotReply, String) {
    let mut server = serve(opts(dim, workers, window)).unwrap();
    let mut client = HullClient::builder(server.local_addr().to_string())
        .connect()
        .unwrap();
    for chunk in rows.chunks(16) {
        let muts: Vec<Mutation> = chunk.iter().map(|p| Mutation::Insert(p.clone())).collect();
        client.mutate(0, muts.into()).unwrap();
    }
    client.flush(0).unwrap();
    let snap = client.snapshot(0).unwrap();
    let stats = client.stats(Some(0)).unwrap();
    server.shutdown();
    (snap, stats)
}

/// The tentpole property, across shape diversity: seven workloads
/// (grids, cubes, balls, spheres, gaussians; 2D and 3D), each served
/// with 1, 2, and 4 workers under two count windows. The hull must be
/// the offline Algorithm 2 hull of exactly the newest `window` rows.
#[test]
fn count_window_matches_offline_on_survivors_across_workloads() {
    let _g = test_lock();
    let n = 240;
    let workloads: Vec<(usize, PointSet)> = vec![
        (2, generators::cube_d(2, n, 1_000_000, 7)),
        (2, generators::ball_d(2, n, 1_000_000, 11)),
        (2, generators::near_sphere_d(2, n, 1_000_000, 13)),
        (2, generators::gaussian_d(2, n, 50_000.0, 17)),
        (3, generators::cube_d(3, n, 1_000_000, 19)),
        (3, generators::ball_d(3, n, 1_000_000, 23)),
        (3, generators::near_sphere_d(3, n, 1_000_000, 29)),
    ];
    for (w, (dim, pts)) in workloads.iter().enumerate() {
        let rows = rows_of(pts);
        for workers in [1usize, 2, 4] {
            for window in [24usize, 96] {
                let (snap, stats) =
                    serve_windowed(*dim, &rows, workers, WindowPolicy::Count(window));
                let survivors = &rows[rows.len() - window..];
                assert_eq!(
                    grab(&stats, "live_points"),
                    window as u64,
                    "workload {w} dim {dim} workers {workers} window {window}: {stats}"
                );
                assert_eq!(
                    grab(&stats, "window_expirations"),
                    (rows.len() - window) as u64,
                    "workload {w}: every out-of-window row must be expired: {stats}"
                );
                assert_eq!(
                    canonical_served(&snap),
                    canonical_offline(survivors, *dim),
                    "workload {w} dim {dim} workers {workers} window {window}: \
                     served hull differs from offline Algorithm 2 on the survivors"
                );
            }
        }
    }
}

/// Epoch windows: rows older than N publication epochs retire. One
/// envelope per flush makes epochs deterministic enough to pin the
/// boundary: after the final flush, only rows younger than N epochs
/// survive, and the hull matches offline on them.
#[test]
fn epoch_window_retires_old_rows() {
    let _g = test_lock();
    let mut server = serve(opts(2, 2, WindowPolicy::Epochs(3))).unwrap();
    let mut client = HullClient::builder(server.local_addr().to_string())
        .connect()
        .unwrap();
    // Five generations, one flushed publication each: a big square that
    // must eventually fall out of the window, then four copies of a
    // small one. Queue coalescing may split a generation into several
    // epochs, which only ages the early generations FASTER — the final
    // generation is always age 0 at its own publication, so it can
    // never expire, and the assertions below lean only on it.
    let big = vec![vec![0, 0], vec![100, 0], vec![0, 100], vec![100, 100]];
    let small = vec![vec![40, 40], vec![60, 40], vec![40, 60], vec![60, 60]];
    for rows in [&big, &small, &small, &small, &small] {
        let muts: Vec<Mutation> = rows.iter().map(|p| Mutation::Insert(p.clone())).collect();
        client.mutate(0, muts.into()).unwrap();
        client.flush(0).unwrap();
    }
    // The square entered at epoch 1; by the last flush (epoch >= 5) it
    // is at least 4 epochs old and must be gone.
    let stats = client.stats(Some(0)).unwrap();
    assert!(
        grab(&stats, "window_expirations") >= 4,
        "the first generation must have expired: {stats}"
    );
    assert_eq!(
        client.contains(0, &[99, 99]).unwrap(),
        Some(false),
        "expired corner still inside the served hull"
    );
    assert_eq!(
        client.contains(0, &[50, 50]).unwrap(),
        Some(true),
        "the newest generation must still serve its hull"
    );
    server.shutdown();
}

/// Explicit deletes against a model [`LiveSet`]: interleave inserts and
/// deletes (some hitting hull vertices, some interior, some misses) in
/// one mutation stream; the served hull must match offline Algorithm 2
/// on the model's survivors, and the miss counter must agree.
#[test]
fn explicit_deletes_match_model_liveset() {
    let _g = test_lock();
    for (dim, pts) in [
        (2usize, generators::cube_d(2, 300, 1_000_000, 31)),
        (3usize, generators::ball_d(3, 300, 1_000_000, 37)),
    ] {
        let rows = rows_of(&pts);
        for workers in [1usize, 4] {
            let mut server = serve(opts(dim, workers, WindowPolicy::None)).unwrap();
            let mut client = HullClient::builder(server.local_addr().to_string())
                .connect()
                .unwrap();
            let mut model = LiveSet::new();
            let mut misses = 0u64;
            let mut batch = MutationBatch::new();
            for (i, row) in rows.iter().enumerate() {
                model.insert(row.clone(), 0);
                batch = batch.insert(row.clone());
                // Delete every third row shortly after it arrived, and
                // every tenth twice (the second is a guaranteed miss
                // unless the coordinate repeated).
                if i % 3 == 0 {
                    for _ in 0..if i % 30 == 0 { 2 } else { 1 } {
                        if model.count(row) == 0 {
                            misses += 1;
                        } else {
                            model.remove(row);
                        }
                        batch = batch.delete(row.clone());
                    }
                }
                if batch.len() >= 24 {
                    client.mutate(0, std::mem::take(&mut batch)).unwrap();
                }
            }
            if !batch.is_empty() {
                client.mutate(0, batch).unwrap();
            }
            client.flush(0).unwrap();
            let survivors = model.survivors();
            let stats = client.stats(Some(0)).unwrap();
            assert_eq!(
                grab(&stats, "live_points"),
                survivors.len() as u64,
                "dim {dim} workers {workers}: {stats}"
            );
            assert_eq!(
                grab(&stats, "delete_misses"),
                misses,
                "dim {dim} workers {workers}: miss accounting diverged: {stats}"
            );
            let snap = client.snapshot(0).unwrap();
            assert_eq!(
                canonical_served(&snap),
                canonical_offline(&survivors, dim),
                "dim {dim} workers {workers}: served hull differs from \
                 offline Algorithm 2 on the model's survivors"
            );
            server.shutdown();
        }
    }
}

/// `Expire(n)` — the explicit window advance — tombstones exactly the n
/// oldest live rows, end to end through the wire envelope.
#[test]
fn explicit_expire_retires_oldest() {
    let _g = test_lock();
    let mut server = serve(opts(2, 2, WindowPolicy::None)).unwrap();
    let mut client = HullClient::builder(server.local_addr().to_string())
        .connect()
        .unwrap();
    // Big square first, then a smaller one; expiring 4 kills the big.
    let batch = MutationBatch::new()
        .insert([0, 0])
        .insert([80, 0])
        .insert([0, 80])
        .insert([80, 80])
        .insert([20, 20])
        .insert([60, 20])
        .insert([20, 60])
        .insert([60, 60])
        .expire(4);
    client.mutate(0, batch).unwrap();
    client.flush(0).unwrap();
    assert_eq!(client.contains(0, &[70, 70]).unwrap(), Some(false));
    assert_eq!(client.contains(0, &[40, 40]).unwrap(), Some(true));
    let stats = client.stats(Some(0)).unwrap();
    assert_eq!(grab(&stats, "live_points"), 4, "{stats}");
    assert_eq!(grab(&stats, "tombstones"), 4, "{stats}");
    server.shutdown();
}

/// Mid-rebuild crash, both recovery surfaces. A failpoint panic lands
/// inside the survivor rebuild; the supervisor replays the journal
/// in-process and must converge to the survivor hull. Then the whole
/// process "restarts": a second server over the same WAL directory
/// replays inserts AND tombstones (whether or not the crashed rebuild
/// got its checkpoint out) and must serve the same survivor hull.
#[test]
fn mid_rebuild_crash_recovers_survivor_hull_in_process_and_from_wal() {
    let _g = test_lock();
    let dir = std::env::temp_dir().join(format!(
        "chull-windowed-wal-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let square = vec![vec![0, 0], vec![10, 0], vec![0, 10], vec![10, 10]];
    let mut recovered = false;
    for round in 0..20u64 {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = opts(2, 2, WindowPolicy::None);
        config.config.wal_dir = Some(dir.clone());
        // Only the hull-invalidating delete below may trigger the
        // rebuild, so the armed panic deterministically lands in it.
        config.config.rebuild_ratio = 1e9;
        config.config.journal_ratio = 0.0;
        let mut server = serve(config).unwrap();
        let addr = server.local_addr();
        let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
        let mut batch = MutationBatch::new();
        for p in &square {
            batch = batch.insert(p.clone());
        }
        client.mutate(0, batch.insert([40, 5])).unwrap();
        client.flush(0).unwrap();
        failpoint::arm(FaultPlan::new(0x51DE_0000 + round).site(
            sites::SHARD_REBUILD,
            SiteSpec {
                panic_every: 1,
                max_fires: 1,
                ..SiteSpec::default()
            },
        ));
        // Deleting the hull vertex forces the rebuild; the armed
        // failpoint kills the worker inside it.
        client
            .mutate(0, MutationBatch::new().delete([40, 5]))
            .unwrap();
        client.flush(0).unwrap();
        failpoint::disarm();
        let stats = client.stats(Some(0)).unwrap();
        let hit = grab(&stats, "recoveries") >= 1;
        // Crashed or not, the in-process hull converges to the square.
        let snap = client.snapshot(0).unwrap();
        assert_eq!(
            canonical_served(&snap),
            canonical_offline(&square, 2),
            "round {round}: recovered hull differs from the survivors"
        );
        assert_eq!(client.contains(0, &[20, 5]).unwrap(), Some(false));
        server.shutdown();

        // Full restart over the same WAL: replay must resolve the
        // tombstone (checkpointed or not) and serve the survivor hull.
        let mut config = opts(2, 2, WindowPolicy::None);
        config.config.wal_dir = Some(dir.clone());
        let mut restarted = serve(config).unwrap();
        let mut client = HullClient::builder(restarted.local_addr().to_string())
            .connect()
            .unwrap();
        let snap = client.snapshot(0).unwrap();
        assert_eq!(
            canonical_served(&snap),
            canonical_offline(&square, 2),
            "round {round}: WAL-restarted hull differs from the survivors"
        );
        assert_eq!(client.contains(0, &[20, 5]).unwrap(), Some(false));
        restarted.shutdown();
        if hit {
            recovered = true;
            break;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(recovered, "no injected panic landed in the rebuild");
}
