//! Structural and geometric property tests for the hull algorithms across
//! dimensions and distributions.

use chull_core::baseline::brute;
use chull_core::online::{HullBuilder, OnlineHull};
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::prepare_points;
use chull_core::seq::incremental_hull_run;
use chull_core::verify::{verify_containment, verify_hull};
use chull_geometry::rng::ChaCha8Rng;
use chull_geometry::{generators, KernelCounts, PointSet};

/// Every d-dimensional hull: each ridge is shared by exactly two facets, so
/// ridges = d * F / 2; hull vertices are a subset of the input; every facet
/// is one-sided.
fn structural_invariants(pts: &PointSet) {
    let run = incremental_hull_run(pts);
    let d = pts.dim();
    let f = run.output.num_facets();
    assert_eq!(run.output.num_ridges() * 2, d * f, "ridge/facet incidence");
    verify_hull(pts, &run.output).unwrap();
    verify_containment(pts, &run.output).unwrap();
    // Facet count parity in 3D: triangulated closed surface has even F.
    if d == 3 {
        assert_eq!(f % 2, 0, "3D triangulated hull must have even facet count");
    }
    // The created-facet list starts with the d+1 seed facets at depth 0.
    assert!(run.depths[..=d].iter().all(|&x| x == 0));
}

#[test]
fn invariants_across_dimensions() {
    for (dim, n) in [(2usize, 300), (3, 300), (4, 80), (5, 48), (6, 32)] {
        for seed in 0..2u64 {
            let pts = prepare_points(&generators::ball_d(dim, n, 1 << 20, seed), seed + 3);
            structural_invariants(&pts);
        }
    }
}

#[test]
fn near_sphere_everything_extreme_3d() {
    let n = 300;
    let pts = prepare_points(
        &PointSet::from_points3(&generators::near_sphere_3d(n, 1 << 24, 2)),
        5,
    );
    let run = incremental_hull_run(&pts);
    // On a near-sphere, almost every point is a hull vertex.
    let v = run.output.vertices().len();
    assert!(v > n * 95 / 100, "only {v}/{n} points extreme");
    verify_hull(&pts, &run.output).unwrap();
}

#[test]
fn paraboloid_all_extreme_3d() {
    // Points on the exact paraboloid are in strictly convex position.
    let n = 250;
    let pts = prepare_points(
        &PointSet::from_points3(&generators::paraboloid_3d(n, 1 << 10, 4)),
        6,
    );
    let run = incremental_hull_run(&pts);
    assert_eq!(run.output.vertices().len(), n);
    verify_hull(&pts, &run.output).unwrap();
    // Parallel agrees.
    let par = parallel_hull(&pts, ParOptions::default());
    assert_eq!(run.output.canonical(), par.output.canonical());
}

#[test]
fn simplex_4d_exact() {
    // d+1 points: the hull is all d+1 facets, no insertions happen.
    let mut rows = vec![vec![0i64; 4]];
    for i in 0..4 {
        let mut r = vec![0i64; 4];
        r[i] = 100;
        rows.push(r);
    }
    let pts = PointSet::from_rows(4, &rows);
    let run = incremental_hull_run(&pts);
    assert_eq!(run.output.num_facets(), 5);
    assert_eq!(run.stats.visibility_tests, 0);
    assert_eq!(run.stats.dep_depth, 0);
}

#[test]
fn cube_corners_4d_match_brute() {
    // The 16 corners of a 4-cube, perturbed into general position.
    let mut rows = Vec::new();
    let mut salt = 1i64;
    for mask in 0..16u32 {
        let mut r = vec![0i64; 4];
        for (b, slot) in r.iter_mut().enumerate() {
            *slot = if mask >> b & 1 == 1 {
                1000 + salt % 7
            } else {
                -(1000 + salt % 5)
            };
            salt = salt.wrapping_mul(31).wrapping_add(17) % 1000;
        }
        rows.push(r);
    }
    let pts = prepare_points(&PointSet::from_rows(4, &rows), 9);
    let run = incremental_hull_run(&pts);
    let oracle = brute::hull_output(&pts);
    assert_eq!(run.output.canonical(), oracle.canonical());
    assert_eq!(run.output.vertices().len(), 16);
}

/// Random 4D point sets: incremental equals brute force. Deterministic
/// pseudo-random cases stand in for the original proptest strategy.
#[test]
fn prop_4d_matches_brute() {
    let mut r = ChaCha8Rng::seed_from_u64(0x4d4d);
    let mut checked = 0;
    while checked < 16 {
        let len = r.gen_range(8usize..16);
        let mut rows: Vec<Vec<i64>> = (0..len)
            .map(|_| (0..4).map(|_| r.gen_range(-200i64..200)).collect())
            .collect();
        let seed = r.gen_range(0u64..100);
        rows.sort();
        rows.dedup();
        if rows.len() < 6 {
            continue;
        }
        let pts = PointSet::from_rows(4, &rows);
        let refs: Vec<&[i64]> = (0..pts.len()).map(|i| pts.point(i)).collect();
        if chull_geometry::exact::affine_rank(&refs) != 5 {
            continue;
        }
        let prepared = prepare_points(&pts, seed);
        let run = incremental_hull_run(&prepared);
        let oracle = brute::hull_output(&prepared);
        assert_eq!(run.output.canonical(), oracle.canonical());
        checked += 1;
    }
}

// ---------------------------------------------------------------------------
// Query-path equivalence: history-graph point location (with and without
// the SoA PlaneBlock filter) must be bit-identical to the linear-scan
// oracle on every workload, including degenerate ones.
// ---------------------------------------------------------------------------

/// Build a live online hull by replaying the point set's rows in order.
fn online_hull(pts: &PointSet) -> OnlineHull {
    let rows: Vec<&[i64]> = (0..pts.len()).map(|i| pts.point(i)).collect();
    let b = HullBuilder::replay(pts.dim(), rows.iter().copied());
    b.hull().expect("workload must leave bootstrap").clone()
}

/// Query mix: every input point (exactly-at-vertex, on-facet, interior,
/// duplicate coordinates), scaled copies (mostly outside), and midpoints
/// of random pairs, each asked twice.
fn query_points(pts: &PointSet, seed: u64) -> Vec<Vec<i64>> {
    let n = pts.len();
    let mut qs: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    for i in 0..n.min(48) {
        qs.push(pts.point(i).iter().map(|&c| c * 2 + 1).collect());
    }
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..48 {
        let a = r.gen_range(0usize..n);
        let b = r.gen_range(0usize..n);
        let m: Vec<i64> = pts
            .point(a)
            .iter()
            .zip(pts.point(b))
            .map(|(&x, &y)| (x + y) / 2)
            .collect();
        qs.push(m.clone());
        qs.push(m);
    }
    qs
}

/// Assert descent (scalar filter and SoA block filter) agrees with the
/// scan oracle on every query, and that the block changes only *how* the
/// float filter is evaluated, never what it decides: identical kernel
/// counters, not just identical answers. Returns per-query descent steps.
fn assert_query_paths_agree(h: &OnlineHull, qs: &[Vec<i64>]) -> Vec<u64> {
    let block = h.plane_block();
    let mut steps = Vec::with_capacity(qs.len());
    for q in qs {
        let mut k_loc = KernelCounts::default();
        let mut k_blk = KernelCounts::default();
        let mut k_scan = KernelCounts::default();
        let c_loc = h.contains_with(q, &mut k_loc, None);
        let c_blk = h.contains_with(q, &mut k_blk, Some(&block));
        let c_scan = h.contains_scan(q, &mut k_scan);
        assert_eq!(c_loc, c_scan, "contains: descent vs scan at {q:?}");
        assert_eq!(c_blk, c_scan, "contains: block descent vs scan at {q:?}");
        assert_eq!(k_loc, k_blk, "kernel counters: scalar vs block at {q:?}");
        let mut v_loc = h.visible_facets_with(q, &mut KernelCounts::default(), Some(&block));
        let mut v_scan = h.visible_facets_scan(q, &mut KernelCounts::default());
        v_loc.sort_unstable();
        v_scan.sort_unstable();
        assert_eq!(v_loc, v_scan, "visible facet set at {q:?}");
        steps.push(k_loc.descent_steps);
    }
    steps
}

/// The cached-vertex extreme path: agrees with per-query re-derivation,
/// and the winner maximizes the dot product over *all* input points.
fn assert_extreme_agrees(h: &OnlineHull, dirs: &[Vec<i64>]) {
    let verts = h.hull_vertices();
    for d in dirs {
        let fast = h.extreme_with(d, &verts);
        let slow = h.extreme(d);
        assert_eq!(fast, slow, "extreme along {d:?}");
        let dot =
            |p: &[i64]| -> i128 { p.iter().zip(d).map(|(&a, &b)| a as i128 * b as i128).sum() };
        let best = (0..h.num_points())
            .map(|i| dot(h.points().point(i)))
            .max()
            .unwrap();
        assert_eq!(dot(&fast.1), best, "extreme along {d:?} not maximal");
    }
}

fn axis_and_random_dirs(dim: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut dirs = Vec::new();
    for j in 0..dim {
        for s in [1i64, -1] {
            let mut d = vec![0i64; dim];
            d[j] = s;
            dirs.push(d);
        }
    }
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..16 {
        dirs.push((0..dim).map(|_| r.gen_range(-1000i64..1000)).collect());
    }
    dirs.retain(|d| d.iter().any(|&c| c != 0));
    dirs
}

/// The canonical 7-workload property matrix: every dimension the service
/// runs (2D/3D/4D), everything-extreme inputs, and the degenerate cases
/// (collinear-heavy, duplicate-heavy) that stress weak hull vertices.
fn property_workloads() -> Vec<(&'static str, PointSet)> {
    let mut dup_rows: Vec<Vec<i64>> = generators::disk_2d(150, 1 << 18, 21)
        .iter()
        .map(|p| vec![p.x, p.y])
        .collect();
    dup_rows.extend(dup_rows.clone()); // every point twice
    vec![
        (
            "ball2",
            prepare_points(&generators::ball_d(2, 400, 1 << 20, 11), 1),
        ),
        (
            "ball3",
            prepare_points(&generators::ball_d(3, 250, 1 << 20, 12), 2),
        ),
        (
            "ball4",
            prepare_points(&generators::ball_d(4, 100, 1 << 16, 13), 3),
        ),
        (
            "near_circle",
            prepare_points(
                &PointSet::from_points2(&generators::near_circle_2d(400, 1 << 24, 14)),
                4,
            ),
        ),
        (
            "near_sphere3",
            prepare_points(
                &PointSet::from_points3(&generators::near_sphere_3d(200, 1 << 20, 15)),
                5,
            ),
        ),
        (
            "collinear",
            prepare_points(
                &PointSet::from_points2(&generators::collinear_heavy_2d(300, 12, 16)),
                6,
            ),
        ),
        (
            "duplicates",
            prepare_points(&PointSet::from_rows(2, &dup_rows), 7),
        ),
    ]
}

#[test]
fn query_paths_bit_identical_across_workloads() {
    for (name, pts) in &property_workloads() {
        let h = online_hull(pts);
        let qs = query_points(pts, 0xABC ^ pts.len() as u64);
        assert_query_paths_agree(&h, &qs);
        assert_extreme_agrees(&h, &axis_and_random_dirs(pts.dim(), 0xD12));
        // Cross-check against the offline verifier too: `contains` says
        // true exactly for the points the hull was built from.
        for i in 0..pts.len() {
            assert!(h.contains(pts.point(i)), "{name}: input point {i} escapes");
        }
    }
}

/// E21 core-level check: on a near-circle (every point a hull vertex),
/// the history descent touches far fewer nodes than a linear scan would —
/// p50 descent steps ≪ alive facet count. Scan builds record no descent
/// steps, so this only means something on the default build.
#[cfg(not(feature = "linear-scan"))]
#[test]
fn descent_steps_sublinear_on_near_circle() {
    let pts = prepare_points(
        &PointSet::from_points2(&generators::near_circle_2d(4000, 1 << 28, 99)),
        8,
    );
    let h = online_hull(&pts);
    let facets = h.output().num_facets();
    assert!(facets > 1000, "workload too small: {facets} facets");
    let block = h.plane_block();
    let mut r = ChaCha8Rng::seed_from_u64(0xE21);
    let mut steps: Vec<u64> = Vec::new();
    for i in 0..256usize {
        // Alternate interior midpoints and outside points so both the
        // early-exit and the full-cone descents are measured.
        let q: Vec<i64> = if i % 2 == 0 {
            let a = r.gen_range(0usize..pts.len());
            let b = r.gen_range(0usize..pts.len());
            pts.point(a)
                .iter()
                .zip(pts.point(b))
                .map(|(&x, &y)| (x + y) / 2)
                .collect()
        } else {
            let a = r.gen_range(0usize..pts.len());
            pts.point(a).iter().map(|&c| c + c / 8).collect()
        };
        let mut k = KernelCounts::default();
        h.contains_with(&q, &mut k, Some(&block));
        steps.push(k.descent_steps);
    }
    steps.sort_unstable();
    let p50 = steps[steps.len() / 2];
    assert!(
        (p50 as usize) * 20 < facets,
        "descent p50 {p50} not sublinear in {facets} facets"
    );
}

/// Bulk construction vs Algorithm 2 — the DESIGN §S21 invariant. On every
/// property workload (including degenerate collinear and duplicate-heavy
/// inputs, where only the weak-boundary retention rule keeps the prune
/// sound), `HullBuilder::seed_from_bulk` must produce the **canonically
/// identical** facet set to an incremental replay of the same rows, at
/// every worker count — and the bulk result itself must be identical
/// across worker counts, not merely equivalent.
#[test]
fn bulk_build_matches_algorithm_2_across_workloads() {
    for (name, pts) in &property_workloads() {
        let rows: Vec<Vec<i64>> = (0..pts.len()).map(|i| pts.point(i).to_vec()).collect();
        let replayed = HullBuilder::replay(pts.dim(), rows.iter().map(|r| r.as_slice()));
        let reference = replayed.hull().expect("workload leaves bootstrap").output();
        let mut canon_at_workers = Vec::new();
        for threads in [1usize, 2, 4] {
            let (b, report) = HullBuilder::seed_from_bulk(pts.dim(), &rows, threads);
            assert!(!report.fallback, "{name}: unexpected replay fallback");
            assert_eq!(report.input, pts.len(), "{name}: sweep saw every point");
            assert!(
                report.candidates >= reference.vertices().len(),
                "{name}: candidate set smaller than the hull's vertex set"
            );
            assert_eq!(b.applied(), rows.len() as u64, "{name}: applied count");
            let h = b.hull().expect("bulk seed is live");
            let out = h.output();
            // Bulk and replay share the basis-first internal point order,
            // so canonical forms are comparable id-for-id.
            assert_eq!(
                out.canonical(),
                reference.canonical(),
                "{name}: bulk hull differs from incremental replay at {threads} workers"
            );
            verify_hull(h.points(), &out).unwrap();
            verify_containment(h.points(), &out).unwrap();
            canon_at_workers.push((out.canonical(), h.output().num_facets(), h.dep_depth()));
        }
        assert!(
            canon_at_workers.windows(2).all(|w| w[0] == w[1]),
            "{name}: bulk build not identical across worker counts"
        );
    }
}

/// Insertion order never changes the hull (only the dependence
/// structure).
#[test]
fn prop_order_invariance() {
    let mut r = ChaCha8Rng::seed_from_u64(0x0ede);
    for _ in 0..16 {
        let seed_a = r.gen_range(0u64..500);
        let seed_b = r.gen_range(500u64..1000);
        let pts = PointSet::from_points2(&generators::disk_2d(120, 1 << 20, 77));
        let a = incremental_hull_run(&prepare_points(&pts, seed_a));
        let b = incremental_hull_run(&prepare_points(&pts, seed_b));
        // Canonical forms use ids, which differ across permutations —
        // compare vertex coordinate sets and facet counts instead.
        let coords = |run: &chull_core::seq::SeqRun, ps: &PointSet| {
            run.output
                .vertices()
                .iter()
                .map(|&v| (ps.pt(v)[0], ps.pt(v)[1]))
                .collect::<std::collections::BTreeSet<_>>()
        };
        let pa = prepare_points(&pts, seed_a);
        let pb = prepare_points(&pts, seed_b);
        assert_eq!(coords(&a, &pa), coords(&b, &pb));
        assert_eq!(a.output.num_facets(), b.output.num_facets());
    }
}
