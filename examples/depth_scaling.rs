//! The paper's main theorem, visually: the dependence depth of randomized
//! incremental convex hull grows like `O(log n)` — the `depth / H_n` column
//! stays flat while `n` grows by three orders of magnitude (Theorem 1.1),
//! and insertion in *sorted* order destroys the guarantee (the paper's
//! randomness is doing real work).
//!
//! Run with: `cargo run --release --example depth_scaling`

use convex_hull_suite::core::prepare_points;
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};

fn main() {
    println!("2D hull of points uniform in a disk, random insertion order:");
    println!(
        "{:>9} {:>7} {:>10} {:>11}",
        "n", "depth", "H_n", "depth/H_n"
    );
    for e in 10..=17 {
        let n = 1usize << e;
        let pts = PointSet::from_points2(&generators::disk_2d(n, 1 << 30, e as u64));
        let pts = prepare_points(&pts, 100 + e as u64);
        let run = incremental_hull_run(&pts);
        println!(
            "{:>9} {:>7} {:>10.2} {:>11.2}",
            n,
            run.stats.dep_depth,
            run.stats.harmonic(),
            run.stats.depth_over_harmonic()
        );
    }

    println!("\nSame input, points sorted by x (adversarial order):");
    println!(
        "{:>9} {:>7} {:>10} {:>11}",
        "n", "depth", "H_n", "depth/H_n"
    );
    for e in 10..=14 {
        let n = 1usize << e;
        let mut points = generators::disk_2d(n, 1 << 30, e as u64);
        points.sort();
        let pts = PointSet::from_points2(&points);
        // No shuffle: insert in sorted order (first 3 made independent).
        let pts = sorted_order_prepare(&pts);
        let run = incremental_hull_run(&pts);
        println!(
            "{:>9} {:>7} {:>10.2} {:>11.2}",
            n,
            run.stats.dep_depth,
            run.stats.harmonic(),
            run.stats.depth_over_harmonic()
        );
    }
    println!("\nRandom order: flat depth/H_n. Sorted order: depth grows linearly in n.");
}

/// Keep the given order but hoist the first affinely independent triple to
/// the front (the algorithms need an initial simplex).
fn sorted_order_prepare(pts: &PointSet) -> PointSet {
    let simplex = convex_hull_suite::core::context::initial_simplex(pts);
    let chosen: Vec<usize> = simplex.iter().map(|&v| v as usize).collect();
    let mut order = chosen.clone();
    order.extend((0..pts.len()).filter(|i| !chosen.contains(i)));
    pts.permuted(&order)
}
