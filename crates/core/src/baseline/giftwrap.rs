//! 2D gift wrapping (Jarvis march): the `O(n h)` output-sensitive baseline.

use chull_geometry::predicates::orient2d;
use chull_geometry::{Point2i, Sign};

/// Hull vertex indices in counterclockwise order (strict hull).
pub fn hull_indices(points: &[Point2i]) -> Vec<u32> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    // Start from the lexicographically smallest point.
    let start = (0..n as u32).min_by_key(|&i| points[i as usize]).unwrap();
    let mut hull = vec![start];
    let mut cur = start;
    loop {
        // Candidate: the point such that all others are to the left of
        // cur -> candidate (ties: farthest wins so collinear mid-points are
        // skipped).
        let mut best: Option<u32> = None;
        for i in 0..n as u32 {
            if i == cur || points[i as usize] == points[cur as usize] {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    match orient2d(points[cur as usize], points[b as usize], points[i as usize]) {
                        Sign::Negative => best = Some(i),
                        Sign::Zero => {
                            // Collinear: keep the farther one.
                            let db = dist2(points[cur as usize], points[b as usize]);
                            let di = dist2(points[cur as usize], points[i as usize]);
                            if di > db {
                                best = Some(i);
                            }
                        }
                        Sign::Positive => {}
                    }
                }
            }
        }
        let next = match best {
            Some(b) => b,
            None => break, // all points coincide
        };
        if next == start {
            break;
        }
        hull.push(next);
        cur = next;
        assert!(hull.len() <= n, "gift wrapping failed to terminate");
    }
    hull
}

fn dist2(a: Point2i, b: Point2i) -> i128 {
    let dx = a.x as i128 - b.x as i128;
    let dy = a.y as i128 - b.y as i128;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::monotone_chain;
    use chull_geometry::generators;

    #[test]
    fn matches_monotone_chain() {
        for seed in 0..4u64 {
            let pts = generators::disk_2d(150, 1 << 16, seed);
            let mut gw = hull_indices(&pts);
            let mut mc = monotone_chain::hull_indices(&pts);
            gw.sort_unstable();
            mc.sort_unstable();
            assert_eq!(gw, mc, "seed {seed}");
        }
    }

    #[test]
    fn collinear_points_skipped() {
        use chull_geometry::Point2i;
        let pts = vec![
            Point2i::new(0, 0),
            Point2i::new(2, 0),
            Point2i::new(4, 0), // collinear on bottom edge
            Point2i::new(4, 4),
            Point2i::new(0, 4),
        ];
        let h = hull_indices(&pts);
        assert_eq!(h.len(), 4);
        assert!(!h.contains(&1));
    }

    #[test]
    fn single_and_duplicate_points() {
        use chull_geometry::Point2i;
        assert_eq!(hull_indices(&[Point2i::new(3, 3)]), vec![0]);
        let h = hull_indices(&[Point2i::new(1, 1), Point2i::new(1, 1)]);
        assert_eq!(h, vec![0]);
    }
}
