//! Engine-level metric handles: the paper-facing series.
//!
//! These histograms expose the quantities the paper's theorems bound —
//! dependence depth (Theorem 4.2: `D(G(S)) = O(log n)` whp) and
//! history-descent location cost — as live, continuously updated
//! series instead of one-shot `HullStats` fields. Registration is
//! lazy (first armed record); offline runs never pay more than one
//! relaxed load per site (see `chull_obs::armed`).

use chull_obs::{registry, Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Handles for the engine-side series; obtain via [`engine_metrics`].
pub struct EngineMetrics {
    /// Per-insert dependence depth of the online engine: the max depth
    /// over the facets one extending insert created. Its running max
    /// equals `OnlineHull::dep_depth`.
    pub online_insert_depth: Arc<Histogram>,
    /// History nodes visited per online insert (location cost; the
    /// paper's expected `O(log n)` descent).
    pub online_visited_nodes: Arc<Histogram>,
    /// Per-insert dependence depth in the sequential offline engine
    /// (Algorithm 2): the max depth over the facets one insertion
    /// created. Its running max equals `HullStats::dep_depth`.
    pub seq_insert_depth: Arc<Histogram>,
    /// `ProcessRidge` recursion depth per call in the parallel engine
    /// (Algorithm 3); its max is `HullStats::recursion_depth`.
    pub par_ridge_depth: Arc<Histogram>,
    /// Rounds executed by the prefix-doubling rounds engine.
    pub rounds_total: Arc<Counter>,
}

/// The process-global engine metric handles (registered on first use).
pub fn engine_metrics() -> &'static EngineMetrics {
    static M: OnceLock<EngineMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        EngineMetrics {
            online_insert_depth: r.histogram_with(
                "chull_insert_dep_depth",
                &[("engine", "online")],
                "Dependence depth added per extending insert; Theorem 4.2 bounds the max by sigma*H_n whp.",
            ),
            online_visited_nodes: r.histogram(
                "chull_insert_visited_nodes",
                "History nodes visited per online insert (expected O(log n) location cost).",
            ),
            seq_insert_depth: r.histogram_with(
                "chull_insert_dep_depth",
                &[("engine", "seq")],
                "Dependence depth added per extending insert; Theorem 4.2 bounds the max by sigma*H_n whp.",
            ),
            par_ridge_depth: r.histogram(
                "chull_process_ridge_depth",
                "ProcessRidge recursion depth per call in the parallel engine.",
            ),
            rounds_total: r.counter(
                "chull_rounds_total",
                "Synchronous rounds executed by the rounds engine.",
            ),
        }
    })
}
