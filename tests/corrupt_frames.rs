//! Corrupt-frame corpus: the wire decoder and the live server must
//! treat every malformed byte sequence as data, never as a crash.
//!
//! Two layers:
//!
//! * **decoder fuzz** — a seeded corpus of mutated frames (truncations,
//!   flipped bytes, forged length fields, appended garbage, pure noise)
//!   driven through `Request::decode` / `Response::decode`; every
//!   mutant must yield `Ok` or a typed `WireError`, never a panic;
//! * **live server** — a raw TCP peer sends garbage payloads (server
//!   replies `Error` and keeps the connection), stalls mid-header or
//!   mid-frame (server drops the connection within
//!   `request_timeout`, never pinning a thread), forges an
//!   oversized length prefix (dropped immediately), and slow-loris
//!   dribbles a frame one byte at a time — all while a healthy client
//!   on another connection keeps being served.
//!
//! Every live-server scenario runs against **both front ends**: the
//! default epoll event loop and the original thread-per-connection
//! loop (`ServeOptions::threaded`), which serves as the behavioral
//! oracle for the reactor rewrite.

use convex_hull_suite::geometry::rng::ChaCha8Rng;
use convex_hull_suite::service::wire::{
    read_frame, write_frame, Mutation, ReplUnit, Request, Response, ALL_SHARDS, MAX_FRAME,
};
use convex_hull_suite::service::{serve, HullClient, MutationBatch, ServeOptions, ServiceConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn corpus() -> Vec<Vec<u8>> {
    let reqs = [
        Request::Insert {
            shard: 0,
            point: vec![3, -4],
        },
        Request::Contains {
            shard: 1,
            point: vec![1, 2, 3],
        },
        Request::Extreme {
            shard: 0,
            direction: vec![1, 0],
        },
        Request::Stats { shard: ALL_SHARDS },
        Request::Snapshot { shard: 0 },
        Request::Flush { shard: 0 },
        Request::Shutdown,
        // v5 replication ops, bare and nested under the v4 tag wrapper.
        Request::ReplSubscribe {
            shard: 0,
            from_index: 3,
        },
        Request::ReplAck { shard: 0, index: 9 },
        Request::Tagged {
            id: 77,
            inner: Box::new(Request::ReplSubscribe {
                shard: 1,
                from_index: 0,
            }),
        },
        // v6 mutation envelope (all three mutation kinds) and the typed
        // replication fetch, bare and under the tag wrapper.
        Request::Mutate {
            shard: 0,
            muts: vec![
                Mutation::Insert(vec![5, 5]),
                Mutation::Delete(vec![3, -4]),
                Mutation::Expire(2),
            ],
        },
        Request::ReplUnitFetch {
            shard: 1,
            from_index: 4,
        },
        Request::Tagged {
            id: 12,
            inner: Box::new(Request::Mutate {
                shard: 0,
                muts: vec![Mutation::Insert(vec![1, 1])],
            }),
        },
    ];
    let resps = [
        Response::Inserted,
        Response::Bool(true),
        Response::VisibleCount(7),
        Response::Extreme {
            vertex: 2,
            coords: vec![5, 6],
        },
        Response::Stats("{\"requests\":3}".to_string()),
        Response::Snapshot {
            epoch: 4,
            dim: 2,
            points: vec![0, 0, 9, 0, 0, 9],
            facets: vec![0, 1, 1, 2, 0, 2],
        },
        Response::Flushed { epoch: 11 },
        Response::Overloaded,
        Response::NotReady,
        Response::Degraded {
            generation: 2,
            inner: Box::new(Response::Bool(false)),
        },
        Response::Error("nope".to_string()),
        // v5 replication replies and the Stale staleness wrapper, at
        // every legal nesting depth (Tagged ⊃ Stale ⊃ Degraded).
        Response::ReplBatch {
            index: 2,
            total: 5,
            dim: 2,
            points: vec![1, 2, 3, 4],
        },
        Response::ReplAcked { lag: 3 },
        Response::Stale {
            lag: 4,
            inner: Box::new(Response::Bool(true)),
        },
        Response::Stale {
            lag: 1,
            inner: Box::new(Response::Degraded {
                generation: 2,
                inner: Box::new(Response::VisibleCount(1)),
            }),
        },
        Response::Tagged {
            id: 9,
            inner: Box::new(Response::Stale {
                lag: 2,
                inner: Box::new(Response::Bool(false)),
            }),
        },
        // v6 replies: the per-mutation accepted bitmap and both typed
        // replication unit shapes.
        Response::Mutated {
            accepted: vec![true, false, true],
            epoch: 6,
        },
        Response::ReplUnit {
            index: 1,
            total: 3,
            dim: 2,
            unit: ReplUnit::Ops {
                inserts: vec![vec![1, 2]],
                tombstones: vec![vec![3, 4]],
            },
        },
        Response::ReplUnit {
            index: 3,
            total: 3,
            dim: 2,
            unit: ReplUnit::Checkpoint {
                units_after: 3,
                survivors: vec![vec![0, 0], vec![9, 9]],
            },
        },
    ];
    let mut out: Vec<Vec<u8>> = reqs.iter().map(|r| r.encode()).collect();
    out.extend(resps.iter().map(|r| r.encode()));
    out
}

/// One seeded mutation: truncate, flip a byte, forge a 4-byte length
/// window, append garbage, or replace with pure noise.
fn mutate(rng: &mut ChaCha8Rng, base: &[u8]) -> Vec<u8> {
    let mut b = base.to_vec();
    match rng.next_u64() % 5 {
        0 => {
            let k = rng.next_u64() as usize % (b.len() + 1);
            b.truncate(k);
        }
        1 => {
            if !b.is_empty() {
                let i = rng.next_u64() as usize % b.len();
                b[i] ^= (rng.next_u64() as u8) | 1;
            }
        }
        2 => {
            if b.len() >= 4 {
                let i = rng.next_u64() as usize % (b.len() - 3);
                let forged = (u32::MAX - (rng.next_u64() as u32 % 1024)).to_le_bytes();
                b[i..i + 4].copy_from_slice(&forged);
            }
        }
        3 => {
            for _ in 0..(rng.next_u64() % 9) {
                b.push(rng.next_u64() as u8);
            }
        }
        _ => {
            let len = rng.next_u64() as usize % 64;
            b = (0..len).map(|_| rng.next_u64() as u8).collect();
        }
    }
    b
}

#[test]
fn decode_never_panics_on_seeded_corrupt_corpus() {
    let corpus = corpus();
    let mut rejected = 0u64;
    for seed in [0xF0CC_0001u64, 0xF0CC_0002, 0xF0CC_0003] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..1500 {
            let base = &corpus[rng.next_u64() as usize % corpus.len()];
            let m = mutate(&mut rng, base);
            let outcome = std::panic::catch_unwind(|| {
                let a = Request::decode(&m).is_err();
                let b = Response::decode(&m).is_err();
                (a, b)
            });
            match outcome {
                Ok((req_err, resp_err)) => {
                    if req_err && resp_err {
                        rejected += 1;
                    }
                }
                Err(_) => panic!("decode panicked on seed {seed:#x} round {round}: {m:02x?}"),
            }
        }
    }
    // Sanity: the corpus actually exercises the error paths.
    assert!(rejected > 1000, "only {rejected} mutants were rejected");
}

fn server(request_timeout: Duration, threaded: bool) -> convex_hull_suite::service::ServerHandle {
    serve(ServeOptions {
        config: ServiceConfig {
            dim: 2,
            shards: 1,
            queue_capacity: 64,
            max_batch: 16,
            workers: 2,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        request_timeout,
        threaded,
        ..Default::default()
    })
    .unwrap()
}

/// Run `scenario` against both serving front ends.
fn on_both_backends(scenario: impl Fn(bool)) {
    for threaded in [false, true] {
        scenario(threaded);
    }
}

/// Assert the healthy path still works end to end on a fresh connection.
fn assert_healthy(addr: std::net::SocketAddr) {
    let mut c = HullClient::builder(addr.to_string()).connect().unwrap();
    for p in [[0, 0], [10, 0], [0, 10], [10, 10]] {
        c.mutate(0, MutationBatch::new().insert(p)).unwrap();
    }
    c.flush(0).unwrap();
    assert_eq!(c.contains(0, &[5, 5]).unwrap(), Some(true));
}

/// Block until the server closes `s`; returns how long it took.
fn wait_for_close(s: &mut TcpStream) -> Duration {
    let t0 = Instant::now();
    s.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    let mut buf = [0u8; 64];
    loop {
        match s.read(&mut buf) {
            Ok(0) => return t0.elapsed(),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                assert!(
                    t0.elapsed() < Duration::from_secs(10),
                    "server never dropped the connection"
                );
            }
            Err(_) => return t0.elapsed(),
        }
    }
}

#[test]
fn garbage_payload_gets_error_reply_and_connection_survives() {
    on_both_backends(garbage_payload_scenario);
}

fn garbage_payload_scenario(threaded: bool) {
    let mut server = server(Duration::from_secs(2), threaded);
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    // Complete frames whose payloads are protocol nonsense: the server
    // must reply `Error` (typed decode failure) and keep the session.
    for garbage in [
        &[0xEEu8, 0xFF, 0x00, 0x13, 0x37][..],
        &[],
        &[0x01, 0x00],                   // Insert opcode, truncated before the point
        &[0x02, 0x00, 0x00, 0x01, 0xAA], // Contains with dim 1
    ] {
        write_frame(&mut s, garbage).unwrap();
        let payload = read_frame(&mut s).unwrap().expect("reply frame");
        let resp = Response::decode(&payload).unwrap();
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
    }
    // Same connection, now a well-formed request: still served.
    write_frame(&mut s, &Request::Stats { shard: ALL_SHARDS }.encode()).unwrap();
    let payload = read_frame(&mut s).unwrap().expect("stats frame");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Stats(_)
    ));
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn partial_header_dropped_within_request_timeout() {
    on_both_backends(partial_header_scenario);
}

fn partial_header_scenario(threaded: bool) {
    let timeout = Duration::from_millis(300);
    let mut server = server(timeout, threaded);
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    // Two of four header bytes, then silence: a started frame must
    // complete within `request_timeout` or the connection is dropped.
    s.write_all(&[7, 0]).unwrap();
    let waited = wait_for_close(&mut s);
    assert!(
        waited < timeout + Duration::from_secs(5),
        "stalled peer pinned its connection thread for {waited:?}"
    );
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn mid_frame_eof_drops_connection_cleanly() {
    on_both_backends(mid_frame_eof_scenario);
}

fn mid_frame_eof_scenario(threaded: bool) {
    let mut server = server(Duration::from_secs(2), threaded);
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    // Header promises 100 payload bytes; deliver 10, then half-close.
    s.write_all(&100u32.to_le_bytes()).unwrap();
    s.write_all(&[0xAB; 10]).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let waited = wait_for_close(&mut s);
    assert!(
        waited < Duration::from_secs(5),
        "EOF mid-frame hung: {waited:?}"
    );
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_drops_connection() {
    on_both_backends(oversized_prefix_scenario);
}

fn oversized_prefix_scenario(threaded: bool) {
    let mut server = server(Duration::from_secs(2), threaded);
    let addr = server.local_addr();
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    let waited = wait_for_close(&mut s);
    assert!(
        waited < Duration::from_secs(5),
        "oversized prefix not rejected promptly: {waited:?}"
    );
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn slow_loris_dribbler_reaped_without_stalling_healthy_clients() {
    on_both_backends(slow_loris_scenario);
}

/// Slow-loris: a peer dribbles a *valid* frame one byte at a time, too
/// slowly to ever finish within `request_timeout`. The server must reap
/// the dribbler once its partial frame overstays the deadline, and a
/// healthy client hammering the same server concurrently must never
/// notice (no stalled accept loop, no pinned dispatcher).
fn slow_loris_scenario(threaded: bool) {
    let timeout = Duration::from_millis(300);
    let mut server = server(timeout, threaded);
    let addr = server.local_addr();

    // Healthy traffic on its own thread for the duration of the attack.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let healthy = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = HullClient::builder(addr.to_string()).connect().unwrap();
            let mut slowest = Duration::ZERO;
            let mut calls = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let t0 = Instant::now();
                c.mutate(
                    0,
                    MutationBatch::new().insert([calls as i64 % 50, (calls / 50) as i64 % 50]),
                )
                .unwrap();
                slowest = slowest.max(t0.elapsed());
                calls += 1;
            }
            (calls, slowest)
        })
    };

    // The dribbler: a legitimate Stats frame, one byte every 100 ms —
    // never idle long enough to look dead, never fast enough to finish.
    let frame = {
        let payload = Request::Stats { shard: ALL_SHARDS }.encode();
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(&payload);
        f
    };
    let mut s = TcpStream::connect(addr).unwrap();
    let t0 = Instant::now();
    let mut reaped = None;
    'dribble: for _ in 0..3 {
        // Up to 3 passes over the frame in case one dribble completes.
        for b in &frame {
            if s.write_all(std::slice::from_ref(b)).is_err() {
                reaped = Some(t0.elapsed());
                break 'dribble;
            }
            std::thread::sleep(Duration::from_millis(100));
            // A send can succeed into the socket buffer after the server
            // closed; poll the read side to observe the close promptly.
            s.set_read_timeout(Some(Duration::from_millis(1))).unwrap();
            let mut buf = [0u8; 16];
            let closed = match s.read(&mut buf) {
                Ok(0) => true,
                Ok(_) => false,
                Err(e) => !matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
            };
            if closed {
                reaped = Some(t0.elapsed());
                break 'dribble;
            }
        }
    }
    let reaped = reaped.unwrap_or_else(|| wait_for_close(&mut s));
    assert!(
        reaped < Duration::from_secs(10),
        "slow-loris peer survived {reaped:?} (threaded={threaded})"
    );

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (calls, slowest) = healthy.join().unwrap();
    assert!(calls > 0, "healthy client made no progress");
    assert!(
        slowest < Duration::from_secs(5),
        "healthy client stalled for {slowest:?} behind the dribbler (threaded={threaded})"
    );
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn repl_garbage_and_stale_acks_never_stall_replication() {
    on_both_backends(repl_garbage_scenario);
}

/// v5 replication ops under attack: malformed `ReplSubscribe`/`ReplAck`
/// payloads get typed `Error` replies (no panic, connection kept), a
/// stale ack absurdly past the journal is clamped rather than trusted,
/// and a healthy subscriber on another connection keeps shipping units
/// throughout.
fn repl_garbage_scenario(threaded: bool) {
    let mut server = server(Duration::from_secs(2), threaded);
    let addr = server.local_addr();
    // Seed one journal batch unit so there is something to ship.
    let mut c = HullClient::builder(addr.to_string()).connect().unwrap();
    for p in [[0, 0], [9, 0], [0, 9]] {
        c.mutate(0, MutationBatch::new().insert(p)).unwrap();
    }
    c.flush(0).unwrap();

    let mut s = TcpStream::connect(addr).unwrap();
    for garbage in [
        &[0x10u8][..],             // ReplSubscribe, no body
        &[0x10, 0x00, 0x00, 0x01], // truncated from_index
        &[0x11, 0xFF, 0xFF],       // ReplAck, index missing
        // Well-formed ReplSubscribe body plus trailing junk.
        &[
            0x10, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x77,
        ],
    ] {
        write_frame(&mut s, garbage).unwrap();
        let payload = read_frame(&mut s).unwrap().expect("reply frame");
        let resp = Response::decode(&payload).unwrap();
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
    }
    // A stale/lying ack far past the journal is clamped to the unit
    // count — the primary's lag gauge must not go negative or wrap.
    write_frame(
        &mut s,
        &Request::ReplAck {
            shard: 0,
            index: u64::MAX,
        }
        .encode(),
    )
    .unwrap();
    let payload = read_frame(&mut s).unwrap().expect("ack reply");
    match Response::decode(&payload).unwrap() {
        Response::ReplAcked { lag } => assert_eq!(lag, 0, "clamped ack must show zero lag"),
        other => panic!("stale ack answered {other:?}"),
    }

    // Healthy subscriber on a fresh connection: units still ship, and
    // asking from the end reads as caught-up, not an error.
    let (index, total, dim, flat) = c.repl_fetch(0, 0).unwrap();
    assert_eq!(index, 0);
    assert!(total >= 1, "no units shipped (total {total})");
    assert_eq!(dim, 2);
    assert!(!flat.is_empty(), "first unit empty");
    let (i2, t2, _, flat2) = c.repl_fetch(0, total).unwrap();
    assert_eq!((i2, t2), (total, total));
    assert!(flat2.is_empty(), "caught-up fetch returned points");
    assert_healthy(addr);
    server.shutdown();
}

#[test]
fn mutate_garbage_and_bad_envelopes_never_stall_ingest() {
    on_both_backends(mutate_garbage_scenario);
}

/// v6 ingest ops under attack: malformed `Mutate`/`ReplUnitFetch`
/// payloads — truncated envelopes, absurd mutation counts, unknown
/// mutation tags, wrong-dimension rows — get typed `Error` replies (no
/// panic, connection kept), and a healthy v6 client on another
/// connection keeps mutating and pulling typed units throughout.
fn mutate_garbage_scenario(threaded: bool) {
    let mut server = server(Duration::from_secs(2), threaded);
    let addr = server.local_addr();
    // Seed one unit with a tombstone so the typed fetch ships both vecs.
    let mut c = HullClient::builder(addr.to_string()).connect().unwrap();
    c.mutate(
        0,
        MutationBatch::new()
            .insert([0, 0])
            .insert([9, 0])
            .insert([0, 9])
            .insert([4, 4])
            .delete([4, 4]),
    )
    .unwrap();
    c.flush(0).unwrap();

    let mut s = TcpStream::connect(addr).unwrap();
    for garbage in [
        &[0x12u8][..],                                     // Mutate, no body
        &[0x12, 0x00, 0x00],                               // shard but no count
        &[0x12, 0x00, 0x00, 0xFF, 0xFF, 0xFF, 0xFF],       // absurd count, no muts
        &[0x12, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x09], // unknown mutation tag
        // Well-formed envelope whose row has 3 coordinates on a dim-2
        // shard: decodes fine, rejected by validation.
        &Request::Mutate {
            shard: 0,
            muts: vec![Mutation::Insert(vec![1, 2, 3])],
        }
        .encode()[..],
        &[0x13u8][..],             // ReplUnitFetch, no body
        &[0x13, 0x00, 0x00, 0x01], // truncated from_index
    ] {
        write_frame(&mut s, garbage).unwrap();
        let payload = read_frame(&mut s).unwrap().expect("reply frame");
        let resp = Response::decode(&payload).unwrap();
        assert!(matches!(resp, Response::Error(_)), "{resp:?}");
    }

    // Healthy v6 traffic on a fresh connection: the envelope still
    // lands, and the typed fetch ships the seeded tombstone unit.
    let mut h = HullClient::builder(addr.to_string()).connect().unwrap();
    h.mutate(0, MutationBatch::new().insert([9, 9])).unwrap();
    h.flush(0).unwrap();
    let (index, total, dim, _) = h.repl_unit_fetch(0, 0).unwrap();
    assert_eq!(index, 0);
    assert!(total >= 1, "no units shipped (total {total})");
    assert_eq!(dim, 2);
    // Queue coalescing decides how the envelope splits into units; walk
    // them all and demand the tombstone shipped typed from one of them.
    let mut all_inserts = 0usize;
    let mut all_tombstones: Vec<Vec<i64>> = Vec::new();
    for i in 0..total {
        match h.repl_unit_fetch(0, i).unwrap().3 {
            ReplUnit::Ops {
                inserts,
                tombstones,
            } => {
                all_inserts += inserts.len();
                all_tombstones.extend(tombstones);
            }
            other => panic!("expected an ops unit at {i}, got {other:?}"),
        }
    }
    assert_eq!(all_inserts, 5, "every acked insert must ship");
    assert_eq!(all_tombstones, vec![vec![4, 4]], "tombstone not shipped");
    assert_healthy(addr);
    server.shutdown();
}
