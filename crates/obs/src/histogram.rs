//! Log₂-bucketed histograms over `u64` with exact side-totals.
//!
//! Bucket `i` holds values whose bit length is `i`: bucket 0 is exactly
//! `{0}`, bucket `i ≥ 1` covers `[2^(i-1), 2^i)`, and bucket 64 tops
//! out at `u64::MAX`. 65 buckets therefore cover all of `u64` with at
//! most 2× relative error on any quantile — ample for checking a
//! `O(log n)` whp bound or reading tail latencies, while keeping
//! `record` to two relaxed `fetch_add`s plus a `fetch_max`.
//!
//! `sum`, `count` and `max` are carried exactly (not reconstructed from
//! buckets), so folded totals match striped-counter semantics: exact at
//! quiescence. Snapshots are plain arrays — mergeable (bucketwise add)
//! and diffable (bucketwise subtract) for per-workload windows.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0, then one per bit length 1..=64.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: `0` for 0, else the bit length of `v`
/// (so 1 → 1, 2..=3 → 2, …, `u64::MAX` → 64).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`, saturating to
/// `u64::MAX` for bucket 64).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A concurrent log₂ histogram. `record` is wait-free and a no-op
/// while disarmed; `snapshot` is exact once writers have quiesced.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (no-op while disarmed). `sum` wraps on
    /// overflow rather than poisoning the whole series.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::armed() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of every bucket and side-total.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain-data copy of a [`Histogram`]: mergeable, diffable, and
/// queryable for quantiles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
    /// Exact sum of observations (wrapping).
    pub sum: u64,
    /// Exact number of observations.
    pub count: u64,
    /// Largest observation.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            count: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold `other` into `self` (bucketwise add; associative and
    /// commutative, so shard-level snapshots fold in any order).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// Observations recorded since `earlier` (bucketwise saturating
    /// subtract). `max` is not diffable — the window's max is unknown
    /// once superseded — so the later snapshot's max is kept as an
    /// upper bound.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.wrapping_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
            max: self.max,
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`: the inclusive upper
    /// bound of the bucket where the cumulative count crosses
    /// `ceil(q · count)`, clamped to the observed [`max`]. 0 when
    /// empty. The clamp makes `quantile(1.0)` exact.
    ///
    /// [`max`]: HistogramSnapshot::max
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation (0.0 when empty). Meaningless if `sum` has
    /// wrapped.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 32) - 1), 32);
        assert_eq!(bucket_index(1 << 32), 33);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn extremes_round_trip() {
        crate::arm();
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX); // 0 + MAX, no wrap
        assert_eq!(s.quantile(1.0), u64::MAX);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn quantiles_clamped_to_max() {
        crate::arm();
        let h = Histogram::new();
        for v in [5u64, 6, 7, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 lands in bucket 3 (4..=7); p100 clamps to the exact max.
        assert_eq!(s.quantile(0.5), 7);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 118);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        crate::arm();
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 7, 1000]);
        let b = mk(&[u64::MAX, 3]);
        let c = mk(&[42, 42, 42]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba);
    }

    #[test]
    fn delta_since_isolates_a_window() {
        crate::arm();
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(20);
        h.record(30);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 50);
    }
}
