//! Batched-serve identity: points streamed through the v2 `InsertBatch`
//! wire op, coalesced by the shard queue, and applied as **parallel**
//! batch inserts (Algorithm 3's `ProcessRidge` recursion on a worker
//! pool) must produce hulls **bit-identical** to the offline sequential
//! Algorithm 2 — for any worker count — and identical to the original
//! single-insert serving path. Also covered: v1 and v2 clients sharing
//! one server, and chaos recovery replaying journaled batch units with
//! monotone epochs.
//!
//! The failpoint registry is process-global and an armed schedule would
//! leak worker panics into unrelated servers in this binary, so every
//! test takes one shared lock.

// This binary's whole point is driving the pre-v6 insert entry points
// (v1 per-point, v2 `InsertBatch`) against the unified serving path, so
// it keeps calling the deprecated `insert*` shims on purpose.
#![allow(deprecated)]

use convex_hull_suite::concurrent::failpoint::{self, sites, FaultPlan, SiteSpec};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::geometry::{generators, PointSet};
use convex_hull_suite::service::wire::{CAP_INSERT_BATCH, PROTOCOL_V1, PROTOCOL_V2};
use convex_hull_suite::service::{
    serve, HullClient, RetryPolicy, ServeOptions, ServiceConfig, SnapshotReply,
};
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn test_lock() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

fn opts(dim: usize, workers: usize) -> ServeOptions {
    ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 1024,
            max_batch: 128,
            workers,
            wal_dir: None,
            bulk_threshold: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A hull as an order-free set of facets, each facet the sorted list of
/// its vertices' coordinate rows (vertex ids differ between runs with
/// different insertion orders; coordinates cannot).
fn canonical(facets: impl Iterator<Item = Vec<Vec<i64>>>) -> BTreeSet<Vec<Vec<i64>>> {
    facets
        .map(|mut f| {
            f.sort();
            f
        })
        .collect()
}

fn canonical_offline(pts: &PointSet) -> BTreeSet<Vec<Vec<i64>>> {
    let run = incremental_hull_run(pts);
    let dim = pts.dim();
    canonical(run.output.facets.iter().map(|f| {
        f[..dim]
            .iter()
            .map(|&v| pts.point(v as usize).to_vec())
            .collect()
    }))
}

fn canonical_served(snap: &SnapshotReply) -> BTreeSet<Vec<Vec<i64>>> {
    canonical(
        snap.facets
            .iter()
            .map(|f| f.iter().map(|&v| snap.points[v as usize].clone()).collect()),
    )
}

fn rows_of(pts: &PointSet) -> Vec<Vec<i64>> {
    (0..pts.len()).map(|i| pts.point(i).to_vec()).collect()
}

/// Stream `rows` into shard 0 as `chunk`-sized `InsertBatch` frames from
/// `clients` concurrent v2 connections, then snapshot.
fn serve_batched(
    dim: usize,
    rows: &[Vec<i64>],
    workers: usize,
    chunk: usize,
    clients: usize,
) -> SnapshotReply {
    let mut server = serve(opts(dim, workers)).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
                // Default negotiation lands on the newest version (v3 at
                // this writing); batched frames need v2 or later.
                assert!(client.negotiated_version() >= PROTOCOL_V2);
                let mine: Vec<Vec<i64>> = rows.iter().skip(c).step_by(clients).cloned().collect();
                let mut last_epoch = 0;
                for batch in mine.chunks(chunk) {
                    let reply = client.insert_batch(0, batch).unwrap();
                    assert!(
                        reply.epoch >= last_epoch,
                        "epochs observed by one client must be monotone"
                    );
                    last_epoch = reply.epoch;
                }
            });
        }
    });
    let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
    client.flush(0).unwrap();
    let snap = client.snapshot(0).unwrap();
    server.shutdown();
    snap
}

/// The original (PR-2) serving path: per-point inserts over v1 framing.
fn serve_single_insert(dim: usize, rows: &[Vec<i64>]) -> SnapshotReply {
    let mut server = serve(opts(dim, 1)).unwrap();
    let addr = server.local_addr();
    let mut client = HullClient::builder(addr.to_string())
        .protocol_ceiling(PROTOCOL_V1)
        .connect()
        .unwrap();
    assert_eq!(client.negotiated_version(), PROTOCOL_V1);
    let policy = RetryPolicy::default();
    for row in rows {
        client.insert_retry(0, row, &policy).unwrap();
    }
    client.flush(0).unwrap();
    let snap = client.snapshot(0).unwrap();
    server.shutdown();
    snap
}

fn batched_matches_everything(dim: usize, pts: PointSet) {
    let rows = rows_of(&pts);
    let offline = canonical_offline(&pts);
    let single = canonical_served(&serve_single_insert(dim, &rows));
    assert_eq!(
        single, offline,
        "dim {dim}: single-insert serve differs from offline Algorithm 2"
    );
    for workers in [1, 2, 4] {
        let snap = serve_batched(dim, &rows, workers, 48, 2);
        assert_eq!(
            snap.points.len(),
            rows.len(),
            "dim {dim} workers {workers}: every batched point must be applied"
        );
        let served = canonical_served(&snap);
        assert_eq!(
            served, offline,
            "dim {dim} workers {workers}: batched serve differs from offline Algorithm 2"
        );
        assert_eq!(
            served, single,
            "dim {dim} workers {workers}: batched serve differs from single-insert serve"
        );
    }
}

#[test]
fn batched_serve_matches_offline_2d() {
    let _g = test_lock();
    batched_matches_everything(2, generators::cube_d(2, 600, 1_000_000, 7));
}

#[test]
fn batched_serve_matches_offline_3d() {
    let _g = test_lock();
    batched_matches_everything(3, generators::ball_d(3, 400, 1_000_000, 11));
}

/// A v1 client (no handshake, single inserts) and a v2 client (batched
/// frames) interleaving on one server still land the exact offline hull,
/// and the handshake reports the negotiated window faithfully.
#[test]
fn mixed_v1_and_v2_clients_share_a_server() {
    let _g = test_lock();
    let pts = generators::near_sphere_d(2, 500, 1_000_000, 29);
    let rows = rows_of(&pts);
    let mut server = serve(opts(2, 0)).unwrap();
    let addr = server.local_addr();
    std::thread::scope(|s| {
        let v1_rows: Vec<&Vec<i64>> = rows.iter().step_by(2).collect();
        let v2_rows: Vec<Vec<i64>> = rows.iter().skip(1).step_by(2).cloned().collect();
        s.spawn(move || {
            let mut c = HullClient::builder(addr.to_string())
                .protocol_ceiling(PROTOCOL_V1)
                .connect()
                .unwrap();
            assert_eq!(c.negotiated_version(), PROTOCOL_V1);
            assert_eq!(c.caps(), 0);
            let policy = RetryPolicy::default();
            for row in v1_rows {
                c.insert_retry(0, row, &policy).unwrap();
            }
        });
        s.spawn(move || {
            let mut c = HullClient::builder(addr.to_string())
                .protocol_floor(PROTOCOL_V2)
                .protocol_ceiling(PROTOCOL_V2)
                .connect()
                .unwrap();
            assert_eq!(c.negotiated_version(), PROTOCOL_V2);
            assert_ne!(c.caps() & CAP_INSERT_BATCH, 0);
            for batch in v2_rows.chunks(40) {
                c.insert_batch(0, batch).unwrap();
            }
        });
    });
    let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
    client.flush(0).unwrap();
    let snap = client.snapshot(0).unwrap();
    assert_eq!(snap.points.len(), rows.len());
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "mixed v1+v2 ingest differs from offline Algorithm 2"
    );
    server.shutdown();
}

/// Pull one numeric counter out of a stats JSON line.
fn grab(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("stats json missing {key}: {json}"))
        + pat.len();
    json[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("stats counter is a number")
}

/// Chaos re-run with batched ingest: a seeded schedule kills the worker
/// mid-apply; the supervisor replays the journal **in batch units**
/// through the same parallel path. The recovered hull must be
/// bit-identical to offline Algorithm 2, and epochs stay monotone
/// through the kill (one epoch per journaled batch unit).
#[test]
fn chaos_kill_with_batched_ingest_recovers_bit_identical() {
    let _g = test_lock();
    let n = 360;
    let pts = generators::cube_d(3, n, 1_000_000, 0xC4);
    let rows = rows_of(&pts);
    let mut server = serve(opts(3, 4)).unwrap();
    let addr = server.local_addr();
    failpoint::arm(FaultPlan::new(0xBA7C_5EED).site(
        sites::SHARD_APPLY,
        SiteSpec {
            panic_every: 97,
            max_fires: 2,
            ..SiteSpec::default()
        },
    ));
    let mut epochs = Vec::new();
    {
        let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
        for batch in rows.chunks(24) {
            let mut attempts = 0;
            loop {
                match client.insert_batch(0, batch) {
                    Ok(reply) => {
                        epochs.push(reply.epoch);
                        break;
                    }
                    Err(e) => {
                        attempts += 1;
                        assert!(attempts < 100, "batch insert kept failing under chaos: {e}");
                        client = HullClient::builder(addr.to_string()).connect().unwrap();
                    }
                }
            }
        }
        // Drain through the armed failpoints so the kills (and their
        // batch-unit replays) deterministically happen before disarm.
        epochs.push(client.flush(0).unwrap());
    }
    failpoint::disarm();
    let mut client = HullClient::builder(addr.to_string()).connect().unwrap();
    let snap = client.snapshot(0).unwrap();
    assert_eq!(
        snap.points.len(),
        n,
        "every acked batch point must survive the worker kills"
    );
    assert_eq!(
        canonical_served(&snap),
        canonical_offline(&pts),
        "batch-replayed hull differs from offline Algorithm 2"
    );
    assert!(
        epochs.windows(2).all(|w| w[0] <= w[1]),
        "epochs must be monotone through recovery: {epochs:?}"
    );
    let stats = client.stats(Some(0)).unwrap();
    assert!(
        grab(&stats, "recoveries") >= 1,
        "schedule never killed the worker: {stats}"
    );
    assert_eq!(grab(&stats, "batched_inserts"), n as u64, "{stats}");
    // The fairness-bounded drain loop surfaces its continuation rounds.
    let _ = grab(&stats, "queue_drain_rounds");
    server.shutdown();
}
