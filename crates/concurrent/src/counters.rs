//! Low-overhead concurrent statistics counters.
//!
//! The instrumented hull runs count visibility tests, facet creations,
//! burials, etc. from inside tight parallel loops. A single shared atomic
//! would serialize on the cache line, so [`StripedCounter`] shards the count
//! over cache-line-padded cells indexed by thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of stripes (power of two).
const STRIPES: usize = 16;

/// A cache-line padded atomic cell.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// A sharded monotone counter: `add` is contention-free across threads,
/// `sum` folds all stripes (call it after the parallel phase).
pub struct StripedCounter {
    cells: [PaddedU64; STRIPES],
}

impl StripedCounter {
    /// A zeroed counter.
    pub fn new() -> StripedCounter {
        StripedCounter {
            cells: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    #[inline]
    fn stripe() -> usize {
        // Hash the thread id onto a stripe; stable within a thread.
        use std::hash::BuildHasher;
        thread_local! {
            static STRIPE: usize = {
                let bh = std::collections::hash_map::RandomState::new();
                (bh.hash_one(std::thread::current().id()) as usize) % STRIPES
            };
        }
        STRIPE.with(|s| *s)
    }

    /// Add `v` to the counter.
    #[inline]
    pub fn add(&self, v: u64) {
        self.cells[Self::stripe()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Fold all stripes. Exact once concurrent writers have quiesced.
    pub fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl Default for StripedCounter {
    fn default() -> Self {
        Self::new()
    }
}

/// A monotone maximum tracker (e.g. deepest recursion observed).
pub struct AtomicMax(AtomicU64);

impl AtomicMax {
    /// A tracker starting at zero.
    pub fn new() -> AtomicMax {
        AtomicMax(AtomicU64::new(0))
    }

    /// Record `v`; keeps the running maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum recorded so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for AtomicMax {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn striped_counter_exact_after_join() {
        let c = Arc::new(StripedCounter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.sum(), 80_000);
    }

    #[test]
    fn striped_counter_add() {
        let c = StripedCounter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.sum(), 12);
    }

    #[test]
    fn atomic_max_tracks_maximum() {
        let m = Arc::new(AtomicMax::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.get(), 3999);
    }
}
