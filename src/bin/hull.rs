//! `hull` — a command-line convex hull tool over the suite.
//!
//! **Offline mode** (default): reads whitespace-separated integer
//! coordinates (one point per line) from a file or stdin, computes the
//! hull with the requested algorithm, and prints the hull facets (as
//! 0-based input indices) plus instrumentation.
//!
//! **Serving mode**: `hull serve` runs the long-lived `chull-service`
//! hull server (`--follow PRIMARY` turns it into a read-only follower
//! replica shipping the primary's journal); `hull route` fronts a
//! primary + followers with a consistent-hashing failover router;
//! `hull query` talks to any of them over the wire protocol;
//! `hull metrics` scrapes a server's telemetry (Prometheus text over
//! HTTP `/metrics` or the in-band wire `Metrics` op) and pretty-prints
//! it. `hull serve` and `hull route` shut down gracefully on
//! SIGTERM/SIGINT.
//!
//! ```text
//! USAGE: hull [--dim D] [--algo seq|par|rounds|chain] [--seed S]
//!             [--stats] [--stats-json] [FILE]
//!        hull serve [--addr H:P] [--dim D] [--shards N] [--queue-cap C]
//!                   [--batch B] [--workers W] [--wal DIR] [--bulk-threshold N]
//!                   [--window N | --window-epochs N] [--rebuild-ratio R]
//!                   [--journal-ratio R]
//!                   [--metrics-addr H:P] [--chaos-seed S] [--oneshot] [--stats-json]
//!                   [--threaded] [--dispatchers N]
//!                   [--follow PRIMARY] [--promote-after N]
//!        hull compact [--dim D] [--workers W] --wal DIR
//!        hull route [--addr H:P] [--probe-ms MS] NODE...
//!        hull query ADDR [--scan] OP [SHARD] [COORDS...]
//!          OP: insert|delete|expire|contains|visible|extreme|stats|snapshot|
//!              flush|metrics|shutdown|script  (script reads one OP line per
//!              stdin line; consecutive same-shard mutations ride one wire
//!              v6 Mutate envelope)
//!          --scan routes contains/visible/extreme through the server's
//!          linear-scan oracle ops (protocol v3) instead of history-graph
//!          point location — the A/B baseline for query benchmarks
//!        hull metrics [--raw] ADDR
//! ```
//!
//! Examples:
//! ```text
//! $ printf '0 0\n4 0\n0 4\n4 4\n2 2\n' | hull
//! $ hull --dim 3 --algo par --stats points3d.txt
//! $ hull serve --addr 127.0.0.1:4077 --metrics-addr 127.0.0.1:9107 &
//! $ hull query 127.0.0.1:4077 insert 0 3 4
//! $ hull query 127.0.0.1:4077 contains 0 1 1
//! $ hull metrics 127.0.0.1:9107          # or the wire addr: 127.0.0.1:4077
//! ```

use convex_hull_suite::core::baseline::monotone_chain;
use convex_hull_suite::core::context::prepare_points_with_perm;
use convex_hull_suite::core::par::rounds::rounds_hull;
use convex_hull_suite::core::par::{parallel_hull, ParOptions};
use convex_hull_suite::core::seq::incremental_hull_run;
use convex_hull_suite::core::{HullOutput, HullStats};
use convex_hull_suite::geometry::{Point2i, PointSet};
use convex_hull_suite::service::{
    route, serve, FollowOptions, HullClient, MutationBatch, RouterOptions, ServeOptions,
    WindowPolicy,
};
use std::io::Read;

/// Parsed command-line options.
#[derive(Debug, PartialEq, Eq)]
struct Options {
    dim: usize,
    algo: Algo,
    seed: u64,
    stats: bool,
    stats_json: bool,
    file: Option<String>,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Algo {
    Seq,
    Par,
    Rounds,
    Chain,
}

fn usage() -> ! {
    eprintln!(
        "USAGE: hull [--dim D] [--algo seq|par|rounds|chain] [--seed S] [--stats] [--stats-json] [FILE]\n\
         \x20      hull serve [--addr H:P] [--dim D] [--shards N] [--queue-cap C] [--batch B]\n\
         \x20                 [--workers W] [--wal DIR] [--bulk-threshold N] [--metrics-addr H:P]\n\
         \x20                 [--window N | --window-epochs N] [--rebuild-ratio R] [--journal-ratio R]\n\
         \x20                 [--chaos-seed S] [--oneshot] [--stats-json]\n\
         \x20                 [--threaded] [--dispatchers N] [--follow PRIMARY] [--promote-after N]\n\
         \x20        --workers W sizes the pool each shard applies batches with (0 = auto, 1 = sequential baseline);\n\
         \x20        --wal DIR persists per-shard insert WALs under DIR (crash-safe restart);\n\
         \x20        --bulk-threshold N rebuilds journals holding >= N inserts through the bulk\n\
         \x20        divide-and-conquer constructor at restart/recovery/follower bootstrap\n\
         \x20        (canonically identical hull, much faster; 0 = off, the bit-identical baseline);\n\
         \x20        --window N keeps only the newest N points per shard (sliding window: older\n\
         \x20        rows are tombstoned after every publication); --window-epochs N retires rows\n\
         \x20        older than N publication epochs instead; --rebuild-ratio R rebuilds the hull\n\
         \x20        from survivors once tombstoned entries exceed R x live rows (default 0.5);\n\
         \x20        --journal-ratio R auto-compacts the journal once it holds more than R ops per\n\
         \x20        live row (default 4.0, 0 = off);\n\
         \x20        --metrics-addr H:P serves Prometheus text on plain HTTP GET /metrics;\n\
         \x20        --chaos-seed S arms the canned fault-injection schedule (testing only);\n\
         \x20        --threaded uses the original thread-per-connection front end instead of the\n\
         \x20        default epoll event loop; --dispatchers N sizes the event loop's request\n\
         \x20        pool (0 = auto);\n\
         \x20        --follow PRIMARY runs a read-only follower replica shipping PRIMARY's journal\n\
         \x20        batch units (wire v5; incompatible with --wal — followers resync from the\n\
         \x20        primary); --promote-after N self-promotes to writable after N consecutive\n\
         \x20        failed resubscribes (0 = never)\n\
         \x20      hull compact [--dim D] [--workers W] --wal DIR\n\
         \x20        collapse each shard-*.wal under DIR into one bulk-built checkpoint unit:\n\
         \x20        strictly-interior points are pruned, the hull served after restart is\n\
         \x20        identical, epochs reset to 1 (followers must re-bootstrap)\n\
         \x20      hull route [--addr H:P] [--probe-ms MS] NODE...\n\
         \x20        consistent-hash reads across NODEs (first NODE = write primary), health-check\n\
         \x20        every MS ms, and fail over with Degraded-wrapped replies when a node dies\n\
         \x20      hull query ADDR [--scan] OP [SHARD] [COORDS...]\n\
         \x20        OP: insert|delete|contains|visible|extreme SHARD C1..CD\n\
         \x20            expire SHARD N (tombstone the N oldest live rows; delete/expire need a\n\
         \x20            v6 server) | stats [SHARD] | snapshot SHARD | flush SHARD | metrics |\n\
         \x20            shutdown | script (reads one OP line per stdin line, one connection)\n\
         \x20        --scan forces contains/visible/extreme down the linear-scan\n\
         \x20        oracle ops (wire v3) instead of history-graph point location\n\
         \x20      hull metrics [--raw] ADDR\n\
         \x20        scrape ADDR (HTTP /metrics, falling back to the wire Metrics op) and\n\
         \x20        pretty-print a sorted table; --raw emits the exposition text verbatim\n\
         Offline mode reads one point per line (D whitespace-separated integers); FILE defaults to stdin."
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        dim: 2,
        algo: Algo::Seq,
        seed: 42,
        stats: false,
        stats_json: false,
        file: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dim" => {
                opts.dim = it
                    .next()
                    .ok_or("--dim needs a value")?
                    .parse()
                    .map_err(|_| "bad --dim value")?;
            }
            "--algo" => {
                opts.algo = match it.next().ok_or("--algo needs a value")?.as_str() {
                    "seq" => Algo::Seq,
                    "par" => Algo::Par,
                    "rounds" => Algo::Rounds,
                    "chain" => Algo::Chain,
                    other => return Err(format!("unknown algorithm '{other}'")),
                };
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "bad --seed value")?;
            }
            "--stats" => opts.stats = true,
            "--stats-json" => opts.stats_json = true,
            "--help" | "-h" => return Err("help".to_string()),
            f if !f.starts_with('-') => {
                if opts.file.is_some() {
                    return Err("multiple input files".to_string());
                }
                opts.file = Some(f.to_string());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if opts.dim < 2 || opts.dim > 8 {
        return Err("--dim must be in 2..=8".to_string());
    }
    if opts.algo == Algo::Chain && opts.dim != 2 {
        return Err("--algo chain is 2D only".to_string());
    }
    if opts.algo == Algo::Chain && opts.stats_json {
        return Err("--stats-json needs an instrumented algorithm (not chain)".to_string());
    }
    Ok(opts)
}

/// Parse whitespace-separated integer points, one per line.
fn parse_points(input: &str, dim: usize) -> Result<PointSet, String> {
    let mut ps = PointSet::new(dim);
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let coords: Result<Vec<i64>, _> =
            line.split_whitespace().map(|t| t.parse::<i64>()).collect();
        let coords = coords.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if coords.len() != dim {
            return Err(format!(
                "line {}: expected {dim} coordinates, got {}",
                lineno + 1,
                coords.len()
            ));
        }
        ps.push(&coords);
    }
    if ps.len() < dim + 1 {
        return Err(format!(
            "need at least {} points for a {dim}D hull",
            dim + 1
        ));
    }
    Ok(ps)
}

fn print_output(
    out: &HullOutput,
    stats: Option<&HullStats>,
    stats_json: Option<&HullStats>,
    perm: Option<&[usize]>,
) {
    for f in &out.facets {
        let ids: Vec<String> = f[..out.dim]
            .iter()
            .map(|&v| match perm {
                Some(p) => p[v as usize].to_string(),
                None => v.to_string(),
            })
            .collect();
        println!("{}", ids.join(" "));
    }
    if let Some(s) = stats {
        eprintln!(
            "# n={} dim={} hull_facets={} facets_created={} visibility_tests={} dep_depth={} recursion_depth={} rounds={}",
            s.n,
            s.dim,
            s.hull_facets,
            s.facets_created,
            s.visibility_tests,
            s.dep_depth,
            s.recursion_depth,
            s.rounds
        );
        eprintln!(
            "# kernel: filter_hits={} i128_fallbacks={} bigint_fallbacks={}",
            s.filter_hits, s.i128_fallbacks, s.bigint_fallbacks
        );
    }
    if let Some(s) = stats_json {
        println!("{}", s.to_json());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("compact") => compact_main(&args[1..]),
        Some("route") => route_main(&args[1..]),
        Some("query") => query_main(&args[1..]),
        Some("metrics") => metrics_main(&args[1..]),
        _ => offline_main(&args),
    }
}

/// Bind `SIGTERM`/`SIGINT` to an eventfd and watch it from a thread:
/// when a signal lands, run `on_signal` (graceful shutdown) exactly
/// once. The handler itself only does async-signal-safe work (one
/// `write(2)`); everything else happens on the watcher thread. No-op
/// off Linux.
fn on_termination_signal(on_signal: impl FnOnce() + Send + 'static) {
    #[cfg(target_os = "linux")]
    {
        use convex_hull_suite::net::sys::{sys_poll, sys_termination_eventfd, PollFd, POLLIN};
        let efd = match sys_termination_eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                eprintln!("hull: cannot bind termination signals: {e}");
                return;
            }
        };
        std::thread::spawn(move || {
            // Rebind the whole guard: disjoint closure capture would
            // otherwise move only the `Copy` fd number in, drop the
            // guard at the end of `on_termination_signal`, and close
            // the eventfd under the poll (instant phantom POLLNVAL
            // wake-ups = spurious shutdowns).
            let efd = efd;
            let mut fds = [PollFd {
                fd: efd.0,
                events: POLLIN,
                revents: 0,
            }];
            loop {
                match sys_poll(&mut fds, -1) {
                    Ok(n) if n > 0 => break,
                    // EINTR (the signal interrupting poll itself): retry;
                    // the eventfd write still lands.
                    _ => continue,
                }
            }
            eprintln!("hull: termination signal received, shutting down");
            on_signal();
        });
    }
    #[cfg(not(target_os = "linux"))]
    let _ = on_signal;
}

fn offline_main(args: &[String]) {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
        }
    };
    let mut input = String::new();
    match &opts.file {
        Some(f) => {
            input = std::fs::read_to_string(f).unwrap_or_else(|e| {
                eprintln!("error reading {f}: {e}");
                std::process::exit(1);
            });
        }
        None => {
            std::io::stdin()
                .read_to_string(&mut input)
                .expect("reading stdin");
        }
    }
    let pts = parse_points(&input, opts.dim).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    if opts.algo == Algo::Chain {
        let raw: Vec<Point2i> = (0..pts.len())
            .map(|i| Point2i::new(pts.point(i)[0], pts.point(i)[1]))
            .collect();
        let out = monotone_chain::hull_output(&raw);
        print_output(&out, None, None, None);
        return;
    }

    // The incremental algorithms want a random insertion order; translate
    // facet indices back to the input order via the permutation.
    let (prepared, perm) = prepare_points_with_perm(&pts, opts.seed);
    let (output, stats) = match opts.algo {
        Algo::Seq => {
            let run = incremental_hull_run(&prepared);
            (run.output, run.stats)
        }
        Algo::Par => {
            let run = parallel_hull(&prepared, ParOptions::default());
            (run.output, run.stats)
        }
        Algo::Rounds => {
            let run = rounds_hull(&prepared, false);
            (run.output, run.stats)
        }
        Algo::Chain => unreachable!(),
    };
    print_output(
        &output,
        opts.stats.then_some(&stats),
        opts.stats_json.then_some(&stats),
        Some(&perm),
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn serve_main(args: &[String]) {
    let mut opts = ServeOptions {
        addr: "127.0.0.1:4077".to_string(),
        ..Default::default()
    };
    let mut stats_json = false;
    let mut chaos_seed: Option<u64> = None;
    let mut follow: Option<String> = None;
    let mut promote_after: Option<u32> = None;
    let mut it = args.iter();
    let next = |what: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{what} needs a value")))
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opts.addr = next("--addr", &mut it),
            "--dim" => {
                opts.config.dim = next("--dim", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --dim value"));
            }
            "--shards" => {
                opts.config.shards = next("--shards", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --shards value"));
            }
            "--queue-cap" => {
                opts.config.queue_capacity = next("--queue-cap", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --queue-cap value"));
            }
            "--batch" => {
                opts.config.max_batch = next("--batch", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --batch value"));
            }
            "--workers" => {
                opts.config.workers = next("--workers", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --workers value"));
            }
            "--wal" => {
                opts.config.wal_dir = Some(std::path::PathBuf::from(next("--wal", &mut it)));
            }
            "--bulk-threshold" => {
                opts.config.bulk_threshold = next("--bulk-threshold", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --bulk-threshold value"));
            }
            "--window" => {
                opts.config.window = WindowPolicy::Count(
                    next("--window", &mut it)
                        .parse()
                        .unwrap_or_else(|_| die("bad --window value")),
                );
            }
            "--window-epochs" => {
                opts.config.window = WindowPolicy::Epochs(
                    next("--window-epochs", &mut it)
                        .parse()
                        .unwrap_or_else(|_| die("bad --window-epochs value")),
                );
            }
            "--rebuild-ratio" => {
                opts.config.rebuild_ratio = next("--rebuild-ratio", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --rebuild-ratio value"));
            }
            "--journal-ratio" => {
                opts.config.journal_ratio = next("--journal-ratio", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --journal-ratio value"));
            }
            "--metrics-addr" => {
                opts.metrics_addr = Some(next("--metrics-addr", &mut it));
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    next("--chaos-seed", &mut it)
                        .parse()
                        .unwrap_or_else(|_| die("bad --chaos-seed value")),
                );
            }
            "--follow" => follow = Some(next("--follow", &mut it)),
            "--promote-after" => {
                promote_after = Some(
                    next("--promote-after", &mut it)
                        .parse()
                        .unwrap_or_else(|_| die("bad --promote-after value")),
                );
            }
            "--threaded" => opts.threaded = true,
            "--dispatchers" => {
                opts.dispatchers = next("--dispatchers", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --dispatchers value"));
            }
            "--oneshot" => opts.oneshot = true,
            "--stats-json" => stats_json = true,
            "--help" | "-h" => usage(),
            other => die(&format!("unknown serve flag '{other}'")),
        }
    }
    if opts.config.dim < 2 || opts.config.dim > 8 {
        die("--dim must be in 2..=8");
    }
    if opts.config.shards == 0 || opts.config.shards > u16::MAX as usize {
        die("--shards must be in 1..=65535");
    }
    if let Some(primary) = follow {
        if opts.config.wal_dir.is_some() {
            die(
                "follower replicas resync from the primary on restart; --wal is primary-only \
                 (a stale follower WAL would skew the batch-index mirror)",
            );
        }
        if !matches!(opts.config.window, WindowPolicy::None) {
            die(
                "--window/--window-epochs are primary-only: followers mirror the primary's \
                 tombstones instead of running their own retention policy",
            );
        }
        let mut f = FollowOptions {
            primary,
            ..FollowOptions::default()
        };
        if let Some(n) = promote_after {
            f.promote_after = n;
        }
        opts.follow = Some(f);
    } else if promote_after.is_some() {
        die("--promote-after only applies with --follow");
    }
    if let Some(seed) = chaos_seed {
        // Fault injection for resilience testing: replayable from the
        // seed alone. Workers will die and recover; clients see
        // `Degraded` replies during replay windows.
        convex_hull_suite::concurrent::failpoint::arm(
            convex_hull_suite::concurrent::failpoint::FaultPlan::chaos(seed),
        );
        eprintln!("hull: chaos schedule armed (seed {seed})");
    }
    let following = opts.follow.as_ref().map(|f| f.primary.clone());
    let handle = serve(opts).unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    // SIGTERM/SIGINT run the same graceful path as a remote `Shutdown`
    // op: stop accepting, drain the shards (which leaves every applied
    // batch unit sealed in the WAL — the open tail only exists inside a
    // batch apply), then exit through the normal join below. Installed
    // BEFORE the readiness line: harnesses send the signal as soon as
    // they see "listening on", and one landing before the handler is
    // bound would kill the process raw.
    let wire_addr = handle.local_addr();
    on_termination_signal(move || {
        let ok = HullClient::builder(wire_addr.to_string())
            .deadline(std::time::Duration::from_secs(2))
            .connect()
            .and_then(|mut c| c.shutdown_server());
        if let Err(e) = ok {
            eprintln!("hull: graceful shutdown request failed ({e}); exiting hard");
            std::process::exit(1);
        }
    });
    // The resolved address goes to stderr so facet/stat stdout stays clean
    // and scripts with `--addr host:0` can learn the picked port.
    eprintln!("hull: listening on {}", handle.local_addr());
    if let Some(primary) = following {
        eprintln!("hull: following {primary} (read-only replica)");
    }
    if let Some(maddr) = handle.metrics_addr() {
        eprintln!("hull: metrics on http://{maddr}/metrics");
    }
    let final_stats = handle.join_stats();
    if stats_json {
        println!("{final_stats}");
    }
}

/// `hull compact --wal DIR`: collapse each shard's journal into one
/// bulk-built checkpoint. The divide-and-conquer candidate sweep
/// ([`bulk_candidates`](convex_hull_suite::core::bulk::bulk_candidates),
/// DESIGN §S21) prunes points strictly interior to the hull, and the
/// survivors — every weakly-extreme point, in original arrival order —
/// are rewritten atomically (tmp + rename) as **one** journal batch
/// unit. Tombstones (deletes and window expirations) are resolved
/// before the sweep, so only rows still live enter the checkpoint. A
/// restart over the compacted WAL serves the identical hull
/// while replaying a fraction of the inserts. Epochs reset to 1, so
/// replication cursors into the old journal are invalidated: followers
/// of a compacted primary must re-bootstrap from scratch.
fn compact_main(args: &[String]) {
    use convex_hull_suite::core::bulk::{bulk_candidates, BulkReport};
    use convex_hull_suite::core::LiveSet;
    use convex_hull_suite::service::{rewrite_wal, Journal, JournalOp};

    let mut dim = 2usize;
    let mut wal: Option<std::path::PathBuf> = None;
    let mut workers = 0usize;
    let mut it = args.iter();
    let next = |what: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{what} needs a value")))
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--wal" => wal = Some(std::path::PathBuf::from(next("--wal", &mut it))),
            "--dim" => {
                dim = next("--dim", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --dim value"));
            }
            "--workers" => {
                workers = next("--workers", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --workers value"));
            }
            "--help" | "-h" => usage(),
            other => die(&format!("unknown compact flag '{other}'")),
        }
    }
    if !(2..=8).contains(&dim) {
        die("--dim must be in 2..=8");
    }
    let dir = wal.unwrap_or_else(|| die("compact needs --wal DIR"));
    // Every `shard-N.wal` under DIR, in shard order.
    let mut shards: Vec<u16> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| die(&format!("read {}: {e}", dir.display())))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name();
            name.to_str()?
                .strip_prefix("shard-")?
                .strip_suffix(".wal")?
                .parse()
                .ok()
        })
        .collect();
    shards.sort_unstable();
    if shards.is_empty() {
        die(&format!("no shard-*.wal files under {}", dir.display()));
    }
    for shard in shards {
        let journal = Journal::with_wal(dim, &dir, shard)
            .unwrap_or_else(|e| die(&format!("open shard {shard} WAL: {e}")));
        if journal.tail_damaged() {
            eprintln!(
                "hull: shard {shard}: dropped a torn WAL tail ({} ops recovered)",
                journal.len()
            );
        }
        let units = journal.batch_count();
        let ops = journal.len();
        // Resolve tombstones first: a delete or window expiration kills
        // the oldest live copy of its row, so the survivors are exactly
        // what a restart would serve.
        let mut live = LiveSet::new();
        for op in journal.ops() {
            match op {
                JournalOp::Insert(r) => live.insert(r.clone(), 0),
                JournalOp::Tombstone(r) => {
                    live.remove(r);
                }
            }
        }
        let rows = live.survivors();
        let pts = PointSet::from_rows(dim, &rows);
        let mut report = BulkReport::default();
        // Ascending candidate ids == original arrival order, so the
        // compacted journal replays with the same seed-basis choice.
        let keep = bulk_candidates(&pts, workers, &mut report);
        let kept: Vec<Vec<i64>> = keep.iter().map(|&i| rows[i as usize].clone()).collect();
        let bytes = rewrite_wal(dim, &dir, shard, &kept)
            .unwrap_or_else(|e| die(&format!("rewrite shard {shard} WAL: {e}")));
        println!(
            "shard {shard}: {ops} ops / {units} units -> {} inserts / 1 unit ({bytes} bytes)",
            kept.len(),
        );
    }
}

fn route_main(args: &[String]) {
    let mut opts = RouterOptions {
        addr: "127.0.0.1:4090".to_string(),
        ..RouterOptions::default()
    };
    let mut it = args.iter();
    let next = |what: &str, it: &mut std::slice::Iter<String>| -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{what} needs a value")))
            .clone()
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => opts.addr = next("--addr", &mut it),
            "--probe-ms" => {
                let ms: u64 = next("--probe-ms", &mut it)
                    .parse()
                    .unwrap_or_else(|_| die("bad --probe-ms value"));
                opts.probe_interval = std::time::Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => usage(),
            node if !node.starts_with('-') => opts.nodes.push(node.to_string()),
            other => die(&format!("unknown route flag '{other}'")),
        }
    }
    if opts.nodes.is_empty() {
        die("route needs at least one NODE address (the first is the write primary)");
    }
    let nodes = opts.nodes.len();
    let mut handle = route(opts).unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    // Park until SIGTERM/SIGINT, then stop the listener threads cleanly
    // (backends are left running — the router holds no hull state).
    // Installed before the readiness line, same as `serve`: a signal
    // landing before the handler is bound would kill the process raw.
    let (tx, rx) = std::sync::mpsc::channel::<()>();
    on_termination_signal(move || {
        let _ = tx.send(());
    });
    eprintln!(
        "hull: routing on {} across {nodes} node{}",
        handle.local_addr(),
        if nodes == 1 { "" } else { "s" }
    );
    let _ = rx.recv();
    handle.shutdown();
}

fn parse_shard(tok: Option<&String>) -> u16 {
    tok.unwrap_or_else(|| die("missing shard id"))
        .parse()
        .unwrap_or_else(|_| die("bad shard id"))
}

fn parse_coords(toks: &[String]) -> Vec<i64> {
    if toks.is_empty() {
        die("missing coordinates");
    }
    toks.iter()
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| die(&format!("bad coordinate '{t}'")))
        })
        .collect()
}

/// Execute one query op (tokens: `OP [SHARD] [COORDS...]`) and render the
/// reply as a single stdout line. With `scan`, the three hull queries go
/// down the wire-v3 linear-scan oracle ops instead of history descent.
fn run_query_op(client: &mut HullClient, toks: &[String], scan: bool) -> std::io::Result<String> {
    let op = toks.first().map(String::as_str).unwrap_or_else(|| usage());
    Ok(match op {
        "insert" => {
            let shard = parse_shard(toks.get(1));
            client.mutate(shard, MutationBatch::new().insert(parse_coords(&toks[2..])))?;
            "queued".to_string()
        }
        "delete" => {
            let shard = parse_shard(toks.get(1));
            client.mutate(shard, MutationBatch::new().delete(parse_coords(&toks[2..])))?;
            "queued".to_string()
        }
        "expire" => {
            let shard = parse_shard(toks.get(1));
            let n: u32 = toks
                .get(2)
                .unwrap_or_else(|| die("expire needs a count"))
                .parse()
                .unwrap_or_else(|_| die("bad expire count"));
            client.mutate(shard, MutationBatch::new().expire(n))?;
            "queued".to_string()
        }
        "contains" => {
            let shard = parse_shard(toks.get(1));
            let point = parse_coords(&toks[2..]);
            let reply = if scan {
                client.contains_scan(shard, &point)?
            } else {
                client.contains(shard, &point)?
            };
            match reply {
                Some(b) => b.to_string(),
                None => "not-ready".to_string(),
            }
        }
        "visible" => {
            let shard = parse_shard(toks.get(1));
            let point = parse_coords(&toks[2..]);
            let reply = if scan {
                client.visible_scan(shard, &point)?
            } else {
                client.visible(shard, &point)?
            };
            match reply {
                Some(n) => format!("visible {n}"),
                None => "not-ready".to_string(),
            }
        }
        "extreme" => {
            let shard = parse_shard(toks.get(1));
            let dir = parse_coords(&toks[2..]);
            let reply = if scan {
                client.extreme_scan(shard, &dir)?
            } else {
                client.extreme(shard, &dir)?
            };
            match reply {
                Some((v, coords)) => {
                    let c: Vec<String> = coords.iter().map(|x| x.to_string()).collect();
                    format!("extreme v={v} at {}", c.join(" "))
                }
                None => "not-ready".to_string(),
            }
        }
        "stats" => client.stats(toks.get(1).map(|t| parse_shard(Some(t))))?,
        "snapshot" => {
            let snap = client.snapshot(parse_shard(toks.get(1)))?;
            format!(
                "snapshot epoch={} points={} facets={}",
                snap.epoch,
                snap.points.len(),
                snap.facets.len()
            )
        }
        "flush" => format!("flushed epoch={}", client.flush(parse_shard(toks.get(1)))?),
        "metrics" => client.metrics()?,
        "shutdown" => {
            client.shutdown_server()?;
            "shutting-down".to_string()
        }
        other => die(&format!("unknown query op '{other}'")),
    })
}

fn query_main(args: &[String]) {
    // `--scan` may appear anywhere before the op; strip it out first.
    let scan = args.iter().any(|a| a == "--scan");
    let args: Vec<String> = args.iter().filter(|a| *a != "--scan").cloned().collect();
    if args.len() < 2 {
        usage();
    }
    let addr = &args[0];
    let mut client = HullClient::builder(addr.to_string())
        .connect()
        .unwrap_or_else(|e| die(&format!("connect {addr}: {e}")));
    if args[1] == "script" {
        // One connection, one op per stdin line — the shape the oneshot CI
        // smoke test needs (the server exits when this connection closes).
        // Consecutive mutations (insert/delete/expire) to the same shard
        // coalesce into a single wire v6 `Mutate` envelope (against a
        // pre-v6 server pure-insert runs fall back to `InsertBatch` or
        // per-point inserts; deletes and expirations fail in-band), still
        // printing one `queued` line per op.
        let mut input = String::new();
        std::io::stdin()
            .read_to_string(&mut input)
            .expect("reading stdin");
        let mut pending: Option<(u16, MutationBatch)> = None;
        let flush_pending =
            |client: &mut HullClient, pending: &mut Option<(u16, MutationBatch)>| {
                if let Some((shard, batch)) = pending.take() {
                    let n = batch.len();
                    match client.mutate(shard, batch) {
                        Ok(_) => {
                            for _ in 0..n {
                                println!("queued");
                            }
                        }
                        Err(e) => die(&format!("mutate (shard {shard}): {e}")),
                    }
                }
            };
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks: Vec<String> = line.split_whitespace().map(str::to_string).collect();
            if matches!(toks[0].as_str(), "insert" | "delete" | "expire") {
                let shard = parse_shard(toks.get(1));
                let batch = match &pending {
                    Some((s, _)) if *s == shard => pending.take().expect("just matched").1,
                    _ => {
                        flush_pending(&mut client, &mut pending);
                        MutationBatch::new()
                    }
                };
                let batch = match toks[0].as_str() {
                    "insert" => batch.insert(parse_coords(&toks[2..])),
                    "delete" => batch.delete(parse_coords(&toks[2..])),
                    _ => batch.expire(
                        toks.get(2)
                            .unwrap_or_else(|| die("expire needs a count"))
                            .parse()
                            .unwrap_or_else(|_| die("bad expire count")),
                    ),
                };
                pending = Some((shard, batch));
                continue;
            }
            flush_pending(&mut client, &mut pending);
            match run_query_op(&mut client, &toks, scan) {
                Ok(reply) => println!("{reply}"),
                Err(e) => die(&format!("{line}: {e}")),
            }
        }
        flush_pending(&mut client, &mut pending);
    } else {
        match run_query_op(&mut client, &args[1..], scan) {
            Ok(reply) => println!("{reply}"),
            Err(e) => die(&e.to_string()),
        }
    }
}

/// Fetch the Prometheus exposition from `addr`: try a plain HTTP
/// `GET /metrics` first (the `--metrics-addr` listener), then fall back
/// to the wire `Metrics` op (the query port), so either address works.
fn scrape_metrics(addr: &str) -> std::io::Result<String> {
    match http_get_metrics(addr) {
        Ok(text) => Ok(text),
        Err(_) => HullClient::builder(addr.to_string()).connect()?.metrics(),
    }
}

/// Minimal HTTP/1.0 GET; returns the body of a 200 reply.
fn http_get_metrics(addr: &str) -> std::io::Result<String> {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(std::time::Duration::from_secs(2)))?;
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    if !raw.starts_with("HTTP/") {
        return Err(bad("not an HTTP reply"));
    }
    let status_ok = raw
        .lines()
        .next()
        .is_some_and(|l| l.split_whitespace().nth(1) == Some("200"));
    if !status_ok {
        return Err(bad("HTTP status not 200"));
    }
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(bad("truncated HTTP reply")),
    }
}

/// One parsed exposition sample: `name{labels} value`.
struct MetricSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str) -> Option<MetricSample> {
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match head.split_once('{') {
        Some((n, rest)) => {
            let inner = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            for pair in inner.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=')?;
                labels.push((k.to_string(), v.trim_matches('"').to_string()));
            }
            (n.to_string(), labels)
        }
        None => (head.to_string(), Vec::new()),
    };
    Some(MetricSample {
        name,
        labels,
        value,
    })
}

fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", parts.join(","))
}

/// Cumulative-bucket quantile: the smallest `le` whose cumulative count
/// covers fraction `q` of the total.
fn bucket_quantile(buckets: &[(f64, f64)], count: f64, q: f64) -> f64 {
    let target = q * count;
    for &(le, cum) in buckets {
        if cum >= target {
            return le;
        }
    }
    buckets.last().map(|&(le, _)| le).unwrap_or(0.0)
}

/// Render the exposition as a sorted human table: one line per scalar
/// series, histograms summarized to `count/sum/p50/p95/p99`.
fn pretty_metrics(text: &str) -> String {
    use std::collections::BTreeMap;
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    // Histogram accumulators keyed by (family, label-suffix).
    struct Hist {
        buckets: Vec<(f64, f64)>,
        sum: f64,
        count: f64,
    }
    let mut hists: BTreeMap<(String, String), Hist> = BTreeMap::new();
    let mut scalars: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                kinds.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let Some(s) = parse_sample(line) else {
            continue;
        };
        let (family, part) = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| s.name.strip_suffix(suf).map(|f| (f.to_string(), *suf)))
            .unwrap_or_else(|| (s.name.clone(), ""));
        if !part.is_empty() && kinds.get(&family).map(String::as_str) == Some("histogram") {
            let non_le: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            let h = hists
                .entry((family, label_suffix(&non_le)))
                .or_insert(Hist {
                    buckets: Vec::new(),
                    sum: 0.0,
                    count: 0.0,
                });
            match part {
                "_bucket" => {
                    let le = s
                        .labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| {
                            if v == "+Inf" {
                                f64::INFINITY
                            } else {
                                v.parse().unwrap_or(f64::INFINITY)
                            }
                        })
                        .unwrap_or(f64::INFINITY);
                    h.buckets.push((le, s.value));
                }
                "_sum" => h.sum = s.value,
                _ => h.count = s.value,
            }
        } else {
            scalars.insert(format!("{}{}", s.name, label_suffix(&s.labels)), s.value);
        }
    }
    let mut rows: Vec<(String, String)> = Vec::new();
    for (name, v) in &scalars {
        rows.push((name.clone(), format!("{v}")));
    }
    for ((family, labels), h) in &hists {
        let mut buckets = h.buckets.clone();
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let fin = |x: f64| {
            if x.is_finite() {
                format!("{x}")
            } else {
                "+Inf".to_string()
            }
        };
        rows.push((
            format!("{family}{labels}"),
            if h.count == 0.0 {
                "count=0".to_string()
            } else {
                format!(
                    "count={} sum={} p50={} p95={} p99={}",
                    h.count,
                    h.sum,
                    fin(bucket_quantile(&buckets, h.count, 0.50)),
                    fin(bucket_quantile(&buckets, h.count, 0.95)),
                    fin(bucket_quantile(&buckets, h.count, 0.99)),
                )
            },
        ));
    }
    rows.sort();
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, val) in rows {
        out.push_str(&format!("{name:<width$}  {val}\n"));
    }
    out
}

fn metrics_main(args: &[String]) {
    let mut raw = false;
    let mut addr: Option<&String> = None;
    for a in args {
        match a.as_str() {
            "--raw" => raw = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') => {
                if addr.is_some() {
                    die("multiple addresses");
                }
                addr = Some(a);
            }
            other => die(&format!("unknown metrics flag '{other}'")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    let text = scrape_metrics(addr).unwrap_or_else(|e| die(&format!("scrape {addr}: {e}")));
    if raw {
        print!("{text}");
    } else {
        print!("{}", pretty_metrics(&text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_args_defaults_and_flags() {
        let o = parse_args(&s(&[])).unwrap();
        assert_eq!(o.dim, 2);
        assert_eq!(o.algo, Algo::Seq);
        let o = parse_args(&s(&[
            "--dim", "3", "--algo", "par", "--seed", "7", "--stats", "f.txt",
        ]))
        .unwrap();
        assert_eq!(o.dim, 3);
        assert_eq!(o.algo, Algo::Par);
        assert_eq!(o.seed, 7);
        assert!(o.stats);
        assert_eq!(o.file.as_deref(), Some("f.txt"));
    }

    #[test]
    fn parse_args_rejects_bad_input() {
        assert!(parse_args(&s(&["--dim"])).is_err());
        assert!(parse_args(&s(&["--dim", "1"])).is_err());
        assert!(parse_args(&s(&["--dim", "9"])).is_err());
        assert!(parse_args(&s(&["--algo", "magic"])).is_err());
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["a.txt", "b.txt"])).is_err());
        assert!(parse_args(&s(&["--dim", "3", "--algo", "chain"])).is_err());
        assert!(parse_args(&s(&["--algo", "chain", "--stats-json"])).is_err());
    }

    #[test]
    fn parse_args_stats_json() {
        let o = parse_args(&s(&["--stats-json"])).unwrap();
        assert!(o.stats_json);
        assert!(!o.stats);
    }

    #[test]
    fn parse_points_happy_path() {
        let ps = parse_points("0 0\n4 0\n# comment\n\n0 4\n4 4\n", 2).unwrap();
        assert_eq!(ps.len(), 4);
        assert_eq!(ps.point(2), &[0, 4]);
    }

    #[test]
    fn parse_sample_forms() {
        let s = parse_sample("chull_server_accepts_total 3").unwrap();
        assert_eq!(s.name, "chull_server_accepts_total");
        assert!(s.labels.is_empty());
        assert_eq!(s.value, 3.0);
        let s = parse_sample("chull_server_request_us_bucket{op=\"insert\",le=\"255\"} 7").unwrap();
        assert_eq!(s.name, "chull_server_request_us_bucket");
        assert_eq!(
            s.labels,
            vec![
                ("op".to_string(), "insert".to_string()),
                ("le".to_string(), "255".to_string())
            ]
        );
        assert!(parse_sample("# HELP nope nope").is_none());
    }

    #[test]
    fn pretty_metrics_summarizes_histograms() {
        let text = "\
# HELP lat_us latency\n\
# TYPE lat_us histogram\n\
lat_us_bucket{le=\"1\"} 5\n\
lat_us_bucket{le=\"3\"} 9\n\
lat_us_bucket{le=\"+Inf\"} 10\n\
lat_us_sum 42\n\
lat_us_count 10\n\
# TYPE hits_total counter\n\
hits_total 7\n";
        let out = pretty_metrics(text);
        assert!(out.contains("hits_total"), "{out}");
        let hist_line = out.lines().find(|l| l.starts_with("lat_us")).unwrap();
        assert!(hist_line.contains("count=10"), "{hist_line}");
        assert!(hist_line.contains("sum=42"), "{hist_line}");
        // p50 of 10 obs: cum 5 at le=1 covers it; p95 and p99 need 9.5/9.9.
        assert!(hist_line.contains("p50=1"), "{hist_line}");
        assert!(hist_line.contains("p95=+Inf"), "{hist_line}");
    }

    #[test]
    fn pretty_metrics_groups_histograms_by_label() {
        let text = "\
# TYPE req_us histogram\n\
req_us_bucket{op=\"a\",le=\"+Inf\"} 2\n\
req_us_sum{op=\"a\"} 8\n\
req_us_count{op=\"a\"} 2\n\
req_us_bucket{op=\"b\",le=\"+Inf\"} 1\n\
req_us_sum{op=\"b\"} 3\n\
req_us_count{op=\"b\"} 1\n";
        let out = pretty_metrics(text);
        assert!(out.contains("req_us{op=a}"), "{out}");
        assert!(out.contains("req_us{op=b}"), "{out}");
    }

    #[test]
    fn parse_points_errors() {
        assert!(parse_points("1 2 3\n", 2).is_err());
        assert!(parse_points("1 x\n2 3\n4 5\n6 7\n", 2).is_err());
        assert!(parse_points("1 2\n3 4\n", 2).is_err()); // too few
    }
}
