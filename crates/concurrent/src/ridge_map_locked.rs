//! A sharded, lock-based ridge multimap with the same `InsertAndSet` /
//! `GetValue` semantics as Algorithms 4 and 5.
//!
//! The lock-free tables ([`crate::RidgeMapCas`], [`crate::RidgeMapTas`]) are
//! fixed-capacity, as in the paper (which can size them because the analysis
//! bounds the number of ridges). For general-dimension runs where a tight a
//! priori bound is unavailable, this growable variant is the default engine;
//! the E10/E12 experiments compare all three.

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::sync::Mutex;

use crate::fast_hash::FxLikeHasher;

const SHARDS: usize = 64;

/// Sentinel meaning "no second value yet".
const NO_VALUE: u32 = u32::MAX;

/// One shard's storage: a fast-hashed map from ridge key to value pair.
type Shard<K> = HashMap<K, (u32, u32), BuildHasherDefault<FxLikeHasher>>;

/// Sharded mutex-protected multimap; see module docs.
pub struct RidgeMapLocked<K> {
    shards: Vec<Mutex<Shard<K>>>,
    hasher: BuildHasherDefault<FxLikeHasher>,
}

impl<K: Hash + Eq> RidgeMapLocked<K> {
    /// An empty map; `capacity` pre-sizes the shards.
    pub fn with_capacity(capacity: usize) -> RidgeMapLocked<K> {
        RidgeMapLocked {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(HashMap::with_capacity_and_hasher(
                        capacity / SHARDS + 1,
                        BuildHasherDefault::default(),
                    ))
                })
                .collect(),
            hasher: BuildHasherDefault::default(),
        }
    }

    #[inline]
    fn shard(&self, key: &K) -> usize {
        // Use high bits so shard choice is independent of any in-shard
        // HashMap bucketing on low bits.
        (self.hasher.hash_one(key) >> 48) as usize % SHARDS
    }

    /// `InsertAndSet`: `true` if `key` was new, `false` if this is the
    /// second (losing) insertion.
    pub fn insert_and_set(&self, key: K, value: u32) -> bool {
        debug_assert_ne!(value, NO_VALUE);
        let shard = self.shard(&key);
        let mut guard = self.shards[shard].lock().unwrap();
        match guard.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((value, NO_VALUE));
                true
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let slot = e.get_mut();
                debug_assert_eq!(slot.1, NO_VALUE, "third insert_and_set for the same key");
                slot.1 = value;
                false
            }
        }
    }

    /// `GetValue`: the value for `key` that is not `not`.
    pub fn get_value(&self, key: K, not: u32) -> u32 {
        let shard = self.shard(&key);
        let guard = self.shards[shard].lock().unwrap();
        let &(a, b) = guard.get(&key).expect("get_value on absent key");
        if a != not {
            a
        } else {
            debug_assert_ne!(b, NO_VALUE, "partner value missing");
            b
        }
    }

    /// The first (winning) value stored for `key`, if any — supports the
    /// lock-free maps' `first_value` diagnostics when this map serves as
    /// their overflow tier.
    pub fn first_value(&self, key: &K) -> Option<u32> {
        let shard = self.shard(key);
        let guard = self.shards[shard].lock().unwrap();
        guard.get(key).map(|&(a, _)| a)
    }

    /// Number of distinct keys (diagnostics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True iff no key was inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq + Copy + Send + Sync> crate::RidgeMultimap<K> for RidgeMapLocked<K> {
    fn insert_and_set(&self, key: K, value: u32) -> bool {
        RidgeMapLocked::insert_and_set(self, key, value)
    }
    fn get_value(&self, key: K, not: u32) -> u32 {
        RidgeMapLocked::get_value(self, key, not)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn winner_loser_semantics() {
        let m: RidgeMapLocked<u64> = RidgeMapLocked::with_capacity(16);
        assert!(m.insert_and_set(9, 1));
        assert!(!m.insert_and_set(9, 2));
        assert_eq!(m.get_value(9, 2), 1);
        assert_eq!(m.get_value(9, 1), 2);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_without_bound() {
        let m: RidgeMapLocked<u64> = RidgeMapLocked::with_capacity(4);
        for k in 0..10_000u64 {
            assert!(m.insert_and_set(k, k as u32));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn concurrent_one_loser_per_key() {
        let keys = 1 << 12;
        let m: Arc<RidgeMapLocked<u64>> = Arc::new(RidgeMapLocked::with_capacity(keys));
        let threads = 8;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut lost = Vec::new();
                    for k in 0..keys as u64 {
                        let first = (k as usize) % threads;
                        let second = (first + threads / 2) % threads;
                        if t == first || t == second {
                            let v = (t as u32 + 1) * 100_000 + k as u32;
                            if !m.insert_and_set(k, v) {
                                lost.push((k, v, m.get_value(k, v)));
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let mut per_key = vec![0usize; keys];
        for h in handles {
            for (k, mine, partner) in h.join().unwrap() {
                per_key[k as usize] += 1;
                assert_ne!(mine, partner);
            }
        }
        assert!(per_key.iter().all(|&c| c == 1));
    }
}
