//! Half-plane intersection (Section 7): the direct configuration-space
//! formulation cross-checked against duality, plus its dependence depth.
//!
//! Run with: `cargo run --release --example halfspace_intersection`

use chull_geometry::rng::SliceRandom;
use convex_hull_suite::apps::halfspace::{
    intersection_via_duality, random_halfplanes, HalfplaneSpace,
};
use convex_hull_suite::confspace::build_dep_graph;
use convex_hull_suite::geometry::generators;

fn main() {
    let n = 96;
    let hs = random_halfplanes(n, 4);
    let space = HalfplaneSpace::new(hs.clone());

    // Direct: brute-force polygon vertices from the configuration space.
    let objs: Vec<usize> = (0..n).collect();
    let mut direct = space.polygon_vertices(&objs);
    direct.sort_unstable_by_key(|v| (v.i, v.j));

    // Duality: hull of the dual points.
    let dual = intersection_via_duality(&hs);
    let mut dual_vs: Vec<_> = dual.iter().map(|(v, _)| *v).collect();
    dual_vs.sort_unstable_by_key(|v| (v.i, v.j));
    assert_eq!(direct, dual_vs, "direct and dual formulations agree");

    println!("half-planes:       {n}");
    println!("polygon vertices:  {}", direct.len());
    for (v, (x, y, w)) in dual.iter().take(5) {
        println!(
            "  vertex of lines {} & {}: ({:.3}, {:.3})",
            v.i,
            v.j,
            *x as f64 / *w as f64,
            *y as f64 / *w as f64
        );
    }

    // Dependence depth of random insertion (2-support, Section 7).
    let mut order: Vec<usize> = (3..n).collect();
    order.shuffle(&mut generators::rng(9));
    let mut full = vec![0, 1, 2];
    full.extend(order);
    let stats = build_dep_graph(&space, &full, false);
    println!(
        "dependence depth:  {} (H_n = {:.2}, depth/H_n = {:.2})",
        stats.depth,
        stats.harmonic(),
        stats.depth_over_harmonic()
    );
}
