//! A minimal slab: stable `usize` keys over a free-list-backed vector.
//! The reactor keys connections by slab index (offset into the poller
//! token space); keys are reused, so the event loop pairs each key with
//! a generation counter to shed stale completions.

/// Preallocated storage with O(1) insert/remove and stable keys.
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, returning its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(k) => {
                self.entries[k] = Some(value);
                k
            }
            None => {
                self.entries.push(Some(value));
                self.entries.len() - 1
            }
        }
    }

    /// Remove and return the value at `key`, freeing the slot.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let v = self.entries.get_mut(key)?.take();
        if v.is_some() {
            self.free.push(key);
            self.len -= 1;
        }
        v
    }

    /// Borrow the value at `key`.
    pub fn get(&self, key: usize) -> Option<&T> {
        self.entries.get(key)?.as_ref()
    }

    /// Mutably borrow the value at `key`.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.entries.get_mut(key)?.as_mut()
    }

    /// The occupied keys, collected (so the caller may remove while
    /// sweeping).
    pub fn keys(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(k, e)| e.as_ref().map(|_| k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_reuse() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove");
        let c = s.insert("c");
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(s.get(b), Some(&"b"));
        *s.get_mut(c).unwrap() = "c2";
        assert_eq!(s.get(c), Some(&"c2"));
        let mut keys = s.keys();
        keys.sort_unstable();
        assert_eq!(keys, vec![a.min(b), a.max(b)]);
    }

    #[test]
    fn sweep_while_removing() {
        let mut s = Slab::new();
        for i in 0..100 {
            s.insert(i);
        }
        for k in s.keys() {
            if k % 2 == 0 {
                s.remove(k);
            }
        }
        assert_eq!(s.len(), 50);
        assert!(s.keys().iter().all(|k| k % 2 == 1));
    }
}
