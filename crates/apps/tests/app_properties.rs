//! Property tests for the Section 7 applications.

use chull_apps::circles::{incremental_intersection, random_circles, verify_intersection, Circle};
use chull_apps::delaunay::{delaunay, verify_delaunay, Engine};
use chull_apps::halfspace::{
    excludes, intersection_via_duality, random_halfplanes, vertex_coords, HalfplaneSpace, Vertex,
};
use chull_geometry::rng::ChaCha8Rng;
use chull_geometry::Point2i;

/// Delaunay via lifting always satisfies the empty-circumcircle
/// property (certified by the exact incircle predicate), on arbitrary
/// distinct non-collinear point sets. Deterministic pseudo-random cases
/// stand in for the original proptest strategies.
#[test]
fn prop_delaunay_empty_circumcircle() {
    let mut r = ChaCha8Rng::seed_from_u64(0xde1a);
    let mut checked = 0;
    while checked < 16 {
        let len = r.gen_range(6usize..40);
        let mut pts: Vec<Point2i> = (0..len)
            .map(|_| Point2i::new(r.gen_range(-5_000i64..5_000), r.gen_range(-5_000i64..5_000)))
            .collect();
        let seed = r.gen_range(0u64..100);
        pts.sort_unstable();
        pts.dedup();
        if pts.len() < 5 {
            continue;
        }
        // Need a non-degenerate lifted hull: at least 3 non-collinear points.
        let rows: Vec<Vec<i64>> = pts.iter().map(|p| vec![p.x, p.y]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|row| row.as_slice()).collect();
        if chull_geometry::exact::affine_rank(&refs) != 3 {
            continue;
        }
        let del = delaunay(&pts, Engine::Sequential, seed);
        assert!(verify_delaunay(&pts, &del).is_ok());
        // Both engines agree.
        let par = delaunay(&pts, Engine::Parallel, seed);
        assert_eq!(del, par);
        checked += 1;
    }
}

/// Every vertex reported by the half-plane intersection satisfies every
/// half-plane (weakly), and the direct/dual computations agree.
#[test]
fn prop_halfplane_vertices_feasible() {
    let mut r = ChaCha8Rng::seed_from_u64(0x6a1f);
    for _ in 0..16 {
        let n = r.gen_range(8usize..48);
        let seed = r.gen_range(0u64..100);
        let hs = random_halfplanes(n, seed);
        let space = HalfplaneSpace::new(hs.clone());
        let objs: Vec<usize> = (0..n).collect();
        let direct = space.polygon_vertices(&objs);
        for v in &direct {
            let coords = vertex_coords(&hs, *v).unwrap();
            for (k, h) in hs.iter().enumerate() {
                if k == v.i || k == v.j {
                    continue;
                }
                assert!(
                    !excludes(*h, coords),
                    "vertex {v:?} violates half-plane {k}"
                );
            }
        }
        let mut direct_sorted: Vec<Vertex> = direct.clone();
        direct_sorted.sort_unstable_by_key(|v| (v.i, v.j));
        let mut dual: Vec<Vertex> = intersection_via_duality(&hs)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        dual.sort_unstable_by_key(|v| (v.i, v.j));
        assert_eq!(direct_sorted, dual);
    }
}

/// The circle-intersection boundary always verifies, and each unit circle
/// contributes at most one *connected* arc to the intersection of
/// equal-radius disks. The representation may store one connected arc as
/// two pieces split exactly at the angular wrap point, so we group pieces
/// per circle and require adjacency rather than `arcs.len() <= n`.
#[test]
fn prop_circle_intersection_valid() {
    use std::f64::consts::TAU;
    let mut r = ChaCha8Rng::seed_from_u64(0xc1cc);
    for _ in 0..16 {
        let n = r.gen_range(3usize..64);
        let seed = r.gen_range(0u64..100);
        let circles = random_circles(n, 0.45, seed);
        let res = incremental_intersection(&circles);
        assert!(verify_intersection(&res).is_ok());
        assert!(!res.arcs.is_empty());
        let mut by_circle: std::collections::BTreeMap<usize, Vec<(f64, f64)>> =
            std::collections::BTreeMap::new();
        for a in &res.arcs {
            by_circle.entry(a.circle).or_default().push((a.a0, a.len));
        }
        assert!(by_circle.len() <= n);
        for (c, pieces) in by_circle {
            assert!(pieces.len() <= 2, "circle {c} has {} pieces", pieces.len());
            if let [(a0, l0), (a1, l1)] = pieces[..] {
                // Two pieces must be one connected arc split at the wrap:
                // one ends exactly where the other begins (mod TAU).
                let gap0 = ((a0 + l0) - a1)
                    .rem_euclid(TAU)
                    .min((a1 - (a0 + l0)).rem_euclid(TAU));
                let gap1 = ((a1 + l1) - a0)
                    .rem_euclid(TAU)
                    .min((a0 - (a1 + l1)).rem_euclid(TAU));
                assert!(
                    gap0 < 1e-9 || gap1 < 1e-9,
                    "circle {c} pieces not adjacent: {pieces:?}"
                );
            }
        }
    }
}

#[test]
fn delaunay_on_grid_subset() {
    // A (slightly pruned) grid has many cocircular 4-tuples; the lifting
    // hull still produces *a* triangulation whose circumcircles are
    // empty-or-boundary. verify_delaunay only rejects *strict* violations,
    // so this exercises the degenerate-tolerant path.
    let mut pts: Vec<Point2i> = Vec::new();
    for x in 0..6 {
        for y in 0..6 {
            if (x + y) % 7 != 3 {
                pts.push(Point2i::new(x * 10, y * 10));
            }
        }
    }
    let del = delaunay(&pts, Engine::Sequential, 3);
    verify_delaunay(&pts, &del).unwrap();
    assert!(!del.triangles.is_empty());
}

#[test]
fn two_identical_direction_halfplanes_tolerated_by_duality() {
    // Parallel but distinct normals: the duller one is redundant.
    let mut hs = random_halfplanes(16, 9);
    // Double one normal scaled: same direction, same c -> dominated dual
    // point colinear with the original; hull drops the interior one.
    let h = hs[5];
    hs.push(chull_apps::halfspace::Halfplane {
        a: h.a / 2,
        b: h.b / 2,
        c: h.c,
    });
    let verts = intersection_via_duality(&hs);
    // The weaker copy never defines a vertex.
    assert!(verts
        .iter()
        .all(|(v, _)| v.i != hs.len() - 1 && v.j != hs.len() - 1));
}

#[test]
fn circle_depth_monotone_workload() {
    // Insert circles whose centers walk outward: later circles always cut,
    // maximizing chains — depth stays modest anyway.
    let mut circles = vec![Circle { x: 0.0, y: 0.001 }, Circle { x: 0.001, y: 0.0 }];
    for i in 0..200 {
        let ang = i as f64 * 0.37;
        let rad = 0.05 + 0.4 * (i as f64 / 200.0);
        circles.push(Circle {
            x: rad * ang.cos(),
            y: rad * ang.sin(),
        });
    }
    let r = incremental_intersection(&circles);
    verify_intersection(&r).unwrap();
    assert!(r.max_depth < 202);
}
