//! An **online** convex hull: points arrive one at a time, with no access
//! to future points.
//!
//! The offline algorithms (Algorithms 2 and 3) rely on conflict lists over
//! the full input — the classic Clarkson–Shor bookkeeping. Online, the
//! conflict lists are unavailable; instead each arriving point *locates*
//! itself through the history (influence) graph that the construction has
//! built so far: the support property `C(t) ⊆ C(t1) ∪ C(t2)` guarantees
//! the descent finds every visible facet. For points arriving in random
//! order this costs expected `O(log n)` history nodes per insertion
//! (plus the size of the replaced region), i.e. the same asymptotics as
//! the offline algorithm without ever seeing the future.
//!
//! Works in any dimension `2..=8` over exact integer coordinates.

use crate::facet::{
    facet_verts, join_ridge, ridge_omitting, FacetVerts, RidgeKey, MAX_DIM, NO_VERT,
};
use crate::output::HullOutput;
use chull_geometry::{Hyperplane, KernelCounts, PlaneBlock, PointSet, Sign};
use std::cell::RefCell;
use std::collections::HashMap;

/// Sentinel facet id.
const NO_FACET: u32 = u32::MAX;

thread_local! {
    /// Per-thread descent scratch: facet id → stamp of the last descent
    /// that visited it, plus the running stamp. Comparing stamps against
    /// the per-call epoch makes "clearing" free, so a descent costs
    /// O(nodes visited) instead of the O(facets ever created) that a
    /// fresh `vec![false; n]` per query used to pay — the allocation
    /// alone re-linearized every point-location query.
    static DESCENT_SCRATCH: RefCell<(Vec<u64>, u64)> = const { RefCell::new((Vec::new(), 0)) };
}

/// Batches smaller than this insert sequentially in
/// [`OnlineHull::insert_batch_par`]: the parallel path pays an
/// `O(|hull| · batch)` conflict-seeding cost that only amortizes for real
/// batches. The cutoff depends solely on the batch length, so a journal
/// replay re-derives the same sequential/parallel decision per batch.
pub const MIN_PAR_BATCH: usize = 8;

/// Where a point sits relative to the current hull — the answer of
/// [`OnlineHull::classify`]. Distinguishing `OnBoundary` from `Inside`
/// matters for deletion: removing an interior point never changes the
/// hull, removing a boundary point generally does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointLocation {
    /// Strictly inside every alive facet's halfspace.
    Inside,
    /// On at least one alive facet's hyperplane, beyond none.
    OnBoundary,
    /// Beyond at least one alive facet (visible from outside).
    Outside,
}

/// Telemetry summary of the most recent [`OnlineHull::insert_batch_par`]
/// call that took the parallel path (all zeros after a sequential-path
/// batch or before any batch). `busy_ns / wall_ns` of the call is the
/// realized parallelism; `chull-service` exposes these as shard gauges.
#[derive(Clone, Copy, Default)]
pub struct BatchTelemetry {
    /// Points in the batch.
    pub batch_len: usize,
    /// Facets the batch created (alive or since buried within the batch).
    pub created: usize,
    /// Maximum `ProcessRidge` recursion depth (Theorem 5.3's `O(log n)`).
    pub recursion_depth: u64,
    /// Ridges buried during the recursion (Algorithm 3 line 12).
    pub buried: u64,
    /// Facets replaced during the recursion (Algorithm 3 line 15).
    pub replaced: u64,
    /// Task-busy nanoseconds (0 unless `chull-obs` is armed).
    pub busy_ns: u64,
}

#[derive(Clone)]
struct OFacet {
    verts: FacetVerts,
    visible_sign: Sign,
    /// Cached exact hyperplane: every history-descent visibility test is a
    /// staged `O(d)` dot-product sign instead of an `O(d³)` determinant.
    plane: Hyperplane,
    alive: bool,
    children: Vec<u32>,
    /// Dependence depth: seeds are 1, a facet joining ridge `(t1, t2)`
    /// is `1 + max(depth(t1), depth(t2))` — the online analogue of the
    /// `depth(t)` recurrence behind Theorem 4.2's `O(log n)` whp bound.
    depth: u32,
}

/// An incrementally-growable convex hull; see module docs.
///
/// **Read/write split:** mutation ([`OnlineHull::insert`]) takes
/// `&mut self`; every query ([`OnlineHull::contains`],
/// [`OnlineHull::visible_facets`], [`OnlineHull::extreme`], ...) takes
/// `&self` and threads its staged-kernel counters through a per-call
/// [`KernelCounts`] accumulator instead of mutating shared state. A frozen
/// hull (e.g. behind an `Arc` snapshot in `chull-service`) therefore
/// serves membership queries from many threads concurrently.
#[derive(Clone)]
pub struct OnlineHull {
    dim: usize,
    pts: PointSet,
    facets: Vec<OFacet>,
    seeds: Vec<u32>,
    /// Ridge -> two incident alive facets.
    adj: HashMap<RidgeKey, [u32; 2]>,
    /// Homogeneous interior reference point (seed simplex coordinate sums).
    interior_row: Vec<i64>,
    interior_hom: i64,
    /// History nodes visited by the last insertion (instrumentation).
    pub last_visited: usize,
    /// Accumulated staged-kernel counters over all locate/insert queries.
    pub kernel: KernelCounts,
    /// Deepest facet created so far (see `OFacet::depth`).
    dep_depth: u32,
    /// Telemetry of the last parallel batch insert (see [`BatchTelemetry`]).
    pub last_batch: BatchTelemetry,
}

impl OnlineHull {
    /// Start from `d + 1` affinely independent seed points.
    pub fn new(dim: usize, seed_points: &[Vec<i64>]) -> OnlineHull {
        assert!((2..=MAX_DIM).contains(&dim));
        assert_eq!(seed_points.len(), dim + 1, "need d + 1 seed points");
        let mut pts = PointSet::new(dim);
        for p in seed_points {
            pts.push(p);
        }
        let simplex: Vec<u32> = (0..=dim as u32).collect();
        {
            let rows: Vec<&[i64]> = (0..=dim).map(|i| pts.point(i)).collect();
            assert_eq!(
                chull_geometry::exact::affine_rank(&rows),
                dim + 1,
                "seed points must be affinely independent"
            );
        }
        let mut interior_row = vec![0i64; dim];
        for i in 0..=dim {
            for (acc, &c) in interior_row.iter_mut().zip(pts.point(i)) {
                *acc += c;
            }
        }
        let mut hull = OnlineHull {
            dim,
            pts: pts.clone(),
            facets: Vec::new(),
            seeds: Vec::new(),
            adj: HashMap::new(),
            interior_row,
            interior_hom: dim as i64 + 1,
            last_visited: 0,
            kernel: KernelCounts::default(),
            dep_depth: 0,
            last_batch: BatchTelemetry::default(),
        };
        for omit in 0..=dim {
            let verts: Vec<u32> = simplex
                .iter()
                .copied()
                .filter(|&v| v != omit as u32)
                .collect();
            let fv = facet_verts(&verts);
            let plane = hull.plane_for(&fv);
            let visible_sign = hull.visible_sign_for(&plane);
            let id = hull.push_facet(fv, visible_sign, plane, 1);
            hull.seeds.push(id);
        }
        hull
    }

    /// The exact hyperplane through a facet's vertices (staged kernel).
    fn plane_for(&self, verts: &FacetVerts) -> Hyperplane {
        let mut rows: [&[i64]; MAX_DIM] = [&[]; MAX_DIM];
        for i in 0..self.dim {
            rows[i] = self.pts.pt(verts[i]);
        }
        Hyperplane::new(self.dim, &rows[..self.dim])
    }

    fn push_facet(
        &mut self,
        verts: FacetVerts,
        visible_sign: Sign,
        plane: Hyperplane,
        depth: u32,
    ) -> u32 {
        let id = self.facets.len() as u32;
        self.dep_depth = self.dep_depth.max(depth);
        self.facets.push(OFacet {
            verts,
            visible_sign,
            plane,
            alive: true,
            children: Vec::new(),
            depth,
        });
        for omit in 0..self.dim {
            let r = ridge_omitting(&verts, self.dim, omit);
            let entry = self.adj.entry(r).or_insert([NO_FACET, NO_FACET]);
            if entry[0] == NO_FACET {
                entry[0] = id;
            } else {
                debug_assert_eq!(entry[1], NO_FACET);
                entry[1] = id;
            }
        }
        id
    }

    fn remove_from_adj(&mut self, id: u32) {
        let verts = self.facets[id as usize].verts;
        for omit in 0..self.dim {
            let r = ridge_omitting(&verts, self.dim, omit);
            if let Some(entry) = self.adj.get_mut(&r) {
                if entry[0] == id {
                    entry[0] = entry[1];
                }
                entry[1] = NO_FACET;
                if entry[0] == NO_FACET {
                    self.adj.remove(&r);
                }
            }
        }
    }

    /// Exact visibility of coordinate `q` from facet `id`, via the
    /// facet's cached plane (staged kernel).
    fn sees(&self, id: u32, q: &[i64], counts: &mut KernelCounts) -> bool {
        let f = &self.facets[id as usize];
        let s = f.plane.sign_point(q, counts);
        s != Sign::Zero && s == f.visible_sign
    }

    /// Like [`OnlineHull::sees`], but routed through a batched SoA filter
    /// block when one is supplied. The block's per-plane arithmetic is
    /// identical to the scalar filter stage, so both the answer and every
    /// counter increment (`tests`, `filter_hits`, exact fallbacks) are
    /// bit-identical to the per-facet staged kernel.
    #[inline]
    fn sees_with(
        &self,
        id: u32,
        q: &[i64],
        qf: &[f64],
        block: Option<&PlaneBlock>,
        counts: &mut KernelCounts,
    ) -> bool {
        let f = &self.facets[id as usize];
        let s = match block {
            Some(b) => {
                counts.tests += 1;
                match b.filter_sign(id, qf) {
                    Some(s) => {
                        counts.filter_hits += 1;
                        s
                    }
                    None => f.plane.sign_exact(q, counts),
                }
            }
            None => f.plane.sign_point(q, counts),
        };
        s != Sign::Zero && s == f.visible_sign
    }

    /// History descent from the seed facets: visit every history node
    /// whose conflict region contains `q` (the support property
    /// `C(t) ⊆ C(t1) ∪ C(t2)` guarantees no visible facet is missed),
    /// calling `on_alive` for each **alive** visible facet in DFS order.
    /// `on_alive` returning `true` stops the descent early (used by
    /// membership tests, which only need *one* witness). Returns the
    /// number of history nodes visited — the descent-step cost, expected
    /// `O(log n)` for points in random position (Section 4).
    fn descend<F>(
        &self,
        q: &[i64],
        block: Option<&PlaneBlock>,
        counts: &mut KernelCounts,
        mut on_alive: F,
    ) -> usize
    where
        F: FnMut(u32) -> bool,
    {
        debug_assert!(block.is_none_or(|b| b.len() == self.facets.len()));
        let qf = PlaneBlock::query_row(q);
        DESCENT_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.1 += 1;
            let epoch = scratch.1;
            if scratch.0.len() < self.facets.len() {
                scratch.0.resize(self.facets.len(), 0);
            }
            let stamps = &mut scratch.0;
            let mut stack: Vec<u32> = Vec::new();
            let mut visited = 0usize;
            for &s in &self.seeds {
                stamps[s as usize] = epoch;
                visited += 1;
                if self.sees_with(s, q, &qf, block, counts) {
                    stack.push(s);
                }
            }
            while let Some(id) = stack.pop() {
                // Invariant: q is visible from `id`.
                if self.facets[id as usize].alive && on_alive(id) {
                    return visited;
                }
                for ci in 0..self.facets[id as usize].children.len() {
                    let c = self.facets[id as usize].children[ci];
                    if stamps[c as usize] != epoch {
                        stamps[c as usize] = epoch;
                        visited += 1;
                        if self.sees_with(c, q, &qf, block, counts) {
                            stack.push(c);
                        }
                    }
                }
            }
            visited
        })
    }

    /// All alive facets visible from `q`, found by history descent, in
    /// DFS discovery order (insertion depends on this order — it fixes
    /// the ids of the facets an insert creates). Shared: counters go to
    /// the caller's accumulator, the visited-node count is the second
    /// return.
    fn locate(&self, q: &[i64], counts: &mut KernelCounts) -> (Vec<u32>, usize) {
        let mut out = Vec::new();
        let count = self.descend(q, None, counts, |id| {
            out.push(id);
            false
        });
        (out, count)
    }

    /// Insert a point. Returns `true` if the point is outside the current
    /// hull (and the hull was extended), `false` if it is inside or on the
    /// boundary (and was recorded but changed nothing).
    pub fn insert(&mut self, coords: &[i64]) -> bool {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        let mut counts = KernelCounts::default();
        let (visible, visited) = self.locate(coords, &mut counts);
        self.kernel.merge(&counts);
        self.last_visited = visited;
        if chull_obs::armed() {
            crate::telemetry::engine_metrics()
                .online_visited_nodes
                .record(visited as u64);
        }
        let v = self.pts.len() as u32;
        self.pts.push(coords);
        if visible.is_empty() {
            return false;
        }
        // Boundary ridges: incident to exactly one visible facet.
        let in_r: std::collections::HashSet<u32> = visible.iter().copied().collect();
        let mut boundary: Vec<(RidgeKey, u32, u32)> = Vec::new();
        for &t1 in &visible {
            let verts = self.facets[t1 as usize].verts;
            for omit in 0..self.dim {
                let r = ridge_omitting(&verts, self.dim, omit);
                let pair = self.adj[&r];
                let t2 = if pair[0] == t1 { pair[1] } else { pair[0] };
                debug_assert_ne!(t2, NO_FACET, "hull not closed");
                if !in_r.contains(&t2) {
                    boundary.push((r, t1, t2));
                }
            }
        }
        for &t in &visible {
            self.facets[t as usize].alive = false;
            self.remove_from_adj(t);
        }
        let mut insert_depth = 0u32;
        for (r, t1, t2) in boundary {
            let verts = join_ridge(&r, self.dim, v);
            let plane = self.plane_for(&verts);
            let visible_sign = self.visible_sign_for(&plane);
            let d = 1 + self.facets[t1 as usize]
                .depth
                .max(self.facets[t2 as usize].depth);
            insert_depth = insert_depth.max(d);
            let id = self.push_facet(verts, visible_sign, plane, d);
            self.facets[t1 as usize].children.push(id);
            self.facets[t2 as usize].children.push(id);
        }
        if chull_obs::armed() {
            crate::telemetry::engine_metrics()
                .online_insert_depth
                .record(insert_depth as u64);
        }
        true
    }

    /// Insert a whole batch of points as **one parallel step** — Algorithm 3
    /// (`ProcessRidge` recursion, Theorem 5.5) run from the current hull
    /// instead of the initial simplex, on a pool of `threads` workers
    /// (`0` = auto). Returns one flag per point, `true` iff that point
    /// extended the hull — exactly what [`OnlineHull::insert`] would have
    /// returned inserting the batch one point at a time in slice order.
    ///
    /// The resulting hull (facet set, ids, adjacency, history graph,
    /// dependence depths, kernel counters) is identical for every
    /// `threads` value: created facets are integrated in canonical
    /// `(creator, verts)` order, which is schedule-independent. Batches
    /// shorter than [`MIN_PAR_BATCH`] take the sequential path.
    ///
    /// Kernel counters follow the *offline* (conflict-list) counting
    /// regime — `(batch size) × (alive facets)` seeding tests plus the
    /// recursion's merge tests — which differs from the online locate
    /// counting that per-point [`OnlineHull::insert`] performs; both are
    /// deterministic, but they are not comparable across paths.
    pub fn insert_batch_par(&mut self, points: &[Vec<i64>], threads: usize) -> Vec<bool> {
        for p in points {
            assert_eq!(p.len(), self.dim, "point of wrong dimension");
        }
        self.last_batch = BatchTelemetry::default();
        if points.len() < MIN_PAR_BATCH {
            return points.iter().map(|p| self.insert(p)).collect();
        }
        let threads = if threads == 0 {
            chull_concurrent::pool::default_threads()
        } else {
            threads
        };
        let base = self.pts.len() as u32;
        for p in points {
            self.pts.push(p);
        }
        let batch_ids: Vec<u32> = (base..base + points.len() as u32).collect();

        // Seed slots: alive facets in facet-id order.
        let mut seed_ids: Vec<u32> = Vec::new();
        let mut slot_of = vec![NO_FACET; self.facets.len()];
        for (id, f) in self.facets.iter().enumerate() {
            if f.alive {
                slot_of[id] = seed_ids.len() as u32;
                seed_ids.push(id as u32);
            }
        }
        let seed_verts: Vec<FacetVerts> = seed_ids
            .iter()
            .map(|&id| self.facets[id as usize].verts)
            .collect();
        let mut ridges: Vec<(u32, RidgeKey, u32)> = self
            .adj
            .iter()
            .map(|(&r, &pair)| {
                debug_assert!(
                    pair[0] != NO_FACET && pair[1] != NO_FACET,
                    "hull not closed"
                );
                (slot_of[pair[0] as usize], r, slot_of[pair[1] as usize])
            })
            .collect();
        // HashMap iteration order is arbitrary; sort by ridge key so the
        // spawn order (and any armed telemetry) is reproducible. The hull
        // outcome is schedule-independent either way.
        ridges.sort_unstable_by_key(|&(_, r, _)| r);

        let run = {
            let simplex: Vec<u32> = (0..=self.dim as u32).collect();
            // Same seed ids and interior centroid as `OnlineHull::new`, so
            // every `make_facet` sign is bit-identical to this hull's own.
            let ctx = crate::context::HullContext::new(&self.pts, &simplex);
            crate::par::batch::run_batch(ctx, &seed_verts, &ridges, &batch_ids, threads)
        };
        self.last_batch = BatchTelemetry {
            batch_len: points.len(),
            created: run.created.len(),
            recursion_depth: run.recursion_depth,
            buried: run.buried,
            replaced: run.replaced,
            busy_ns: run.busy_ns,
        };

        let mut accepted = vec![false; points.len()];
        let batch_depth = self.integrate_batch_run(run, &seed_ids, |creator| {
            accepted[(creator - base) as usize] = true;
        });
        if chull_obs::armed() {
            crate::telemetry::engine_metrics()
                .online_insert_depth
                .record(batch_depth as u64);
        }
        accepted
    }

    /// Integrate one [`crate::par::batch::run_batch`] result: kill the
    /// replaced pre-batch facets before registering any new adjacency (so
    /// shared ridges never see three incidents), then append created
    /// facets in canonical `(creator, verts)` order, wiring adjacency,
    /// history-graph children, and dependence depths, and fold the run's
    /// kernel counters in. `on_created` fires once per created facet with
    /// the creator's point id. Shared by [`OnlineHull::insert_batch_par`]
    /// and the bulk-recovery install. Returns the deepest depth created.
    fn integrate_batch_run(
        &mut self,
        run: crate::par::batch::BatchRun,
        seed_ids: &[u32],
        mut on_created: impl FnMut(u32),
    ) -> u32 {
        for &slot in &run.dead_seeds {
            let id = seed_ids[slot as usize];
            self.facets[id as usize].alive = false;
            self.remove_from_adj(id);
        }
        let pre_len = self.facets.len() as u32;
        let seed_count = seed_ids.len() as u32;
        let mut batch_depth = 0u32;
        for cf in run.created {
            let id = self.facets.len() as u32;
            let resolve = |p: u32| -> u32 {
                if p < seed_count {
                    seed_ids[p as usize]
                } else {
                    pre_len + (p - seed_count)
                }
            };
            let (t1, t2) = (resolve(cf.parents[0]), resolve(cf.parents[1]));
            let depth = 1 + self.facets[t1 as usize]
                .depth
                .max(self.facets[t2 as usize].depth);
            batch_depth = batch_depth.max(depth);
            self.dep_depth = self.dep_depth.max(depth);
            on_created(cf.creator);
            self.facets.push(OFacet {
                verts: cf.verts,
                visible_sign: cf.visible_sign,
                plane: cf.plane,
                alive: !cf.dead,
                children: Vec::new(),
                depth,
            });
            if !cf.dead {
                for omit in 0..self.dim {
                    let r = ridge_omitting(&cf.verts, self.dim, omit);
                    let entry = self.adj.entry(r).or_insert([NO_FACET, NO_FACET]);
                    if entry[0] == NO_FACET {
                        entry[0] = id;
                    } else {
                        debug_assert_eq!(entry[1], NO_FACET);
                        entry[1] = id;
                    }
                }
            }
            self.facets[t1 as usize].children.push(id);
            self.facets[t2 as usize].children.push(id);
        }
        self.kernel.merge(&run.counts);
        self.last_visited = 0;
        batch_depth
    }

    /// Extend a **freshly seeded** hull (seed simplex only, every point
    /// already appended to the point set) with the given candidate ids in
    /// one parallel batch step. This is the bulk-recovery install:
    /// [`HullBuilder::seed_from_bulk`] appends all journaled points first
    /// so pruned interior points keep their vertex ids, then the
    /// divide-and-conquer survivors run through a single
    /// [`crate::par::batch::run_batch`] from the simplex.
    fn install_bulk(&mut self, candidates: &[u32], threads: usize) {
        debug_assert!(
            self.facets.iter().all(|f| f.alive) && self.facets.len() == self.dim + 1,
            "install_bulk requires a fresh seed simplex"
        );
        self.last_batch = BatchTelemetry::default();
        if candidates.is_empty() {
            return;
        }
        // Facet ids on a fresh simplex are exactly the seed slots
        // `0..=dim`, so adjacency pairs map to slots without translation.
        let seed_ids: Vec<u32> = (0..self.facets.len() as u32).collect();
        let seed_verts: Vec<FacetVerts> = seed_ids
            .iter()
            .map(|&id| self.facets[id as usize].verts)
            .collect();
        let mut ridges: Vec<(u32, RidgeKey, u32)> = self
            .adj
            .iter()
            .map(|(&r, &pair)| (pair[0], r, pair[1]))
            .collect();
        ridges.sort_unstable_by_key(|&(_, r, _)| r);
        let run = {
            let simplex: Vec<u32> = (0..=self.dim as u32).collect();
            let ctx = crate::context::HullContext::new(&self.pts, &simplex);
            crate::par::batch::run_batch(ctx, &seed_verts, &ridges, candidates, threads)
        };
        self.last_batch = BatchTelemetry {
            batch_len: candidates.len(),
            created: run.created.len(),
            recursion_depth: run.recursion_depth,
            buried: run.buried,
            replaced: run.replaced,
            busy_ns: run.busy_ns,
        };
        let batch_depth = self.integrate_batch_run(run, &seed_ids, |_| {});
        if chull_obs::armed() {
            crate::telemetry::engine_metrics()
                .online_insert_depth
                .record(batch_depth as u64);
        }
    }

    /// Deepest dependence chain over all facets ever created: the
    /// observed `D(G(S))` this hull has realized, directly comparable
    /// to the `σ·H_n` whp bound of Theorem 4.2. Seeds count 1.
    pub fn dep_depth(&self) -> u64 {
        self.dep_depth as u64
    }

    fn visible_sign_for(&self, plane: &Hyperplane) -> Sign {
        let s = plane.sign_hom(&self.interior_row, self.interior_hom);
        assert_ne!(s, Sign::Zero, "degenerate facet orientation");
        s.negate()
    }

    /// Membership test for an arbitrary coordinate (does not insert).
    /// Shared — runs concurrently from many threads; per-call kernel
    /// counters are discarded (see [`OnlineHull::contains_counted`]).
    pub fn contains(&self, coords: &[i64]) -> bool {
        let mut counts = KernelCounts::default();
        self.contains_counted(coords, &mut counts)
    }

    /// [`OnlineHull::contains`], accumulating staged-kernel counters into
    /// the caller's tally (which the service folds into shared atomics).
    pub fn contains_counted(&self, coords: &[i64], counts: &mut KernelCounts) -> bool {
        self.contains_with(coords, counts, None)
    }

    /// [`OnlineHull::contains_counted`] with an optional packed-plane
    /// filter block (built once per frozen snapshot via
    /// [`OnlineHull::plane_block`]). The descent stops at the **first**
    /// alive visible facet — one witness decides membership — and folds
    /// its visited-node count into `counts.descent_steps`. Under the
    /// `linear-scan` feature this delegates to the full-scan oracle
    /// ([`OnlineHull::contains_scan`]) instead; answers are identical
    /// either way.
    pub fn contains_with(
        &self,
        coords: &[i64],
        counts: &mut KernelCounts,
        block: Option<&PlaneBlock>,
    ) -> bool {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        #[cfg(feature = "linear-scan")]
        {
            let _ = block;
            self.contains_scan(coords, counts)
        }
        #[cfg(not(feature = "linear-scan"))]
        {
            let mut outside = false;
            let visited = self.descend(coords, block, counts, |_| {
                outside = true;
                true
            });
            counts.descent_steps += visited as u64;
            !outside
        }
    }

    /// The alive facets visible from `coords` (empty iff the point is
    /// inside or on the hull). Shared read path, like
    /// [`OnlineHull::contains_counted`].
    pub fn visible_facets(&self, coords: &[i64], counts: &mut KernelCounts) -> Vec<u32> {
        self.visible_facets_with(coords, counts, None)
    }

    /// [`OnlineHull::visible_facets`] with an optional packed-plane
    /// filter block; folds the descent-step count into
    /// `counts.descent_steps`. Under the `linear-scan` feature this
    /// delegates to [`OnlineHull::visible_facets_scan`]; the returned
    /// *set* of facets is identical either way (the orders differ: DFS
    /// discovery vs ascending id).
    pub fn visible_facets_with(
        &self,
        coords: &[i64],
        counts: &mut KernelCounts,
        block: Option<&PlaneBlock>,
    ) -> Vec<u32> {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        #[cfg(feature = "linear-scan")]
        {
            let _ = block;
            self.visible_facets_scan(coords, counts)
        }
        #[cfg(not(feature = "linear-scan"))]
        {
            let mut out = Vec::new();
            let visited = self.descend(coords, block, counts, |id| {
                out.push(id);
                false
            });
            counts.descent_steps += visited as u64;
            out
        }
    }

    /// Linear-scan membership oracle: test **every** alive facet with the
    /// per-facet staged kernel, in ascending facet-id order. This is the
    /// pre-descent read path, kept as the A/B baseline and correctness
    /// oracle (`hull query --scan`, the `linear-scan` feature, and the
    /// wire `*Scan` ops). Never touches `descent_steps`.
    pub fn contains_scan(&self, coords: &[i64], counts: &mut KernelCounts) -> bool {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        self.visible_facets_scan(coords, counts).is_empty()
    }

    /// Linear-scan twin of [`OnlineHull::visible_facets`]: all alive
    /// facets that see `coords`, in ascending facet-id order.
    pub fn visible_facets_scan(&self, coords: &[i64], counts: &mut KernelCounts) -> Vec<u32> {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        (0..self.facets.len() as u32)
            .filter(|&id| self.facets[id as usize].alive && self.sees(id, coords, counts))
            .collect()
    }

    /// Tri-state location of `coords` relative to the current hull, via
    /// one pass over the alive facets with the staged exact kernel:
    /// strictly interior, on the boundary (on some alive facet's
    /// hyperplane without being beyond any), or strictly outside.
    ///
    /// Deleting an `Inside` point cannot change the hull; deleting an
    /// `OnBoundary` or `Outside` one can — this is the decision the
    /// windowed serving layer's tombstone-vs-rebuild trigger rests on
    /// (an `Outside` classification only arises transiently, for points
    /// buffered but not yet applied).
    pub fn classify(&self, coords: &[i64], counts: &mut KernelCounts) -> PointLocation {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        let mut on_boundary = false;
        for f in self.facets.iter().filter(|f| f.alive) {
            let s = f.plane.sign_point(coords, counts);
            if s == Sign::Zero {
                on_boundary = true;
            } else if s == f.visible_sign {
                return PointLocation::Outside;
            }
        }
        if on_boundary {
            PointLocation::OnBoundary
        } else {
            PointLocation::Inside
        }
    }

    /// Pack every facet plane ever created (dead ones included — the
    /// history descent walks through them) into one SoA filter block,
    /// indexed by facet id. Built once per frozen snapshot by
    /// `chull-service` and shared read-only across query threads; it is
    /// only valid for the exact facet vector it was built from, so a
    /// mutable hull must rebuild it after inserting.
    pub fn plane_block(&self) -> PlaneBlock {
        PlaneBlock::from_planes(self.dim, self.facets.iter().map(|f| &f.plane))
    }

    /// The vertex ids on the current hull, ascending and deduplicated.
    /// One O(facets) pass — intended to be cached per frozen snapshot so
    /// [`OnlineHull::extreme_with`] answers directional queries in
    /// O(hull vertices) with no per-query set-building.
    pub fn hull_vertices(&self) -> Vec<u32> {
        let mut verts: Vec<u32> = self
            .facets
            .iter()
            .filter(|f| f.alive)
            .flat_map(|f| f.verts[..self.dim].iter().copied())
            .collect();
        verts.sort_unstable();
        verts.dedup();
        verts
    }

    /// The hull vertex extreme in direction `dir` (maximizing `dir · p`
    /// exactly over the current hull vertices): `(point id, coordinates)`.
    /// Ties break toward the smallest id. `dir` components must stay
    /// within [`chull_geometry::MAX_COORD`] so the `i128` dot products
    /// cannot overflow.
    ///
    /// Directional queries deliberately do **not** descend the history
    /// graph: visibility of a direction at infinity can degenerate to
    /// `Zero` on an ancestor facet even when a descendant is extreme, so
    /// the support property gives no completeness guarantee off the
    /// finite point set (DESIGN §S18). A scan over the hull's vertex set
    /// is exact and already sublinear in the history size.
    pub fn extreme(&self, dir: &[i64]) -> (u32, Vec<i64>) {
        self.extreme_with(dir, &self.hull_vertices())
    }

    /// [`OnlineHull::extreme`] over a caller-cached vertex list (ascending
    /// ids, as produced by [`OnlineHull::hull_vertices`]) — the tight loop
    /// behind snapshot `Extreme` queries.
    pub fn extreme_with(&self, dir: &[i64], verts: &[u32]) -> (u32, Vec<i64>) {
        assert_eq!(dir.len(), self.dim, "direction of wrong dimension");
        assert!(
            dir.iter().all(|&c| c.abs() <= chull_geometry::MAX_COORD),
            "direction component exceeds MAX_COORD"
        );
        assert!(!verts.is_empty(), "hull has at least one facet");
        let dot = |v: u32| -> i128 {
            self.pts
                .pt(v)
                .iter()
                .zip(dir)
                .map(|(&c, &d)| c as i128 * d as i128)
                .sum()
        };
        // Ascending ids + strictly-greater updates = smallest-id tie-break.
        let mut best_v = verts[0];
        let mut best_s = dot(verts[0]);
        for &v in &verts[1..] {
            let s = dot(v);
            if s > best_s {
                best_s = s;
                best_v = v;
            }
        }
        (best_v, self.pts.pt(best_v).to_vec())
    }

    /// Number of points inserted so far (including the seed simplex).
    pub fn num_points(&self) -> usize {
        self.pts.len()
    }

    /// Snapshot of the current hull facets.
    pub fn output(&self) -> HullOutput {
        let facets: Vec<FacetVerts> = self
            .facets
            .iter()
            .filter(|f| f.alive)
            .map(|f| {
                let mut v = [NO_VERT; MAX_DIM];
                v[..self.dim].copy_from_slice(&f.verts[..self.dim]);
                v
            })
            .collect();
        HullOutput {
            dim: self.dim,
            facets,
        }
    }

    /// The accumulated point set (insertion order).
    pub fn points(&self) -> &PointSet {
        &self.pts
    }
}

/// An online hull builder that also handles the **degenerate prefix**:
/// arrivals are buffered until `d + 1` affinely independent points have
/// been seen (the seed simplex), then the buffer replays into a live
/// [`OnlineHull`] in arrival order.
///
/// This is the crash-recovery **replay entry point**: a shard that loses
/// its worker rebuilds its exact state by streaming its append-only
/// insert journal through [`HullBuilder::replay`]. Because the hull is
/// order-independent (any execution order consistent with the dependence
/// graph yields the identical hull — Theorem 4.2), and replay preserves
/// the journal order anyway, the rebuilt hull is bit-identical to the
/// lost one on the same insert prefix.
#[derive(Clone)]
pub struct HullBuilder {
    dim: usize,
    applied: u64,
    state: BuilderState,
}

#[derive(Clone)]
enum BuilderState {
    /// Buffered arrivals + indices of an affinely independent subset.
    Boot {
        pts: Vec<Vec<i64>>,
        basis: Vec<usize>,
    },
    Live(Box<OnlineHull>),
}

impl HullBuilder {
    /// An empty builder for dimension `dim` (2..=[`MAX_DIM`]).
    pub fn new(dim: usize) -> HullBuilder {
        assert!((2..=MAX_DIM).contains(&dim), "dimension out of range");
        HullBuilder {
            dim,
            applied: 0,
            state: BuilderState::Boot {
                pts: Vec::new(),
                basis: Vec::new(),
            },
        }
    }

    /// Rebuild a builder by replaying an insert sequence in order.
    pub fn replay<'a, I>(dim: usize, inserts: I) -> HullBuilder
    where
        I: IntoIterator<Item = &'a [i64]>,
    {
        let mut b = HullBuilder::new(dim);
        for p in inserts {
            b.push(p);
        }
        b
    }

    /// Accept one arrival: buffer it while bootstrapping, insert it into
    /// the live hull afterwards.
    pub fn push(&mut self, p: &[i64]) {
        assert_eq!(p.len(), self.dim, "point of wrong dimension");
        self.applied += 1;
        match &mut self.state {
            BuilderState::Boot { pts, basis } => {
                let mut rows: Vec<&[i64]> = basis.iter().map(|&i| pts[i].as_slice()).collect();
                rows.push(p);
                if chull_geometry::exact::affine_rank(&rows) == rows.len() {
                    basis.push(pts.len());
                }
                pts.push(p.to_vec());
                if basis.len() == self.dim + 1 {
                    // Seed simplex found: promote to a live hull and
                    // replay the remaining buffered arrivals in order.
                    let seeds: Vec<Vec<i64>> = basis.iter().map(|&i| pts[i].clone()).collect();
                    let mut hull = OnlineHull::new(self.dim, &seeds);
                    let basis_set: std::collections::HashSet<usize> =
                        basis.iter().copied().collect();
                    for (i, q) in pts.iter().enumerate() {
                        if !basis_set.contains(&i) {
                            hull.insert(q);
                        }
                    }
                    self.state = BuilderState::Live(Box::new(hull));
                }
            }
            BuilderState::Live(hull) => {
                hull.insert(p);
            }
        }
    }

    /// Accept a batch of arrivals as one unit: while bootstrapping, points
    /// feed through [`HullBuilder::push`] singly (affine-rank growth is
    /// inherently sequential); once live, the remainder of the batch goes
    /// through [`OnlineHull::insert_batch_par`] in a single parallel step.
    /// The bootstrap/parallel split depends only on the arrival sequence,
    /// so a journal replay re-derives it exactly.
    ///
    /// Returns one flag per point, `true` iff it extended the hull; points
    /// consumed while bootstrapping report `false` (they are seeds or
    /// buffered, not yet classified — matching what a caller can observe
    /// through [`HullBuilder::hull`]).
    pub fn push_batch(&mut self, points: &[Vec<i64>], threads: usize) -> Vec<bool> {
        let mut accepted = Vec::with_capacity(points.len());
        let mut i = 0;
        while i < points.len() {
            match &mut self.state {
                BuilderState::Boot { .. } => {
                    self.push(&points[i]);
                    accepted.push(false);
                    i += 1;
                }
                BuilderState::Live(hull) => {
                    let rest = &points[i..];
                    let res = hull.insert_batch_par(rest, threads);
                    self.applied += rest.len() as u64;
                    accepted.extend(res);
                    break;
                }
            }
        }
        accepted
    }

    /// Rebuild a builder by replaying journaled **batch units** through the
    /// same parallel path the live shard used. Because
    /// [`OnlineHull::insert_batch_par`] is deterministic in everything —
    /// facet ids, adjacency, depths, counters — for any worker count, the
    /// rebuilt hull is bit-identical to the lost one, not merely
    /// canonically equal.
    pub fn replay_batches<'a, I>(dim: usize, batches: I, threads: usize) -> HullBuilder
    where
        I: IntoIterator<Item = &'a [Vec<i64>]>,
    {
        let mut b = HullBuilder::new(dim);
        for batch in batches {
            b.push_batch(batch, threads);
        }
        b
    }

    /// Seed a builder from a **fully known** point sequence in one bulk
    /// step instead of incremental replay — the recovery-path fast lane
    /// (DESIGN §S21). Runs the divide-and-conquer candidate sweep
    /// ([`crate::bulk::bulk_candidates`]) over all rows, then installs the
    /// surviving candidates with a single parallel batch from the seed
    /// simplex. The facet set is canonically identical to Algorithm 2 on
    /// the same rows (debug builds cross-check against
    /// [`crate::seq::incremental_hull_run`]) and to what
    /// [`HullBuilder::replay`] would build, for every worker count; facet
    /// ids, history depths, and kernel counters follow the bulk counting
    /// regime rather than replay's, exactly as
    /// [`OnlineHull::insert_batch_par`]'s differ from per-point inserts.
    ///
    /// Internal vertex-id order matches [`HullBuilder::push`] promotion —
    /// the greedy affine basis first, then every other row in arrival
    /// order — so snapshots and queries observe the same ids either way.
    /// Inputs without `d + 1` affinely independent rows fall back to plain
    /// incremental replay (`report.fallback`).
    pub fn seed_from_bulk(
        dim: usize,
        rows: &[Vec<i64>],
        threads: usize,
    ) -> (HullBuilder, crate::bulk::BulkReport) {
        let threads = if threads == 0 {
            chull_concurrent::pool::default_threads()
        } else {
            threads
        };
        let mut report = crate::bulk::BulkReport::default();
        // Greedy basis over arrival order — the same selection rule
        // `HullBuilder::push` applies while bootstrapping.
        let mut basis: Vec<usize> = Vec::with_capacity(dim + 1);
        for (i, p) in rows.iter().enumerate() {
            assert_eq!(p.len(), dim, "point of wrong dimension");
            let mut sel: Vec<&[i64]> = basis.iter().map(|&j| rows[j].as_slice()).collect();
            sel.push(p);
            if chull_geometry::exact::affine_rank(&sel) == sel.len() {
                basis.push(i);
                if basis.len() == dim + 1 {
                    break;
                }
            }
        }
        if basis.len() < dim + 1 {
            report.fallback = true;
            report.input = rows.len();
            let b = HullBuilder::replay(dim, rows.iter().map(|r| r.as_slice()));
            return (b, report);
        }
        let seeds: Vec<Vec<i64>> = basis.iter().map(|&i| rows[i].clone()).collect();
        let mut hull = OnlineHull::new(dim, &seeds);
        let basis_set: std::collections::HashSet<usize> = basis.iter().copied().collect();
        for (i, p) in rows.iter().enumerate() {
            if !basis_set.contains(&i) {
                hull.pts.push(p);
            }
        }
        let candidates: Vec<u32> = crate::bulk::bulk_candidates(&hull.pts, threads, &mut report)
            .into_iter()
            // The seed simplex ids `0..=dim` are already installed.
            .filter(|&c| c > dim as u32)
            .collect();
        hull.install_bulk(&candidates, threads);
        #[cfg(debug_assertions)]
        {
            let reference = crate::seq::incremental_hull_run(&hull.pts);
            debug_assert_eq!(
                hull.output().canonical(),
                reference.output.canonical(),
                "bulk-built hull differs from Algorithm 2's canonical hull"
            );
        }
        let b = HullBuilder {
            dim,
            applied: rows.len() as u64,
            state: BuilderState::Live(Box::new(hull)),
        };
        (b, report)
    }

    /// The dimension this builder was created with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Arrivals accepted so far (buffered + inserted, including seeds).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The live hull, once the seed simplex has been found.
    pub fn hull(&self) -> Option<&OnlineHull> {
        match &self.state {
            BuilderState::Boot { .. } => None,
            BuilderState::Live(h) => Some(h.as_ref()),
        }
    }

    /// The buffered arrivals while bootstrapping (`None` once live).
    pub fn buffered(&self) -> Option<&[Vec<i64>]> {
        match &self.state {
            BuilderState::Boot { pts, .. } => Some(pts),
            BuilderState::Live(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use crate::seq::incremental_hull_run;
    use crate::verify::verify_hull;
    use chull_geometry::generators;

    fn online_from(pts: &PointSet) -> OnlineHull {
        let dim = pts.dim();
        let seeds: Vec<Vec<i64>> = (0..=dim).map(|i| pts.point(i).to_vec()).collect();
        let mut hull = OnlineHull::new(dim, &seeds);
        for i in (dim + 1)..pts.len() {
            hull.insert(pts.point(i));
        }
        hull
    }

    #[test]
    fn matches_offline_2d_and_3d() {
        for seed in 0..3u64 {
            let pts = prepare_points(
                &PointSet::from_points2(&generators::disk_2d(400, 1 << 20, seed)),
                seed + 1,
            );
            let offline = incremental_hull_run(&pts);
            let online = online_from(&pts);
            assert_eq!(online.output().canonical(), offline.output.canonical());

            let pts = prepare_points(
                &PointSet::from_points3(&generators::ball_3d(250, 1 << 20, seed)),
                seed + 2,
            );
            let offline = incremental_hull_run(&pts);
            let online = online_from(&pts);
            assert_eq!(online.output().canonical(), offline.output.canonical());
        }
    }

    #[test]
    fn matches_offline_higher_dims() {
        for dim in 4..=5 {
            let pts = prepare_points(&generators::ball_d(dim, 48, 1 << 16, 9), 10);
            let offline = incremental_hull_run(&pts);
            let online = online_from(&pts);
            assert_eq!(
                online.output().canonical(),
                offline.output.canonical(),
                "dim {dim}"
            );
        }
    }

    #[test]
    fn insert_reports_extremeness() {
        let mut hull = OnlineHull::new(2, &[vec![0, 0], vec![100, 0], vec![0, 100]]);
        assert!(!hull.insert(&[10, 10]), "interior point");
        assert!(hull.insert(&[100, 100]), "exterior point");
        assert!(!hull.insert(&[50, 50]), "now interior");
        assert_eq!(hull.output().num_facets(), 4);
        let pts = hull.points().clone();
        verify_hull(&pts, &hull.output()).unwrap();
    }

    #[test]
    fn membership_queries_are_shared_reads() {
        // `contains` takes `&self`: no mutation, usable through a shared
        // reference from many threads at once.
        let hull = OnlineHull::new(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        assert!(hull.contains(&[1, 1]));
        assert!(!hull.contains(&[100, 100]));
        assert_eq!(hull.num_points(), 3);
        assert_eq!(hull.output().num_facets(), 3);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &hull;
                s.spawn(move || {
                    let mut counts = KernelCounts::default();
                    assert!(h.contains_counted(&[1, 1 + t % 2], &mut counts));
                    assert!(counts.tests > 0);
                    assert!(!h.visible_facets(&[100, 100], &mut counts).is_empty());
                });
            }
        });
    }

    #[test]
    fn dep_depth_tracks_deepest_chain() {
        let mut hull = OnlineHull::new(2, &[vec![0, 0], vec![100, 0], vec![0, 100]]);
        assert_eq!(hull.dep_depth(), 1, "seed facets have depth 1");
        assert!(hull.insert(&[100, 100]));
        assert_eq!(hull.dep_depth(), 2, "children of seeds have depth 2");
        assert!(!hull.insert(&[50, 50]));
        assert_eq!(hull.dep_depth(), 2, "interior insert adds no depth");
        assert!(hull.insert(&[300, 300]));
        assert!(hull.dep_depth() >= 3, "chain through the new corner");
    }

    #[test]
    fn extreme_maximizes_direction() {
        let mut hull = OnlineHull::new(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        hull.insert(&[10, 10]);
        hull.insert(&[5, 5]); // interior
        let (v, coords) = hull.extreme(&[1, 1]);
        assert_eq!(coords, vec![10, 10]);
        assert_eq!(v, 3);
        let (_, coords) = hull.extreme(&[-1, 0]);
        assert_eq!(coords[0], 0);
        let (_, coords) = hull.extreme(&[0, -1]);
        assert_eq!(coords[1], 0);
    }

    #[test]
    fn builder_buffers_degenerate_prefix_then_goes_live() {
        let mut b = HullBuilder::new(2);
        for p in [[0, 0], [1, 1], [2, 2], [3, 3]] {
            b.push(&p);
        }
        assert!(b.hull().is_none(), "collinear prefix stays in bootstrap");
        assert_eq!(b.buffered().unwrap().len(), 4);
        b.push(&[5, 0]);
        assert!(b.hull().is_some());
        assert_eq!(b.applied(), 5);
        assert!(b.hull().unwrap().contains(&[2, 1]));
    }

    #[test]
    fn replay_rebuilds_bit_identical_hull() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(300, 1 << 20, 17)),
            18,
        );
        let rows: Vec<&[i64]> = (0..pts.len()).map(|i| pts.point(i)).collect();
        let mut live = HullBuilder::new(2);
        for r in &rows {
            live.push(r);
        }
        let replayed = HullBuilder::replay(2, rows.iter().copied());
        let (a, b) = (live.hull().unwrap(), replayed.hull().unwrap());
        assert_eq!(a.output().canonical(), b.output().canonical());
        assert_eq!(a.num_points(), b.num_points());
        // Same arrival order => identical vertex ids, facets, everything.
        assert_eq!(a.output().facets, b.output().facets);
    }

    #[test]
    fn single_batch_matches_offline_algorithm2_exactly() {
        for (dim, seed) in [(2usize, 11u64), (3, 12)] {
            let pts = if dim == 2 {
                prepare_points(
                    &PointSet::from_points2(&generators::disk_2d(500, 1 << 20, seed)),
                    seed + 1,
                )
            } else {
                prepare_points(
                    &PointSet::from_points3(&generators::ball_3d(300, 1 << 20, seed)),
                    seed + 1,
                )
            };
            let offline = incremental_hull_run(&pts);
            let seeds: Vec<Vec<i64>> = (0..=dim).map(|i| pts.point(i).to_vec()).collect();
            let batch: Vec<Vec<i64>> = ((dim + 1)..pts.len())
                .map(|i| pts.point(i).to_vec())
                .collect();
            let mut hull = OnlineHull::new(dim, &seeds);
            let accepted = hull.insert_batch_par(&batch, 4);
            assert_eq!(hull.output().canonical(), offline.output.canonical());
            verify_hull(&pts, &hull.output()).unwrap();
            // One batch over the whole input IS the offline Algorithm 2 run:
            // seeding + recursion perform exactly its visibility tests, per
            // kernel stage, and create exactly its facets.
            assert_eq!(hull.kernel.tests, offline.stats.visibility_tests);
            assert_eq!(hull.kernel.filter_hits, offline.stats.filter_hits);
            assert_eq!(hull.kernel.i128_fallbacks, offline.stats.i128_fallbacks);
            assert_eq!(hull.kernel.bigint_fallbacks, offline.stats.bigint_fallbacks);
            assert_eq!(
                hull.last_batch.created as u64 + dim as u64 + 1,
                offline.stats.facets_created
            );
            // Seeds count 1 online but 0 offline; the chains are the same.
            assert_eq!(hull.dep_depth(), offline.stats.dep_depth + 1);
            // Extremeness flags match per-point insertion in the same order.
            let mut solo = OnlineHull::new(dim, &seeds);
            let solo_accepted: Vec<bool> = batch.iter().map(|p| solo.insert(p)).collect();
            assert_eq!(accepted, solo_accepted);
        }
    }

    #[test]
    fn batch_insert_is_deterministic_across_worker_counts() {
        let pts = prepare_points(
            &PointSet::from_points3(&generators::ball_3d(400, 1 << 20, 7)),
            8,
        );
        let dim = 3;
        let seeds: Vec<Vec<i64>> = (0..=dim).map(|i| pts.point(i).to_vec()).collect();
        let batch: Vec<Vec<i64>> = ((dim + 1)..pts.len())
            .map(|i| pts.point(i).to_vec())
            .collect();
        let mut reference: Option<(Vec<bool>, HullOutput, KernelCounts, u64)> = None;
        for threads in [1usize, 2, 4] {
            let mut hull = OnlineHull::new(dim, &seeds);
            let accepted = hull.insert_batch_par(&batch, threads);
            assert_eq!(hull.last_batch.batch_len, batch.len());
            let out = hull.output();
            match &reference {
                None => reference = Some((accepted, out, hull.kernel, hull.dep_depth())),
                Some((a, o, k, d)) => {
                    assert_eq!(&accepted, a, "accepted flags differ at {threads} threads");
                    // Facet-id-order equality, not just canonical: the whole
                    // point of the canonical integration order.
                    assert_eq!(
                        out.facets, o.facets,
                        "facet ids differ at {threads} threads"
                    );
                    assert_eq!(hull.kernel, *k, "kernel counts differ at {threads} threads");
                    assert_eq!(hull.dep_depth(), *d);
                }
            }
        }
    }

    #[test]
    fn sequential_then_batch_continues_algorithm2() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(600, 1 << 20, 21)),
            22,
        );
        let dim = 2;
        let offline = incremental_hull_run(&pts);
        let seeds: Vec<Vec<i64>> = (0..=dim).map(|i| pts.point(i).to_vec()).collect();
        let mut hull = OnlineHull::new(dim, &seeds);
        let split = pts.len() / 2;
        for i in (dim + 1)..split {
            hull.insert(pts.point(i));
        }
        let batch: Vec<Vec<i64>> = (split..pts.len()).map(|i| pts.point(i).to_vec()).collect();
        hull.insert_batch_par(&batch, 3);
        assert_eq!(hull.output().canonical(), offline.output.canonical());
        verify_hull(&pts, &hull.output()).unwrap();
        // And further single inserts keep working on the batch-built state.
        assert!(!hull.insert(&[1, 1]), "interior point after batch");
    }

    #[test]
    fn small_batches_take_the_sequential_path() {
        let mut hull = OnlineHull::new(2, &[vec![0, 0], vec![100, 0], vec![0, 100]]);
        let batch: Vec<Vec<i64>> = vec![vec![10, 10], vec![100, 100], vec![50, 50]];
        assert!(batch.len() < MIN_PAR_BATCH);
        let accepted = hull.insert_batch_par(&batch, 4);
        assert_eq!(accepted, vec![false, true, false]);
        assert_eq!(
            hull.last_batch.batch_len, 0,
            "sequential path leaves no batch telemetry"
        );
        assert_eq!(hull.output().num_facets(), 4);
    }

    #[test]
    fn replay_batches_is_bit_identical() {
        let pts = prepare_points(
            &PointSet::from_points3(&generators::ball_3d(260, 1 << 20, 33)),
            34,
        );
        let rows: Vec<Vec<i64>> = (0..pts.len()).map(|i| pts.point(i).to_vec()).collect();
        // Uneven batch units, including sub-MIN_PAR_BATCH ones, like a
        // recovering shard would find in its journal.
        let sizes = [3usize, 5, 40, 7, 90, 2, 64];
        let mut batches: Vec<&[Vec<i64>]> = Vec::new();
        let mut at = 0;
        for &s in sizes.iter().cycle() {
            if at >= rows.len() {
                break;
            }
            let end = (at + s).min(rows.len());
            batches.push(&rows[at..end]);
            at = end;
        }
        let a = HullBuilder::replay_batches(3, batches.iter().copied(), 4);
        let b = HullBuilder::replay_batches(3, batches.iter().copied(), 1);
        let (ha, hb) = (a.hull().unwrap(), b.hull().unwrap());
        assert_eq!(
            ha.output().facets,
            hb.output().facets,
            "replay not bit-identical"
        );
        assert_eq!(ha.kernel, hb.kernel);
        assert_eq!(a.applied(), b.applied());
        // Canonically equal to the pure single-insert build of the same log.
        let singles = HullBuilder::replay(3, rows.iter().map(|r| r.as_slice()));
        assert_eq!(
            ha.output().canonical(),
            singles.hull().unwrap().output().canonical()
        );
        verify_hull(&pts, &ha.output()).unwrap();
    }

    #[test]
    fn push_batch_bootstraps_through_degenerate_prefix() {
        // A collinear prefix keeps the builder in bootstrap through most of
        // the batch; the parallel remainder starts mid-slice.
        let mut rows: Vec<Vec<i64>> = (0..10i64).map(|i| vec![i, i]).collect();
        rows.push(vec![5, 0]);
        for i in 0..20i64 {
            rows.push(vec![i % 7 * 13, (i * 31) % 11]);
        }
        let mut b = HullBuilder::new(2);
        let accepted = b.push_batch(&rows, 2);
        assert_eq!(accepted.len(), rows.len());
        assert_eq!(b.applied(), rows.len() as u64);
        let singles = HullBuilder::replay(2, rows.iter().map(|r| r.as_slice()));
        assert_eq!(
            b.hull().unwrap().output().canonical(),
            singles.hull().unwrap().output().canonical()
        );
    }

    #[test]
    fn location_cost_stays_logarithmic_random_order() {
        let pts = prepare_points(
            &PointSet::from_points2(&generators::disk_2d(4000, 1 << 24, 3)),
            4,
        );
        let dim = 2;
        let seeds: Vec<Vec<i64>> = (0..=dim).map(|i| pts.point(i).to_vec()).collect();
        let mut hull = OnlineHull::new(dim, &seeds);
        let mut total_visited = 0usize;
        for i in (dim + 1)..pts.len() {
            hull.insert(pts.point(i));
            total_visited += hull.last_visited;
        }
        let mean = total_visited as f64 / (pts.len() - 3) as f64;
        let hn: f64 = (1..=pts.len()).map(|i| 1.0 / i as f64).sum();
        assert!(mean < 10.0 * hn, "mean location cost {mean} too high");
        // Theorem 4.2 flavor: observed dependence depth stays within a
        // small constant of H_n on random-order input.
        let depth = hull.dep_depth() as f64;
        assert!(depth < 10.0 * hn, "dep depth {depth} vs H_n {hn}");
    }
}
