//! Replication: journal shipping from a primary to follower replicas.
//!
//! Theorem 4.2's order-independence is what makes this safe without
//! consensus: a shard's journaled insert **batch units** produce the
//! identical hull no matter how their application interleaves, so a
//! follower may fetch units late, twice, or out of order and still
//! converge bit-identical to the primary — batch apply is deterministic
//! per unit, and duplicate points never change a hull.
//!
//! The protocol is *pull-based* (wire v5, `ReplSubscribe`/`ReplAck`):
//! the follower's [`ReplicaPuller`] thread asks the primary for the
//! unit at `from_index = ` its own durable batch count, applies it
//! through [`HullService::apply_replica_unit`] — the same supervised
//! [`HullBuilder`](chull_core::online::HullBuilder) parallel path local
//! ingest uses, as exactly one journal unit so the follower's batch
//! indices mirror the primary's 1:1 — then acks. Because the resume
//! cursor *is* the follower's own batch count, resubscribe-with-resume
//! after any fault (link loss, dropped shipment, puller death
//! mid-apply) is a plain reconnect: nothing is lost, duplicates are
//! harmless, and the lag the primary reports is exact.
//!
//! Failure model:
//!
//! * the puller runs under `catch_unwind`; an injected
//!   [`sites::REPL_APPLY`] panic (follower death mid-apply) or any
//!   connection error triggers a counted resubscribe with capped
//!   backoff, resuming from the follower's batch count;
//! * a primary that stays unreachable for
//!   [`FollowOptions::promote_after`] consecutive resubscribes causes
//!   **self-promotion**: the follower leaves read-only mode and serves
//!   writes with the hull it has — epochs stay monotone because the
//!   follower's epoch is its (mirrored) batch count;
//! * reads served while the follower trails its primary are wrapped in
//!   the wire `Stale { lag }` status by the dispatch layer (the
//!   epoch-staleness bound, surfaced in-band), via
//!   [`HullService::replica_lag`].

use crate::client::HullClient;
use crate::journal::Journal;
use crate::metrics::service_metrics;
use crate::shard::HullService;
use crate::wire::{CAP_REPLICATION, PROTOCOL_V5};
use chull_concurrent::failpoint::{self, sites, FaultAction};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// One shard's in-memory mirror of its journal batch units, shared
/// between the shard worker (producer) and the wire layer (consumer:
/// `ReplSubscribe` fetches). Invariant: `total() == journal batch
/// count` — the worker pushes each unit before publishing its epoch,
/// and the supervisor rebuilds the mirror from the journal after a
/// crash, so a subscriber that has seen epoch `e` can always fetch
/// every unit below `e`.
pub(crate) struct ReplLog {
    units: RwLock<Vec<Arc<Vec<Vec<i64>>>>>,
    /// One past the highest unit a subscriber acked durably applied.
    acked: AtomicU64,
}

impl ReplLog {
    pub(crate) fn new() -> ReplLog {
        ReplLog {
            units: RwLock::new(Vec::new()),
            acked: AtomicU64::new(0),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Arc<Vec<Vec<i64>>>>> {
        match self.units.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Rebuild the mirror from the journal — the same source of truth
    /// recovery replays — used at cold start and after a worker death.
    pub(crate) fn reset_from(&self, journal: &Journal) {
        let rebuilt: Vec<Arc<Vec<Vec<i64>>>> = journal
            .batches()
            .map(|unit| Arc::new(unit.to_vec()))
            .collect();
        let mut g = match self.units.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *g = rebuilt;
    }

    /// Append one just-journaled batch unit.
    pub(crate) fn push(&self, unit: Vec<Vec<i64>>) {
        let mut g = match self.units.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.push(Arc::new(unit));
    }

    /// The unit at `index`, if it exists yet.
    pub(crate) fn get(&self, index: u64) -> Option<Arc<Vec<Vec<i64>>>> {
        usize::try_from(index)
            .ok()
            .and_then(|i| self.read().get(i).cloned())
    }

    /// Batch units held (== the shard's journal batch count).
    pub(crate) fn total(&self) -> u64 {
        self.read().len() as u64
    }

    /// Record a subscriber ack; keeps the high-water mark. Returns
    /// `(acked, total)` for the gauge refresh.
    pub(crate) fn record_ack(&self, index: u64) -> (u64, u64) {
        let total = self.total();
        let index = index.min(total);
        let acked = self.acked.fetch_max(index, Ordering::SeqCst).max(index);
        (acked, total)
    }

    /// The ack high-water mark.
    pub(crate) fn acked(&self) -> u64 {
        self.acked.load(Ordering::SeqCst)
    }
}

/// Shared follower-side replication state: what the puller knows about
/// its primary, read by the dispatch layer (staleness bound for the
/// `Stale` wrapper) and by harnesses (fault-coverage assertions).
pub struct ReplicaState {
    /// Per-shard primary batch totals from the last `ReplBatch` seen.
    primary_total: Vec<AtomicU64>,
    applied: AtomicU64,
    resubscribes: AtomicU64,
    dropped: AtomicU64,
    promoted: AtomicBool,
    stop: AtomicBool,
}

impl ReplicaState {
    fn new(shards: usize) -> ReplicaState {
        ReplicaState {
            primary_total: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            applied: AtomicU64::new(0),
            resubscribes: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            promoted: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        }
    }

    /// The primary's batch-unit total for `shard`, as last observed.
    pub fn primary_total(&self, shard: u16) -> u64 {
        self.primary_total
            .get(shard as usize)
            .map(|t| t.load(Ordering::SeqCst))
            .unwrap_or(0)
    }

    /// Batch units this follower has applied through its puller.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// Resubscribe-with-resume attempts (link loss, fault, panic).
    pub fn resubscribes(&self) -> u64 {
        self.resubscribes.load(Ordering::SeqCst)
    }

    /// Fetched units dropped before apply by the `replica.apply`
    /// failpoint (each forces a duplicate re-fetch).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Whether this follower promoted itself (primary unreachable).
    pub fn promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }
}

/// Configuration for [`follow`].
#[derive(Debug, Clone)]
pub struct FollowOptions {
    /// The primary's wire address (`host:port`).
    pub primary: String,
    /// Idle poll interval while caught up.
    pub poll: Duration,
    /// Connect deadline per subscription attempt.
    pub connect_deadline: Duration,
    /// Self-promote (leave read-only mode, stop pulling) after this
    /// many consecutive failed resubscribes; `0` never promotes.
    pub promote_after: u32,
}

impl Default for FollowOptions {
    fn default() -> FollowOptions {
        FollowOptions {
            primary: String::new(),
            poll: Duration::from_millis(2),
            connect_deadline: Duration::from_secs(2),
            promote_after: 40,
        }
    }
}

/// A running follower puller; [`ReplicaHandle::stop`] (or drop) joins
/// the thread. The service stays usable afterwards (still read-only
/// unless promoted).
pub struct ReplicaHandle {
    state: Arc<ReplicaState>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// The shared replication state (counters, primary totals).
    pub fn state(&self) -> Arc<ReplicaState> {
        Arc::clone(&self.state)
    }

    /// Signal the puller to exit and join it. Idempotent.
    pub fn stop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Turn `service` into a read-only follower of `opts.primary`: marks it
/// read-only, attaches shared [`ReplicaState`] (enabling the `Stale`
/// read wrapper), and starts the supervised puller thread.
pub fn follow(service: Arc<HullService>, opts: FollowOptions) -> ReplicaHandle {
    let state = Arc::new(ReplicaState::new(service.num_shards()));
    service.set_read_only(true);
    service.attach_replica_state(Arc::clone(&state));
    let st = Arc::clone(&state);
    let thread = std::thread::spawn(move || puller(&service, &st, &opts));
    ReplicaHandle {
        state,
        thread: Some(thread),
    }
}

/// The puller supervisor: run subscription sessions under
/// `catch_unwind`; on any error or injected panic, count a resubscribe,
/// back off (capped), and resume from the follower's own batch count.
fn puller(service: &HullService, state: &ReplicaState, opts: &FollowOptions) {
    let mut backoff = Duration::from_millis(5);
    let mut consecutive_failures = 0u32;
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let run = catch_unwind(AssertUnwindSafe(|| session(service, state, opts)));
        match run {
            // Stop requested from inside the session loop.
            Ok(Ok(())) => return,
            Ok(Err(e)) => {
                // Did this session make progress before dying? Progress
                // resets the promotion clock.
                if matches!(e.kind(), io::ErrorKind::ConnectionRefused) {
                    consecutive_failures = consecutive_failures.saturating_add(1);
                } else {
                    consecutive_failures = 1;
                }
            }
            // Injected (or real) panic mid-apply: the shard supervisor
            // already replayed the journal; resume from batch count.
            Err(_) => consecutive_failures = 1,
        }
        state.resubscribes.fetch_add(1, Ordering::SeqCst);
        service_metrics().repl_resubscribes.incr();
        if opts.promote_after != 0 && consecutive_failures >= opts.promote_after {
            // The primary is gone. Promote: leave read-only mode and
            // serve writes from the converged hull. Epochs stay
            // monotone — the follower's epoch is its batch count.
            state.promoted.store(true, Ordering::SeqCst);
            service.set_read_only(false);
            service_metrics().repl_failovers.incr();
            return;
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_millis(200));
    }
}

/// One subscription session: connect, then pull/apply/ack round-robin
/// across shards until an error (resubscribe) or stop. `Ok(())` only on
/// a requested stop.
fn session(service: &HullService, state: &ReplicaState, opts: &FollowOptions) -> io::Result<()> {
    let mut client = HullClient::builder(opts.primary.clone())
        .deadline(opts.connect_deadline)
        .connect()?;
    if client.negotiated_version() < PROTOCOL_V5 || client.caps() & CAP_REPLICATION == 0 {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "primary does not ship journal batches (needs wire v5 + CAP_REPLICATION)",
        ));
    }
    let dim = service.config().dim;
    let shards = service.num_shards() as u16;
    for shard in 0..shards {
        bootstrap_bulk(service, state, &mut client, shard)?;
    }
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut caught_up = true;
        for shard in 0..shards {
            let from = service.batch_units(shard).map_err(svc_err)?;
            let (index, total, unit_dim, flat) = client.repl_fetch(shard, from)?;
            if let Some(t) = state.primary_total.get(shard as usize) {
                t.store(total, Ordering::SeqCst);
            }
            if !flat.is_empty() && unit_dim != dim {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("primary ships dimension {unit_dim}, follower is {dim}"),
                ));
            }
            // `index < from` is a duplicated/reordered shipment of a
            // unit this follower already holds: skip it (idempotent).
            if index == from && !flat.is_empty() {
                caught_up = false;
                // Failpoint `replica.apply`: follower death mid-apply
                // (panic → resubscribe-with-resume one frame up) or a
                // dropped fetched batch (forces a duplicate re-fetch).
                if failpoint::eval(sites::REPL_APPLY) == FaultAction::SpuriousFull {
                    state.dropped.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                let unit: Vec<Vec<i64>> = flat.chunks(dim).map(|c| c.to_vec()).collect();
                service.apply_replica_unit(shard, unit).map_err(svc_err)?;
                state.applied.fetch_add(1, Ordering::SeqCst);
                let durable = service.batch_units(shard).map_err(svc_err)?;
                let _ = client.repl_ack(shard, durable)?;
            }
            if total > service.batch_units(shard).map_err(svc_err)? {
                caught_up = false;
            }
        }
        if caught_up {
            std::thread::sleep(opts.poll);
        }
    }
}

/// Follower **bulk bootstrap**: when a shard is completely empty and
/// the bulk threshold is armed, pull the primary's entire journaled
/// prefix into memory and install it through the bulk
/// divide-and-conquer constructor
/// ([`HullService::apply_replica_bulk`], DESIGN §S21) — one hull build
/// instead of per-unit incremental replay, while still journaling and
/// marking every unit so the follower's batch-index mirror stays 1:1
/// and the resume cursor lands exactly where per-unit pulling would
/// have left it. Below the threshold (or with nothing to fetch) this
/// applies nothing; the per-unit session loop takes over from cursor 0.
fn bootstrap_bulk(
    service: &HullService,
    state: &ReplicaState,
    client: &mut HullClient,
    shard: u16,
) -> io::Result<()> {
    let threshold = service.config().bulk_threshold;
    if threshold == 0 || service.batch_units(shard).map_err(svc_err)? != 0 {
        return Ok(());
    }
    let dim = service.config().dim;
    let mut units: Vec<Vec<Vec<i64>>> = Vec::new();
    let mut points = 0usize;
    loop {
        let from = units.len() as u64;
        let (index, total, unit_dim, flat) = client.repl_fetch(shard, from)?;
        if let Some(t) = state.primary_total.get(shard as usize) {
            t.store(total, Ordering::SeqCst);
        }
        if flat.is_empty() || index != from {
            break;
        }
        if unit_dim != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("primary ships dimension {unit_dim}, follower is {dim}"),
            ));
        }
        points += flat.len() / dim;
        units.push(flat.chunks(dim).map(|c| c.to_vec()).collect());
        if from + 1 >= total {
            break;
        }
    }
    if units.is_empty() || points < threshold {
        return Ok(());
    }
    let applied = units.len() as u64;
    service.apply_replica_bulk(shard, units).map_err(svc_err)?;
    state.applied.fetch_add(applied, Ordering::SeqCst);
    let durable = service.batch_units(shard).map_err(svc_err)?;
    let _ = client.repl_ack(shard, durable)?;
    eprintln!(
        "replica: shard {shard} bootstrapped {points} points / {applied} units via bulk build"
    );
    Ok(())
}

fn svc_err(e: crate::shard::ServiceError) -> io::Error {
    io::Error::other(e.to_string())
}
