//! Reproduces the paper's **Figure 1** walkthrough exactly (experiment E4).
//!
//! Starting from the hull `u-v-w-x-y-z-t`, the points `a`, `b`, `c` are
//! inserted (in that order). The paper's narrative:
//!
//! * round 1: `v-c`, `w-b`, `x-a`, `a-z` are all added in parallel,
//!   replacing `v-w`, `w-x`, `x-y`, `y-z`;
//! * round 2: `b-a` replaces `x-a` and `c-z` replaces `a-z`;
//! * round 3: `w-b` and `b-a` are buried by `c`; `v-c` / `c-z` finalize.
//!
//! Run with: `cargo run --example figure1_trace`

use convex_hull_suite::core::par::rounds::rounds_hull_from;
use convex_hull_suite::core::par::TraceEvent;
use convex_hull_suite::geometry::PointSet;

/// Point names in insertion order: the hull points u..t first, then a, b, c.
pub const NAMES: [&str; 10] = ["u", "v", "w", "x", "y", "z", "t", "a", "b", "c"];

/// Coordinates realizing the figure's combinatorics (verified by the
/// integration test `tests/figure1.rs`).
pub fn figure1_points() -> PointSet {
    PointSet::from_rows(
        2,
        &[
            vec![0, 0],   // u
            vec![0, 10],  // v
            vec![4, 14],  // w
            vec![9, 15],  // x
            vec![14, 13], // y
            vec![17, 8],  // z
            vec![12, -3], // t
            vec![15, 16], // a
            vec![10, 18], // b
            vec![10, 50], // c
        ],
    )
}

fn main() {
    let pts = figure1_points();
    // Start from the prebuilt 7-gon hull, then insert a, b, c.
    let run = rounds_hull_from(&pts, 7, true);

    println!("Figure 1 walkthrough: hull u-v-w-x-y-z-t, inserting a, b, c\n");
    let mut last_round = 0;
    for (round, ev) in &run.trace {
        if *round != last_round {
            println!("--- round {round} ---");
            last_round = *round;
        }
        println!("  {}", ev.render(&NAMES));
    }

    println!("\nrounds: {}", run.stats.rounds);
    println!("facets created: {}", run.stats.facets_created - 7);
    let final_edges: Vec<String> = run
        .output
        .facets
        .iter()
        .map(|f| format!("{}-{}", NAMES[f[0] as usize], NAMES[f[1] as usize]))
        .collect();
    println!("final hull edges: {}", final_edges.join(", "));

    // Sanity: the final hull is u-v, v-c, c-z, z-t, t-u.
    assert_eq!(run.output.num_facets(), 5);
    let replaces_in_round = |r: usize| {
        run.trace
            .iter()
            .filter(|(round, ev)| *round == r && matches!(ev, TraceEvent::Replace { .. }))
            .count()
    };
    assert_eq!(
        replaces_in_round(1),
        4,
        "round 1 must add v-c, w-b, x-a, a-z"
    );
    assert_eq!(replaces_in_round(2), 2, "round 2 must add b-a and c-z");
    println!("\ntrace matches the paper's Figure 1.");
}
