//! [`ByteBuf`]: the per-connection byte queue used on both sides of a
//! non-blocking socket — bytes land at the tail, are consumed from the
//! head, and the head slack is reclaimed by compaction once it
//! dominates, so steady-state reads/writes never reallocate.

use std::io::{self, Read, Write};

/// Read chunk size: one socket read pulls at most this many bytes, so a
/// firehose peer cannot monopolize the reactor in a single callback.
const READ_CHUNK: usize = 16 * 1024;

/// A growable FIFO byte buffer with O(1) amortized consume.
#[derive(Default)]
pub struct ByteBuf {
    buf: Vec<u8>,
    head: usize,
}

impl ByteBuf {
    /// An empty buffer.
    pub fn new() -> ByteBuf {
        ByteBuf::default()
    }

    /// Unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// The unconsumed bytes, in order.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.head..]
    }

    /// Append bytes at the tail.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Drop `n` bytes from the head.
    ///
    /// Compacts when the dead prefix outgrows the live bytes and is
    /// big enough to matter, keeping the growth amortized-linear.
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume past end");
        self.head += n;
        if self.head > 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
        if self.is_empty() && self.buf.capacity() > 1 << 20 {
            // A burst (e.g. one snapshot reply) should not pin its
            // high-water allocation for the connection's lifetime.
            self.buf = Vec::new();
            self.head = 0;
        }
    }

    /// One non-blocking read from `r` into the tail: `Ok(0)` is EOF,
    /// `WouldBlock` bubbles up for the reactor to wait on readiness.
    pub fn read_from<R: Read>(&mut self, r: &mut R) -> io::Result<usize> {
        let mut chunk = [0u8; READ_CHUNK];
        let n = r.read(&mut chunk)?;
        self.extend(&chunk[..n]);
        Ok(n)
    }

    /// Write as much of the head as the sink accepts, consuming what was
    /// written; `WouldBlock` bubbles up for the reactor.
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        if self.is_empty() {
            return Ok(0);
        }
        let n = w.write(self.as_slice())?;
        self.consume(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_compaction() {
        let mut b = ByteBuf::new();
        for i in 0..10_000u32 {
            b.extend(&i.to_le_bytes());
        }
        for i in 0..10_000u32 {
            let s = b.as_slice();
            assert_eq!(&s[..4], &i.to_le_bytes());
            b.consume(4);
        }
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn write_to_drains_and_reports() {
        let mut b = ByteBuf::new();
        b.extend(b"hello world");
        b.consume(6);
        let mut out = Vec::new();
        let n = b.write_to(&mut out).unwrap();
        assert_eq!(n, 5);
        assert_eq!(out, b"world");
        assert!(b.is_empty());
        assert_eq!(b.write_to(&mut out).unwrap(), 0);
    }

    #[test]
    fn burst_allocation_released() {
        let mut b = ByteBuf::new();
        b.extend(&vec![7u8; 3 << 20]);
        b.consume(3 << 20);
        assert!(b.buf.capacity() <= 1 << 20, "burst capacity pinned");
    }
}
