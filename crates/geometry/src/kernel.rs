//! Staged exact visibility kernel: cached facet hyperplanes with a
//! floating-point filter in front of exact integer evaluation.
//!
//! The randomized incremental hull spends almost all of its work in
//! visibility tests (`O(n^⌊d/2⌋ + n log n)` expected, Theorems 5.4/5.5
//! of the source paper). Evaluating each test as a fresh `(d+1)×(d+1)`
//! orientation determinant costs `O(d³)` per query. This module instead
//! computes the facet's hyperplane once at creation time — exact integer
//! normal and offset, i.e. the cofactors of the orientation matrix along
//! the query row — and answers every subsequent query with an `O(d)` dot
//! product, staged as:
//!
//! 1. **semi-static float filter**: evaluate the dot product in `f64`
//!    together with a running magnitude bound; certify the sign when the
//!    value clears the rounding-error bound (the common case by far),
//! 2. **checked `i128`** exact evaluation when the filter abstains,
//! 3. **`BigInt`** exact evaluation when `i128` would overflow.
//!
//! Every stage computes the sign of the *same* integer quantity, so the
//! staged kernel is bit-for-bit equivalent to
//! [`orientd`](crate::predicates::orientd) — the paper's "exactly the
//! same tests" invariant is untouched; only the cost per test changes.

use crate::exact::bigint::{BigInt, Sign};
use crate::exact::det::{det_i128_bigint, det_i128_checked};

/// Maximum supported dimension (inclusive). Mirrored by `chull-core`.
pub const MAX_DIM: usize = 8;

/// Per-engine counters for the staged kernel: where did visibility tests
/// resolve? `tests == filter_hits + i128_fallbacks + bigint_fallbacks`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Total staged visibility tests evaluated.
    pub tests: u64,
    /// Tests certified by the f64 filter alone (no exact arithmetic).
    pub filter_hits: u64,
    /// Tests that fell through to the checked `i128` dot product.
    pub i128_fallbacks: u64,
    /// Tests that required arbitrary-precision evaluation.
    pub bigint_fallbacks: u64,
    /// History-graph nodes visited by point-location descents (0 for
    /// conflict-list runs and full linear scans, which never descend).
    pub descent_steps: u64,
}

impl KernelCounts {
    /// Accumulate another counter set into `self`.
    #[inline]
    pub fn merge(&mut self, other: &KernelCounts) {
        self.tests += other.tests;
        self.filter_hits += other.filter_hits;
        self.i128_fallbacks += other.i128_fallbacks;
        self.bigint_fallbacks += other.bigint_fallbacks;
        self.descent_steps += other.descent_steps;
    }
}

/// Exact hyperplane coefficients. All-or-nothing: if any cofactor
/// overflows `i128` during construction, every coefficient is stored as
/// a [`BigInt`] so the exact evaluation path stays uniform.
#[derive(Clone, Debug)]
enum Coeffs {
    /// Inline fast path — no heap allocation per facet.
    Small([i128; MAX_DIM + 1]),
    /// Arbitrary-precision fallback (rare: coordinates near `MAX_COORD`
    /// in high dimension).
    Big(Vec<BigInt>),
}

/// A facet's oriented hyperplane, cached at facet creation.
///
/// For facet vertices `p_0 .. p_{d-1}` the coefficients are the cofactors
/// of the homogeneous orientation matrix along the query row:
/// `normal[j] = (-1)^(d+j) * M_{d,j}` for `j < d` and
/// `offset = M_{d,d}` (the pure coordinate minor), so that for any query
/// point `q`
///
/// ```text
/// sign(normal · q + offset) == orientd(p_0, .., p_{d-1}, q)
/// ```
///
/// holds *exactly*, and for a homogeneous row `(r, w)`
/// `sign(normal · r + offset * w) == orientd_hom(.., (r, w))`.
#[derive(Clone, Debug)]
pub struct Hyperplane {
    dim: u32,
    /// f64-rounded coefficients (normal `0..dim`, offset at `dim`) for
    /// the filter stage.
    approx: [f64; MAX_DIM + 1],
    /// Pre-multiplied relative error bound for the filter: certify the
    /// sign of `v` when `|v| > err_factor * (Σ|aⱼqⱼ| + |b|)`.
    err_factor: f64,
    coeffs: Coeffs,
}

#[inline]
fn sign_of_i128(v: i128) -> Sign {
    match v {
        0 => Sign::Zero,
        v if v > 0 => Sign::Positive,
        _ => Sign::Negative,
    }
}

impl Hyperplane {
    /// Build the hyperplane through the `dim` points `rows` (each of
    /// length `dim`), oriented so that evaluation matches `orientd` with
    /// the query appended as the last row.
    pub fn new(dim: usize, rows: &[&[i64]]) -> Hyperplane {
        assert!((2..=MAX_DIM).contains(&dim), "dimension out of range");
        assert_eq!(rows.len(), dim, "hyperplane needs dim points");
        for r in rows {
            assert_eq!(r.len(), dim, "point of wrong dimension");
        }
        let mut small = [0i128; MAX_DIM + 1];
        let mut overflowed = false;
        if dim == 2 {
            // Direct cofactors; always fit i128 for |coords| <= 2^61.
            let (x0, y0) = (rows[0][0] as i128, rows[0][1] as i128);
            let (x1, y1) = (rows[1][0] as i128, rows[1][1] as i128);
            small[0] = y0 - y1;
            small[1] = x1 - x0;
            small[2] = x0 * y1 - y0 * x1;
        } else {
            for (j, slot) in small.iter_mut().enumerate().take(dim + 1) {
                match det_i128_checked(&Self::minor(dim, rows, j)) {
                    Some(v) => {
                        let signed = if (dim + j) % 2 == 1 {
                            v.checked_neg()
                        } else {
                            Some(v)
                        };
                        match signed {
                            Some(s) => *slot = s,
                            None => {
                                overflowed = true;
                                break;
                            }
                        }
                    }
                    None => {
                        overflowed = true;
                        break;
                    }
                }
            }
        }
        let coeffs = if overflowed {
            let mut big = Vec::with_capacity(dim + 1);
            for j in 0..=dim {
                let mut v = det_i128_bigint(&Self::minor(dim, rows, j));
                if (dim + j) % 2 == 1 {
                    v.negate();
                }
                big.push(v);
            }
            Coeffs::Big(big)
        } else {
            Coeffs::Small(small)
        };
        let mut approx = [0.0f64; MAX_DIM + 1];
        match &coeffs {
            Coeffs::Small(c) => {
                for j in 0..=dim {
                    approx[j] = c[j] as f64;
                }
            }
            Coeffs::Big(c) => {
                for j in 0..=dim {
                    approx[j] = c[j].to_f64();
                }
            }
        }
        // Generous forward-error bound: d+1 products and additions in the
        // filter sum plus coefficient rounding (one ulp for i128 casts, a
        // few ulps per limb for BigInt::to_f64). Anything certified here
        // is provably sign-correct; borderline values fall through to the
        // exact stages, so the constant only trades filter hit rate.
        let err_factor = (4 * dim + 16) as f64 * f64::EPSILON;
        Hyperplane {
            dim: dim as u32,
            approx,
            err_factor,
            coeffs,
        }
    }

    /// An all-zero placeholder plane (evaluates to `Sign::Zero` for every
    /// query). Useful as a container default in tests; never produced by
    /// [`Hyperplane::new`] for affinely independent points.
    pub fn placeholder(dim: usize) -> Hyperplane {
        assert!((2..=MAX_DIM).contains(&dim), "dimension out of range");
        Hyperplane {
            dim: dim as u32,
            approx: [0.0; MAX_DIM + 1],
            err_factor: 0.0,
            coeffs: Coeffs::Small([0i128; MAX_DIM + 1]),
        }
    }

    /// The minor `M_{d,j}` of the homogeneous orientation matrix:
    /// drop column `j`, keep the homogeneous 1-column unless `j == dim`.
    fn minor(dim: usize, rows: &[&[i64]], j: usize) -> Vec<Vec<i128>> {
        rows.iter()
            .map(|p| {
                let mut row: Vec<i128> = Vec::with_capacity(dim);
                for (c, &v) in p.iter().enumerate() {
                    if c != j {
                        row.push(v as i128);
                    }
                }
                if j < dim {
                    row.push(1);
                }
                row
            })
            .collect()
    }

    /// The dimension this plane lives in.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Whether the exact coefficients required the `BigInt` representation.
    #[inline]
    pub fn is_big(&self) -> bool {
        matches!(self.coeffs, Coeffs::Big(_))
    }

    /// Staged exact sign of `normal · q + offset`; equals
    /// `orientd(p_0, .., p_{d-1}, q)` bit-for-bit.
    #[inline]
    pub fn sign_point(&self, q: &[i64], counts: &mut KernelCounts) -> Sign {
        counts.tests += 1;
        let d = self.dim as usize;
        debug_assert_eq!(q.len(), d);
        // Stage 1: f64 filter with a semi-static error bound.
        let mut v = self.approx[d];
        let mut mag = v.abs();
        for (&a, &qj) in self.approx[..d].iter().zip(q) {
            let t = a * qj as f64;
            v += t;
            mag += t.abs();
        }
        let err = self.err_factor * mag;
        if v > err {
            counts.filter_hits += 1;
            return Sign::Positive;
        }
        if v < -err {
            counts.filter_hits += 1;
            return Sign::Negative;
        }
        // NaN/inf comparisons both fail above, landing here: exact path.
        self.sign_exact(q, counts)
    }

    /// Exact stages only (checked `i128`, then `BigInt`). Public so a
    /// batched filter ([`PlaneBlock`]) can resolve only its ambiguous
    /// planes exactly; answers match [`Hyperplane::sign_point`] because
    /// both filters certify only provably correct signs.
    pub fn sign_exact(&self, q: &[i64], counts: &mut KernelCounts) -> Sign {
        let d = self.dim as usize;
        match &self.coeffs {
            Coeffs::Small(c) => {
                if let Some(acc) = dot_i128(c, q, d) {
                    counts.i128_fallbacks += 1;
                    return sign_of_i128(acc);
                }
                counts.bigint_fallbacks += 1;
                let mut acc = BigInt::from(c[d]);
                for j in 0..d {
                    acc = acc.add(&BigInt::from(c[j]).mul(&BigInt::from(q[j])));
                }
                acc.sign()
            }
            Coeffs::Big(c) => {
                counts.bigint_fallbacks += 1;
                let mut acc = c[d].clone();
                for j in 0..d {
                    acc = acc.add(&c[j].mul(&BigInt::from(q[j])));
                }
                acc.sign()
            }
        }
    }

    /// Exact sign for a homogeneous row `(r, w)`; equals `orientd_hom`
    /// with `(r, w)` as the last row. Used once per facet (orientation
    /// against the interior reference point), so no filter stage.
    pub fn sign_hom(&self, r: &[i64], w: i64) -> Sign {
        let d = self.dim as usize;
        debug_assert_eq!(r.len(), d);
        match &self.coeffs {
            Coeffs::Small(c) => {
                let acc = (|| {
                    let mut acc = c[d].checked_mul(w as i128)?;
                    for j in 0..d {
                        acc = acc.checked_add(c[j].checked_mul(r[j] as i128)?)?;
                    }
                    Some(acc)
                })();
                match acc {
                    Some(v) => sign_of_i128(v),
                    None => {
                        let mut acc = BigInt::from(c[d]).mul(&BigInt::from(w));
                        for j in 0..d {
                            acc = acc.add(&BigInt::from(c[j]).mul(&BigInt::from(r[j])));
                        }
                        acc.sign()
                    }
                }
            }
            Coeffs::Big(c) => {
                let mut acc = c[d].mul(&BigInt::from(w));
                for j in 0..d {
                    acc = acc.add(&c[j].mul(&BigInt::from(r[j])));
                }
                acc.sign()
            }
        }
    }
}

/// Checked `i128` dot product `Σ c[j]·q[j] + c[d]`.
#[inline]
fn dot_i128(c: &[i128; MAX_DIM + 1], q: &[i64], d: usize) -> Option<i128> {
    let mut acc = c[d];
    for j in 0..d {
        acc = acc.checked_add(c[j].checked_mul(q[j] as i128)?)?;
    }
    Some(acc)
}

/// Chunk width for [`PlaneBlock`] scans: small enough that the value and
/// magnitude accumulator lanes live in registers/L1, wide enough for the
/// compiler to vectorize the per-coefficient inner loops.
const BLOCK_CHUNK: usize = 64;

/// A contiguous structure-of-arrays block of f64-rounded hyperplane
/// coefficients — the batched form of [`Hyperplane::sign_point`]'s filter
/// stage.
///
/// Coefficient `j` of plane `i` lives at `coeffs[j * len + i]`, so the
/// semi-static filter over many planes against one query point is a tight
/// coefficient-major loop (`d + 1` vectorizable passes over contiguous
/// lanes) instead of a pointer chase through per-facet [`Hyperplane`]s.
/// Per plane, the arithmetic (value and magnitude accumulation order) is
/// identical to the scalar filter, so a sign certified here is certified
/// there and vice versa; ambiguous planes must be resolved through
/// [`Hyperplane::sign_exact`], which keeps every answer bit-identical to
/// the staged scalar kernel.
///
/// The block is immutable once built — callers construct one per frozen
/// hull snapshot and share it across query threads.
#[derive(Clone, Debug)]
pub struct PlaneBlock {
    dim: usize,
    len: usize,
    /// SoA coefficients, `(dim + 1) * len` entries (normal rows first,
    /// the offset row last).
    coeffs: Vec<f64>,
    /// Filter error bound, as in [`Hyperplane`]: certify when
    /// `|v| > err_factor * Σ|terms|`. A per-dimension constant, and an
    /// upper bound for every plane in the block (including all-zero
    /// placeholders, which can never certify anyway).
    err_factor: f64,
}

impl PlaneBlock {
    /// Pack the f64 coefficient images of `planes` (all of dimension
    /// `dim`) into one SoA block, in iteration order: plane `i` of the
    /// block is the `i`-th yielded hyperplane.
    pub fn from_planes<'a, I>(dim: usize, planes: I) -> PlaneBlock
    where
        I: ExactSizeIterator<Item = &'a Hyperplane>,
    {
        assert!((2..=MAX_DIM).contains(&dim), "dimension out of range");
        let len = planes.len();
        let mut coeffs = vec![0.0f64; (dim + 1) * len];
        for (i, p) in planes.enumerate() {
            assert_eq!(p.dim(), dim, "plane of wrong dimension in block");
            for j in 0..=dim {
                coeffs[j * len + i] = p.approx[j];
            }
        }
        PlaneBlock {
            dim,
            len,
            coeffs,
            err_factor: (4 * dim + 16) as f64 * f64::EPSILON,
        }
    }

    /// Number of planes in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the block holds no planes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The dimension every plane in the block lives in.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The query point as f64 lanes, computed once per query and reused
    /// across every filter evaluation against this block.
    #[inline]
    pub fn query_row(q: &[i64]) -> [f64; MAX_DIM] {
        let mut qf = [0.0f64; MAX_DIM];
        for (slot, &c) in qf.iter_mut().zip(q) {
            *slot = c as f64;
        }
        qf
    }

    /// Semi-static filter for plane `i` against the prepared query row:
    /// `Some(sign)` when the f64 evaluation clears the error bound,
    /// `None` when the exact stages must decide. Same certification
    /// decision as the scalar filter in [`Hyperplane::sign_point`].
    #[inline]
    pub fn filter_sign(&self, i: u32, qf: &[f64]) -> Option<Sign> {
        let (d, n, i) = (self.dim, self.len, i as usize);
        debug_assert!(i < n);
        let mut v = self.coeffs[d * n + i];
        let mut mag = v.abs();
        for (j, &qj) in qf.iter().enumerate().take(d) {
            let t = self.coeffs[j * n + i] * qj;
            v += t;
            mag += t.abs();
        }
        let err = self.err_factor * mag;
        if v > err {
            Some(Sign::Positive)
        } else if v < -err {
            Some(Sign::Negative)
        } else {
            None
        }
    }

    /// Run the filter over **every** plane in the block against `q`, in
    /// plane order, visiting `(index, certified sign or None)` per plane.
    /// The hot loops are coefficient-major over [`BLOCK_CHUNK`]-wide
    /// contiguous lanes — this is the vectorizable full-scan path that
    /// backs the `linear-scan` A/B oracle and the batched candidate
    /// filter.
    pub fn filter_scan<F: FnMut(u32, Option<Sign>)>(&self, q: &[i64], mut visit: F) {
        let (d, n) = (self.dim, self.len);
        debug_assert_eq!(q.len(), d);
        let qf = Self::query_row(q);
        let mut v = [0.0f64; BLOCK_CHUNK];
        let mut mag = [0.0f64; BLOCK_CHUNK];
        let mut base = 0usize;
        while base < n {
            let m = BLOCK_CHUNK.min(n - base);
            let off = &self.coeffs[d * n + base..d * n + base + m];
            for i in 0..m {
                v[i] = off[i];
                mag[i] = off[i].abs();
            }
            for (j, &qj) in qf.iter().enumerate().take(d) {
                let col = &self.coeffs[j * n + base..j * n + base + m];
                for i in 0..m {
                    let t = col[i] * qj;
                    v[i] += t;
                    mag[i] += t.abs();
                }
            }
            for i in 0..m {
                let err = self.err_factor * mag[i];
                let s = if v[i] > err {
                    Some(Sign::Positive)
                } else if v[i] < -err {
                    Some(Sign::Negative)
                } else {
                    None
                };
                visit((base + i) as u32, s);
            }
            base += m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::{orientd, orientd_hom};
    use crate::rng::ChaCha8Rng;

    fn staged(dim: usize, rows: &[&[i64]], q: &[i64]) -> (Sign, KernelCounts) {
        let plane = Hyperplane::new(dim, rows);
        let mut counts = KernelCounts::default();
        let s = plane.sign_point(q, &mut counts);
        (s, counts)
    }

    #[test]
    fn matches_orientd_2d_basic() {
        let a = [0i64, 0];
        let b = [4i64, 0];
        for (q, _expect) in [([2i64, 3], 1), ([2, -3], -1), ([2, 0], 0)] {
            let rows = [&a[..], &b[..]];
            let (s, counts) = staged(2, &rows, &q);
            let naive = orientd(2, &[&a, &b, &q]);
            assert_eq!(s, naive);
            assert_eq!(counts.tests, 1);
        }
    }

    #[test]
    fn random_agreement_all_dims() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for dim in 2..=MAX_DIM {
            for _ in 0..200 {
                let pts: Vec<Vec<i64>> = (0..=dim)
                    .map(|_| (0..dim).map(|_| rng.gen_range(-1000i64..=1000)).collect())
                    .collect();
                let rows: Vec<&[i64]> = pts[..dim].iter().map(|p| p.as_slice()).collect();
                let q = pts[dim].as_slice();
                let plane = Hyperplane::new(dim, &rows);
                let mut counts = KernelCounts::default();
                let s = plane.sign_point(q, &mut counts);
                let mut all: Vec<&[i64]> = rows.clone();
                all.push(q);
                assert_eq!(s, orientd(dim, &all), "dim {dim}");
                assert_eq!(
                    counts.tests,
                    counts.filter_hits + counts.i128_fallbacks + counts.bigint_fallbacks
                );
            }
        }
    }

    #[test]
    fn hom_matches_orientd_hom() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for dim in 2..=5 {
            for _ in 0..100 {
                let pts: Vec<Vec<i64>> = (0..dim)
                    .map(|_| (0..dim).map(|_| rng.gen_range(-500i64..=500)).collect())
                    .collect();
                let r: Vec<i64> = (0..dim).map(|_| rng.gen_range(-2000i64..=2000)).collect();
                let w = rng.gen_range(1i64..=5);
                let rows: Vec<&[i64]> = pts.iter().map(|p| p.as_slice()).collect();
                let plane = Hyperplane::new(dim, &rows);
                let mut hom_rows: Vec<(&[i64], i64)> =
                    pts.iter().map(|p| (p.as_slice(), 1)).collect();
                hom_rows.push((r.as_slice(), w));
                assert_eq!(plane.sign_hom(&r, w), orientd_hom(dim, &hom_rows));
            }
        }
    }

    #[test]
    fn filter_certifies_generic_queries() {
        // Far-away query points should resolve in the filter stage.
        let a = [0i64, 0, 0];
        let b = [100i64, 0, 0];
        let c = [0i64, 100, 0];
        let plane = Hyperplane::new(3, &[&a, &b, &c]);
        let mut counts = KernelCounts::default();
        for z in 1..=50i64 {
            plane.sign_point(&[10, 10, z * 1000], &mut counts);
        }
        assert_eq!(counts.tests, 50);
        assert_eq!(
            counts.filter_hits, 50,
            "generic queries must hit the filter"
        );
    }

    #[test]
    fn exact_stage_handles_degenerate_queries() {
        // Points exactly on the plane must return Zero via an exact stage.
        let a = [0i64, 0, 0];
        let b = [100i64, 0, 0];
        let c = [0i64, 100, 0];
        let plane = Hyperplane::new(3, &[&a, &b, &c]);
        let mut counts = KernelCounts::default();
        assert_eq!(plane.sign_point(&[37, 21, 0], &mut counts), Sign::Zero);
        assert_eq!(counts.filter_hits, 0);
        assert_eq!(counts.i128_fallbacks + counts.bigint_fallbacks, 1);
    }

    #[test]
    fn huge_coordinates_take_bigint_construction() {
        // 5D with coordinates near MAX_COORD: minors overflow i128.
        let big = crate::point::MAX_COORD / 2;
        let dim = 5;
        let mut pts: Vec<Vec<i64>> = Vec::new();
        for i in 0..dim {
            let mut p = vec![big; dim];
            p[i] = -big;
            pts.push(p);
        }
        let rows: Vec<&[i64]> = pts.iter().map(|p| p.as_slice()).collect();
        let plane = Hyperplane::new(dim, &rows);
        assert!(plane.is_big(), "coefficients should need BigInt");
        let q = vec![big - 1; dim];
        let mut counts = KernelCounts::default();
        let s = plane.sign_point(&q, &mut counts);
        let mut all = rows.clone();
        all.push(&q);
        assert_eq!(s, orientd(dim, &all));
    }

    #[test]
    fn placeholder_is_zero_everywhere() {
        let p = Hyperplane::placeholder(3);
        let mut counts = KernelCounts::default();
        assert_eq!(p.sign_point(&[1, 2, 3], &mut counts), Sign::Zero);
        assert!(!p.is_big());
    }

    /// Tiny deterministic generator for block tests (xorshift64*).
    fn next_coord(state: &mut u64, bound: i64) -> i64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (2 * bound as u64 + 1)) as i64 - bound
    }

    fn random_planes(dim: usize, n: usize, seed: u64) -> Vec<Hyperplane> {
        let mut state = seed | 1;
        let mut planes = Vec::with_capacity(n);
        while planes.len() < n {
            let pts: Vec<Vec<i64>> = (0..dim)
                .map(|_| (0..dim).map(|_| next_coord(&mut state, 1 << 20)).collect())
                .collect();
            let rows: Vec<&[i64]> = pts.iter().map(|p| p.as_slice()).collect();
            // Skip degenerate samples (affinely dependent defining sets).
            let mut probe = vec![0i64; dim];
            probe[0] = 1 << 21;
            let mut all = rows.clone();
            all.push(&probe);
            if orientd(dim, &all) == Sign::Zero {
                continue;
            }
            planes.push(Hyperplane::new(dim, &rows));
        }
        planes
    }

    #[test]
    fn block_filter_matches_scalar_filter_decision() {
        // For every (plane, query) pair the block must certify exactly
        // when the scalar filter certifies, with the same sign; ambiguous
        // lanes resolved by sign_exact must agree with sign_point.
        for dim in 2..=5usize {
            let planes = random_planes(dim, 40, 0xC0FFEE + dim as u64);
            let block = PlaneBlock::from_planes(dim, planes.iter());
            let mut state = 0xBEEF ^ dim as u64;
            for _ in 0..30 {
                let q: Vec<i64> = (0..dim).map(|_| next_coord(&mut state, 1 << 22)).collect();
                let qf = PlaneBlock::query_row(&q);
                for (i, plane) in planes.iter().enumerate() {
                    let mut scalar = KernelCounts::default();
                    let want = plane.sign_point(&q, &mut scalar);
                    match block.filter_sign(i as u32, &qf) {
                        Some(s) => {
                            assert_eq!(s, want);
                            assert_eq!(scalar.filter_hits, 1, "block certified, scalar must too");
                        }
                        None => {
                            assert_eq!(scalar.filter_hits, 0, "scalar certified, block must too");
                            let mut exact = KernelCounts::default();
                            assert_eq!(plane.sign_exact(&q, &mut exact), want);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn block_scan_matches_per_index_filter_across_chunks() {
        // > BLOCK_CHUNK planes so the scan exercises chunk boundaries.
        let dim = 3;
        let planes = random_planes(dim, 150, 0xFACE);
        let block = PlaneBlock::from_planes(dim, planes.iter());
        assert_eq!(block.len(), 150);
        assert_eq!(block.dim(), dim);
        assert!(!block.is_empty());
        let mut state = 77u64;
        let q: Vec<i64> = (0..dim).map(|_| next_coord(&mut state, 1 << 22)).collect();
        let qf = PlaneBlock::query_row(&q);
        let mut seen = Vec::new();
        block.filter_scan(&q, |i, s| {
            assert_eq!(s, block.filter_sign(i, &qf));
            seen.push(i);
        });
        let want: Vec<u32> = (0..150).collect();
        assert_eq!(seen, want, "scan must visit every plane in order");
    }

    #[test]
    fn block_never_certifies_on_plane_queries() {
        let a = [0i64, 0, 0];
        let b = [100i64, 0, 0];
        let c = [0i64, 100, 0];
        let plane = Hyperplane::new(3, &[&a, &b, &c]);
        let block = PlaneBlock::from_planes(3, std::iter::once(&plane));
        let qf = PlaneBlock::query_row(&[37, 21, 0]);
        assert_eq!(block.filter_sign(0, &qf), None);
        let mut counts = KernelCounts::default();
        assert_eq!(plane.sign_exact(&[37, 21, 0], &mut counts), Sign::Zero);
    }

    #[test]
    fn empty_block_scans_nothing() {
        let block = PlaneBlock::from_planes(2, std::iter::empty::<&Hyperplane>());
        assert!(block.is_empty());
        block.filter_scan(&[1, 2], |_, _| panic!("no planes to visit"));
    }
}
