//! Semantic equivalence of the three `InsertAndSet` engines, plus
//! property-based and adversarial stress.

use chull_concurrent::{RidgeMapCas, RidgeMapLocked, RidgeMapTas, RidgeMultimap};
use chull_geometry::rng::ChaCha8Rng;
use std::sync::Arc;

/// Drive the same operation sequence into all three maps; winner/loser
/// outcomes and partner lookups must be identical (single-threaded
/// semantics are deterministic).
fn drive<M: RidgeMultimap<u64>>(map: &M, ops: &[(u64, u32)]) -> Vec<(bool, Option<u32>)> {
    let mut out = Vec::with_capacity(ops.len());
    for &(k, v) in ops {
        let won = map.insert_and_set(k, v);
        let partner = if won { None } else { Some(map.get_value(k, v)) };
        out.push((won, partner));
    }
    out
}

/// Deterministic pseudo-random op sequences stand in for the original
/// proptest strategy.
#[test]
fn three_engines_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x3e3e);
    for _ in 0..64 {
        let len = rng.gen_range(1usize..128);
        let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..64)).collect();
        // Build an op sequence where each key appears at most twice with
        // distinct values.
        let mut count = std::collections::HashMap::new();
        let mut ops = Vec::new();
        for k in keys {
            let c = count.entry(k).or_insert(0u32);
            if *c < 2 {
                ops.push((k, (k as u32) * 10 + *c));
                *c += 1;
            }
        }
        if ops.is_empty() {
            continue;
        }
        let cas: RidgeMapCas<u64> = RidgeMapCas::with_capacity(128);
        let tas: RidgeMapTas<u64> = RidgeMapTas::with_capacity(128);
        let locked: RidgeMapLocked<u64> = RidgeMapLocked::with_capacity(128);
        let a = drive(&cas, &ops);
        let b = drive(&tas, &ops);
        let c = drive(&locked, &ops);
        assert_eq!(&a, &b);
        assert_eq!(&a, &c);
        // Exactly the second occurrence of each key loses.
        let mut seen = std::collections::HashSet::new();
        for ((k, _), (won, partner)) in ops.iter().zip(&a) {
            if seen.insert(*k) {
                assert!(*won);
                assert!(partner.is_none());
            } else {
                assert!(!*won);
                assert_eq!(partner.unwrap(), (*k as u32) * 10);
            }
        }
    }
}

/// All-keys-collide adversarial pattern: every key hashes into a tiny
/// table region by construction (sequential keys in a small table).
#[test]
fn dense_small_table_probing() {
    let n = 64u64;
    let cas: RidgeMapCas<u64> = RidgeMapCas::with_capacity(n as usize);
    let tas: RidgeMapTas<u64> = RidgeMapTas::with_capacity(n as usize);
    for k in 0..n {
        assert!(cas.insert_and_set(k, k as u32 + 1));
        assert!(tas.insert_and_set(k, k as u32 + 1));
    }
    for k in 0..n {
        assert!(!cas.insert_and_set(k, 1000 + k as u32));
        assert!(!tas.insert_and_set(k, 1000 + k as u32));
        assert_eq!(cas.get_value(k, 1000 + k as u32), k as u32 + 1);
        assert_eq!(tas.get_value(k, 1000 + k as u32), k as u32 + 1);
    }
}

/// Heavy multi-thread contention on FEW keys: every key is inserted twice
/// by two racing threads out of many; exactly one loser each.
#[test]
fn contention_on_few_keys() {
    for trial in 0..4u64 {
        let keys = 64usize;
        let threads = 16usize;
        let cas: Arc<RidgeMapCas<u64>> = Arc::new(RidgeMapCas::with_capacity(keys));
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&cas);
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let mut lost = Vec::new();
                    for k in 0..keys as u64 {
                        let owner_a = ((k + trial) as usize) % threads;
                        let owner_b = (owner_a + 7) % threads;
                        if t == owner_a || t == owner_b {
                            let v = (t as u32 + 1) * 1000 + k as u32;
                            if !m.insert_and_set(k, v) {
                                lost.push((k, m.get_value(k, v)));
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let mut losses = vec![0usize; keys];
        for h in handles {
            for (k, _) in h.join().unwrap() {
                losses[k as usize] += 1;
            }
        }
        assert!(losses.iter().all(|&c| c == 1), "trial {trial}: {losses:?}");
    }
}

/// Same contention pattern against the TAS map (Algorithm 5's two-pass
/// protocol under racing second passes).
#[test]
fn contention_on_few_keys_tas() {
    for trial in 0..4u64 {
        let keys = 64usize;
        let threads = 16usize;
        let tas: Arc<RidgeMapTas<u64>> = Arc::new(RidgeMapTas::with_capacity(keys));
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&tas);
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let mut lost = 0usize;
                    for k in 0..keys as u64 {
                        let owner_a = ((k * 31 + trial) as usize) % threads;
                        let owner_b = (owner_a + 3) % threads;
                        if t == owner_a || t == owner_b {
                            let v = (t as u32 + 1) * 1000 + k as u32;
                            if !m.insert_and_set(k, v) {
                                let partner = m.get_value(k, v);
                                assert_ne!(partner, v);
                                lost += 1;
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, keys, "trial {trial}");
    }
}
