//! Service-level metric handles: one lazy-registered struct per layer.
//!
//! Naming: everything is `chull_*`; durations are microsecond
//! histograms suffixed `_us`; monotone counts end `_total`. Per-shard
//! levels (queue depth, journal length, dependence depth, epoch) are
//! gauges labeled `shard="N"`, refreshed by the owning worker after
//! each batch and by [`crate::shard::HullService::update_scrape_gauges`]
//! at scrape time; per-op request series are labeled `op="..."`.

use chull_geometry::KernelCounts;
use chull_obs::{registry, Counter, Gauge, Histogram};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Staged-kernel counters mirrored as Prometheus series, labeled by
/// `path` (`ingest` for shard workers, `query` for read requests).
pub struct KernelCounters {
    /// `chull_kernel_visibility_tests_total`.
    pub tests: Arc<Counter>,
    /// `chull_kernel_filter_hits_total` (f64 filter decided the sign).
    pub filter_hits: Arc<Counter>,
    /// `chull_kernel_i128_fallbacks_total`.
    pub i128_fallbacks: Arc<Counter>,
    /// `chull_kernel_bigint_fallbacks_total`.
    pub bigint_fallbacks: Arc<Counter>,
}

impl KernelCounters {
    fn register(path: &'static str) -> KernelCounters {
        let r = registry();
        let l: &[(&str, &str)] = &[("path", path)];
        KernelCounters {
            tests: r.counter_with(
                "chull_kernel_visibility_tests_total",
                l,
                "Staged-kernel visibility tests, by path (ingest = shard workers, query = reads).",
            ),
            filter_hits: r.counter_with(
                "chull_kernel_filter_hits_total",
                l,
                "Visibility tests decided by the f64 semi-static filter.",
            ),
            i128_fallbacks: r.counter_with(
                "chull_kernel_i128_fallbacks_total",
                l,
                "Visibility tests that fell back to checked i128 arithmetic.",
            ),
            bigint_fallbacks: r.counter_with(
                "chull_kernel_bigint_fallbacks_total",
                l,
                "Visibility tests that fell back to exact BigInt arithmetic.",
            ),
        }
    }

    /// Fold a whole [`KernelCounts`] tally in.
    pub fn fold(&self, c: &KernelCounts) {
        self.tests.add(c.tests);
        self.filter_hits.add(c.filter_hits);
        self.i128_fallbacks.add(c.i128_fallbacks);
        self.bigint_fallbacks.add(c.bigint_fallbacks);
    }

    /// Fold only the growth from `prev` to `now` (per-batch deltas from
    /// a hull's cumulative tally).
    pub fn fold_delta(&self, now: &KernelCounts, prev: &KernelCounts) {
        self.tests.add(now.tests.saturating_sub(prev.tests));
        self.filter_hits
            .add(now.filter_hits.saturating_sub(prev.filter_hits));
        self.i128_fallbacks
            .add(now.i128_fallbacks.saturating_sub(prev.i128_fallbacks));
        self.bigint_fallbacks
            .add(now.bigint_fallbacks.saturating_sub(prev.bigint_fallbacks));
    }
}

/// Process-wide service series (shared across all shards/connections).
pub struct ServiceMetrics {
    /// Inserts accepted into a shard queue.
    pub inserts_enqueued: Arc<Counter>,
    /// Inserts rejected with `Overloaded` backpressure.
    pub overloaded: Arc<Counter>,
    /// Flush barriers served.
    pub flushes: Arc<Counter>,
    /// Batches applied by shard workers.
    pub batches: Arc<Counter>,
    /// Inserts per applied batch.
    pub batch_size: Arc<Histogram>,
    /// Wall time to geometrically apply one batch (µs).
    pub batch_apply_us: Arc<Histogram>,
    /// Wall time to journal one batch before applying it (µs).
    pub journal_append_us: Arc<Histogram>,
    /// Wall time of the journal `sync` (WAL fsync) per batch (µs).
    pub wal_sync_us: Arc<Histogram>,
    /// WAL append/sync errors (journal stays authoritative in memory).
    pub wal_errors: Arc<Counter>,
    /// Shard worker recoveries (supervisor replays after a panic).
    pub recoveries: Arc<Counter>,
    /// Journal replay time per recovery (µs).
    pub recovery_us: Arc<Histogram>,
    /// Recoveries that took the bulk divide-and-conquer build path.
    pub bulk_builds: Arc<Counter>,
    /// Wall time of one bulk build (sweep + batch install), µs.
    pub bulk_build_us: Arc<Histogram>,
    /// Torn journal tails detected at replay sealing (should stay 0).
    pub torn_tails: Arc<Counter>,
    /// Total time shards have spent degraded (µs).
    pub degraded_us: Arc<Counter>,
    /// Connections accepted by the server.
    pub accepts: Arc<Counter>,
    /// Currently open client connections (either back end).
    pub connections_active: Arc<Gauge>,
    /// Connections accepted, cumulatively (alias of `accepts` under the
    /// connection-lifecycle name so `accepted - closed = active` holds
    /// within one metric family).
    pub connections_accepted: Arc<Counter>,
    /// Connections closed (EOF, error, deadline reap, or shutdown).
    pub connections_closed: Arc<Counter>,
    /// Reactor readiness wakeups (epoll_wait returns with ≥1 event).
    pub readiness_wakeups: Arc<Counter>,
    /// Accept/reactor threads that died by panic and were contained.
    pub accept_thread_panics: Arc<Counter>,
    /// Client-side transparent reconnect-and-resumes.
    pub client_reconnects: Arc<Counter>,
    /// Client-side `Overloaded` rejections absorbed by `insert_retry`.
    pub client_rejections: Arc<Counter>,
    /// Journal batch units shipped to replication subscribers.
    pub repl_units_shipped: Arc<Counter>,
    /// Replicated batch units applied by this follower.
    pub repl_units_applied: Arc<Counter>,
    /// Follower resubscribes (link loss, fault, or puller death).
    pub repl_resubscribes: Arc<Counter>,
    /// Client/router failovers to a fallback address.
    pub repl_failovers: Arc<Counter>,
    /// Delete/expire tombstones journaled by shard workers.
    pub tombstones: Arc<Counter>,
    /// Points expired by per-shard window policies.
    pub window_expirations: Arc<Counter>,
    /// Hull rebuilds from the live survivor set.
    pub rebuilds: Arc<Counter>,
    /// Wall time of one survivor rebuild (µs).
    pub rebuild_us: Arc<Histogram>,
    /// Rebuilds triggered by the journal-growth ratio (auto-compaction).
    pub auto_compactions: Arc<Counter>,
    /// Kernel work done applying inserts on shard workers.
    pub ingest_kernel: KernelCounters,
    /// Kernel work done serving read queries.
    pub query_kernel: KernelCounters,
}

/// The process-global service metric handles (registered on first use).
pub fn service_metrics() -> &'static ServiceMetrics {
    static M: OnceLock<ServiceMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        ServiceMetrics {
            inserts_enqueued: r.counter(
                "chull_service_inserts_enqueued_total",
                "Inserts accepted into a shard ingest queue.",
            ),
            overloaded: r.counter(
                "chull_service_overloaded_total",
                "Inserts rejected with Overloaded backpressure.",
            ),
            flushes: r.counter("chull_service_flushes_total", "Flush barriers served."),
            batches: r.counter(
                "chull_shard_batches_total",
                "Batches applied by shard workers.",
            ),
            batch_size: r.histogram(
                "chull_shard_batch_inserts",
                "Inserts per applied shard batch (pop_batch coalescing at work).",
            ),
            batch_apply_us: r.histogram(
                "chull_shard_batch_apply_us",
                "Microseconds to apply one batch to the online hull.",
            ),
            journal_append_us: r.histogram(
                "chull_journal_append_us",
                "Microseconds to journal one batch before applying it.",
            ),
            wal_sync_us: r.histogram(
                "chull_wal_sync_us",
                "Microseconds in the journal sync (WAL fsync) per batch.",
            ),
            wal_errors: r.counter(
                "chull_wal_errors_total",
                "WAL append/sync errors (in-memory journal stays authoritative).",
            ),
            recoveries: r.counter(
                "chull_shard_recoveries_total",
                "Shard worker recoveries (supervised journal replays).",
            ),
            recovery_us: r.histogram(
                "chull_shard_recovery_us",
                "Microseconds to replay the journal after a worker death.",
            ),
            bulk_builds: r.counter(
                "chull_shard_bulk_builds_total",
                "Recoveries rebuilt by the bulk divide-and-conquer constructor.",
            ),
            bulk_build_us: r.histogram(
                "chull_shard_bulk_build_us",
                "Microseconds of one bulk build (candidate sweep + batch install).",
            ),
            torn_tails: r.counter(
                "chull_journal_torn_tails_total",
                "Torn journal tails detected when sealing for replay.",
            ),
            degraded_us: r.counter(
                "chull_shard_degraded_us_total",
                "Total microseconds shards have spent serving degraded reads.",
            ),
            accepts: r.counter(
                "chull_server_accepts_total",
                "TCP connections accepted by the wire server.",
            ),
            connections_active: r.gauge(
                "chull_server_connections_active",
                "Client connections currently open.",
            ),
            connections_accepted: r.counter(
                "chull_server_connections_accepted_total",
                "Client connections accepted since start.",
            ),
            connections_closed: r.counter(
                "chull_server_connections_closed_total",
                "Client connections closed (EOF, error, deadline, shutdown).",
            ),
            readiness_wakeups: r.counter(
                "chull_server_readiness_wakeups_total",
                "Reactor poller wakeups that delivered at least one event.",
            ),
            accept_thread_panics: r.counter(
                "chull_server_accept_thread_panics_total",
                "Accept/reactor threads that panicked and were contained.",
            ),
            client_reconnects: r.counter(
                "chull_client_reconnects_total",
                "Client transparent reconnect-and-resume redials.",
            ),
            client_rejections: r.counter(
                "chull_client_insert_rejections_total",
                "Overloaded rejections absorbed by client insert_retry backoff.",
            ),
            repl_units_shipped: r.counter(
                "chull_replica_units_shipped_total",
                "Journal batch units shipped to replication subscribers.",
            ),
            repl_units_applied: r.counter(
                "chull_replica_units_applied_total",
                "Replicated batch units applied by this follower.",
            ),
            repl_resubscribes: r.counter(
                "chull_replica_resubscribes_total",
                "Follower resubscribe-with-resume attempts after a link fault.",
            ),
            repl_failovers: r.counter(
                "chull_replica_failovers_total",
                "Client/router failovers from a dead address to a fallback.",
            ),
            tombstones: r.counter(
                "chull_shard_tombstones_total",
                "Delete/expire tombstones journaled by shard workers.",
            ),
            window_expirations: r.counter(
                "chull_shard_window_expirations_total",
                "Points expired by per-shard window policies.",
            ),
            rebuilds: r.counter(
                "chull_shard_rebuilds_total",
                "Hull rebuilds from the live survivor set.",
            ),
            rebuild_us: r.histogram(
                "chull_shard_rebuild_us",
                "Microseconds of one rebuild from survivors (bulk build + checkpoint).",
            ),
            auto_compactions: r.counter(
                "chull_shard_auto_compactions_total",
                "Rebuilds triggered by the journal-growth ratio (auto-compaction).",
            ),
            ingest_kernel: KernelCounters::register("ingest"),
            query_kernel: KernelCounters::register("query"),
        }
    })
}

/// Read-path telemetry for the sublinear query pipeline (history-graph
/// descent + packed-plane filter). Folded per request by the server's
/// query dispatch; the per-shard accelerator *levels* (plane-block
/// length, hull vertex count) live in [`ShardGauges`] and refresh at
/// scrape time.
pub struct QueryMetrics {
    /// `chull_query_descent_steps`: history nodes visited per point-
    /// location query (expected `O(log n)`; compare against
    /// `chull_shard_plane_block_len` for the linear baseline).
    pub descent_steps: Arc<Histogram>,
    /// `chull_query_planes_filtered_total`: candidate planes whose sign
    /// the f64 SoA filter certified (no exact arithmetic needed).
    pub planes_filtered: Arc<Counter>,
    /// `chull_query_exact_fallbacks_total`: candidate planes that fell
    /// through to the exact i128/BigInt stages.
    pub exact_fallbacks: Arc<Counter>,
}

impl QueryMetrics {
    /// Fold one query's kernel tally in.
    pub fn fold(&self, c: &KernelCounts) {
        self.descent_steps.record(c.descent_steps);
        self.planes_filtered.add(c.filter_hits);
        self.exact_fallbacks
            .add(c.i128_fallbacks + c.bigint_fallbacks);
    }
}

/// The process-global query-path metric handles (registered on first use).
pub fn query_metrics() -> &'static QueryMetrics {
    static M: OnceLock<QueryMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = registry();
        QueryMetrics {
            descent_steps: r.histogram(
                "chull_query_descent_steps",
                "History-graph nodes visited per point-location query.",
            ),
            planes_filtered: r.counter(
                "chull_query_planes_filtered_total",
                "Query candidate planes certified by the f64 SoA filter.",
            ),
            exact_fallbacks: r.counter(
                "chull_query_exact_fallbacks_total",
                "Query candidate planes that needed exact i128/BigInt evaluation.",
            ),
        }
    })
}

/// Per-op request series: count + dispatch latency.
pub struct OpMetrics {
    /// `chull_server_requests_total{op=...}`.
    pub total: Arc<Counter>,
    /// `chull_server_request_us{op=...}`.
    pub latency_us: Arc<Histogram>,
}

const OPS: &[&str] = &[
    "insert",
    "insert_batch",
    "mutate",
    "contains",
    "visible",
    "extreme",
    "contains_scan",
    "visible_scan",
    "extreme_scan",
    "stats",
    "snapshot",
    "flush",
    "shutdown",
    "metrics",
    "hello",
    "repl_subscribe",
    "repl_ack",
    "repl_unit",
    "invalid",
];

/// Handles for one wire op (`"invalid"` covers undecodable requests).
/// Unknown names map to `"invalid"`.
pub fn op_metrics(op: &str) -> &'static OpMetrics {
    static M: OnceLock<HashMap<&'static str, OpMetrics>> = OnceLock::new();
    let map = M.get_or_init(|| {
        let r = registry();
        OPS.iter()
            .map(|&op| {
                (
                    op,
                    OpMetrics {
                        total: r.counter_with(
                            "chull_server_requests_total",
                            &[("op", op)],
                            "Requests dispatched, by wire op.",
                        ),
                        latency_us: r.histogram_with(
                            "chull_server_request_us",
                            &[("op", op)],
                            "Request dispatch latency in microseconds, by wire op.",
                        ),
                    },
                )
            })
            .collect()
    });
    map.get(op).unwrap_or_else(|| &map["invalid"])
}

/// Per-shard level gauges (one set per shard id, labeled `shard="N"`).
#[derive(Clone)]
pub struct ShardGauges {
    /// Items currently in the shard's ingest queue.
    pub queue_depth: Arc<Gauge>,
    /// The published snapshot's dependence depth (`OnlineHull::dep_depth`).
    pub dep_depth: Arc<Gauge>,
    /// Entries in the shard's insert journal.
    pub journal_len: Arc<Gauge>,
    /// The shard's publication epoch.
    pub epoch: Arc<Gauge>,
    /// Realized parallelism of the last batch apply, in thousandths
    /// (busy_ns * 1000 / wall_ns); 0 while no parallel batch has run.
    pub parallelism_milli: Arc<Gauge>,
    /// Pool worker threads the shard applies batches with.
    pub workers: Arc<Gauge>,
    /// Planes in the published snapshot's packed filter block (= facets
    /// ever created; the denominator `descent_steps` is sublinear in).
    pub plane_block_len: Arc<Gauge>,
    /// Vertices on the published snapshot's hull (the `Extreme` scan
    /// length).
    pub hull_vertices: Arc<Gauge>,
    /// Batch units the slowest acked subscriber trails this shard by
    /// (primary side; 0 with no subscribers).
    pub replica_lag_batches: Arc<Gauge>,
    /// One past the highest batch unit a subscriber has acked durably
    /// applied (primary side).
    pub replica_last_acked: Arc<Gauge>,
    /// Distinct live (inserted, not yet deleted/expired) rows.
    pub live_points: Arc<Gauge>,
    /// Tombstoned rows awaiting the next survivor rebuild.
    pub lazy_tombstones: Arc<Gauge>,
}

/// Register (or fetch) the gauge set for shard `shard`.
pub fn shard_gauges(shard: usize) -> ShardGauges {
    let r = registry();
    let s = shard.to_string();
    let l: &[(&str, &str)] = &[("shard", s.as_str())];
    ShardGauges {
        queue_depth: r.gauge_with(
            "chull_shard_queue_depth",
            l,
            "Items currently queued for the shard worker.",
        ),
        dep_depth: r.gauge_with(
            "chull_shard_dep_depth",
            l,
            "Dependence depth of the shard's published hull (Theorem 4.2 observable).",
        ),
        journal_len: r.gauge_with(
            "chull_shard_journal_len",
            l,
            "Entries in the shard's append-only insert journal.",
        ),
        epoch: r.gauge_with(
            "chull_shard_epoch",
            l,
            "The shard's snapshot publication epoch.",
        ),
        parallelism_milli: r.gauge_with(
            "chull_shard_batch_parallelism_milli",
            l,
            "Realized parallelism of the last batch apply (busy/wall, in thousandths).",
        ),
        workers: r.gauge_with(
            "chull_shard_workers",
            l,
            "Pool worker threads the shard applies batches with.",
        ),
        plane_block_len: r.gauge_with(
            "chull_shard_plane_block_len",
            l,
            "Planes in the published snapshot's packed SoA filter block.",
        ),
        hull_vertices: r.gauge_with(
            "chull_shard_hull_vertices",
            l,
            "Vertices on the published snapshot's hull.",
        ),
        replica_lag_batches: r.gauge_with(
            "chull_replica_lag_batches",
            l,
            "Batch units the last-acked replication subscriber trails this shard by.",
        ),
        replica_last_acked: r.gauge_with(
            "chull_replica_last_acked",
            l,
            "One past the highest journal batch unit acked by a replication subscriber.",
        ),
        live_points: r.gauge_with(
            "chull_shard_live_points",
            l,
            "Distinct live (inserted, not yet deleted/expired) rows.",
        ),
        lazy_tombstones: r.gauge_with(
            "chull_shard_lazy_tombstones",
            l,
            "Tombstoned rows awaiting the next survivor rebuild.",
        ),
    }
}
