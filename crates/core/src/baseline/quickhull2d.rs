//! 2D quickhull: the classic divide-and-conquer baseline.
//!
//! Expected `O(n log n)` on random inputs, `O(n^2)` worst case. Included
//! because divide-and-conquer is the approach the paper contrasts the
//! incremental method against (Section 2), and as an independent oracle.

use crate::facet::facet_verts;
use crate::output::HullOutput;
use chull_geometry::predicates::orient2d;
use chull_geometry::{Point2i, Sign};

/// Squared-ish distance proxy: twice the signed area of `(a, b, p)`;
/// larger magnitude = farther from line `a-b`. Exact in `i128`.
fn line_dist2(a: Point2i, b: Point2i, p: Point2i) -> i128 {
    let v = (b.x as i128 - a.x as i128) * (p.y as i128 - a.y as i128)
        - (b.y as i128 - a.y as i128) * (p.x as i128 - a.x as i128);
    v.abs()
}

fn find_side(points: &[Point2i], subset: &[u32], a: u32, b: u32, out: &mut Vec<u32>) {
    // Points strictly right of directed line a -> b (the outside region
    // when walking the hull counterclockwise from a to b).
    let pa = points[a as usize];
    let pb = points[b as usize];
    for &i in subset {
        if i != a && i != b && orient2d(pa, pb, points[i as usize]) == Sign::Negative {
            out.push(i);
        }
    }
}

fn quickhull_rec(points: &[Point2i], subset: &[u32], a: u32, b: u32, hull: &mut Vec<u32>) {
    if subset.is_empty() {
        return;
    }
    let pa = points[a as usize];
    let pb = points[b as usize];
    // Farthest point from the line; ties broken by index for determinism.
    let &far = subset
        .iter()
        .max_by_key(|&&i| (line_dist2(pa, pb, points[i as usize]), std::cmp::Reverse(i)))
        .unwrap();
    let mut left1 = Vec::new();
    let mut left2 = Vec::new();
    find_side(points, subset, a, far, &mut left1);
    find_side(points, subset, far, b, &mut left2);
    quickhull_rec(points, &left1, a, far, hull);
    hull.push(far);
    quickhull_rec(points, &left2, far, b, hull);
}

/// Hull vertex indices in counterclockwise order.
pub fn hull_indices(points: &[Point2i]) -> Vec<u32> {
    if points.is_empty() {
        return Vec::new();
    }
    let all: Vec<u32> = (0..points.len() as u32).collect();
    // Extremes in x (ties by y) are hull vertices.
    let &min = all.iter().min_by_key(|&&i| points[i as usize]).unwrap();
    let &max = all.iter().max_by_key(|&&i| points[i as usize]).unwrap();
    if points[min as usize] == points[max as usize] {
        return vec![min]; // all points identical
    }
    let mut below = Vec::new(); // strictly right of min->max = below
    let mut above = Vec::new();
    let pmin = points[min as usize];
    let pmax = points[max as usize];
    for &i in &all {
        if i == min || i == max {
            continue;
        }
        match orient2d(pmin, pmax, points[i as usize]) {
            Sign::Positive => above.push(i),
            Sign::Negative => below.push(i),
            Sign::Zero => {}
        }
    }
    if above.is_empty() && below.is_empty() {
        return vec![min, max]; // collinear input
    }
    let mut hull = Vec::new();
    hull.push(min);
    quickhull_rec(points, &below, min, max, &mut hull);
    hull.push(max);
    quickhull_rec(points, &above, max, min, &mut hull);
    hull
}

/// The hull as a [`HullOutput`].
pub fn hull_output(points: &[Point2i]) -> HullOutput {
    let h = hull_indices(points);
    let facets = (0..h.len())
        .map(|i| facet_verts(&[h[i], h[(i + 1) % h.len()]]))
        .collect();
    HullOutput { dim: 2, facets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::monotone_chain;
    use chull_geometry::generators;

    #[test]
    fn matches_monotone_chain_on_random_inputs() {
        for seed in 0..5u64 {
            let pts = generators::disk_2d(300, 1 << 20, seed);
            let mut qh = hull_indices(&pts);
            let mut mc = monotone_chain::hull_indices(&pts);
            qh.sort_unstable();
            mc.sort_unstable();
            assert_eq!(qh, mc, "seed {seed}");
        }
    }

    #[test]
    fn matches_on_convex_position() {
        let pts = generators::parabola_2d(100, 7);
        assert_eq!(
            hull_output(&pts).canonical(),
            monotone_chain::hull_output(&pts).canonical()
        );
    }

    #[test]
    fn ccw_order() {
        use chull_geometry::predicates::orient2d;
        use chull_geometry::Sign;
        let pts = generators::disk_2d(60, 1 << 12, 9);
        let h = hull_indices(&pts);
        assert!(h.len() >= 3);
        for i in 0..h.len() {
            let a = pts[h[i] as usize];
            let b = pts[h[(i + 1) % h.len()] as usize];
            let c = pts[h[(i + 2) % h.len()] as usize];
            assert_eq!(orient2d(a, b, c), Sign::Positive);
        }
    }

    #[test]
    fn degenerate_small_inputs() {
        use chull_geometry::Point2i;
        assert_eq!(hull_indices(&[]).len(), 0);
        assert_eq!(hull_indices(&[Point2i::new(1, 1)]), vec![0]);
        assert_eq!(
            hull_indices(&[Point2i::new(0, 0), Point2i::new(1, 1), Point2i::new(2, 2)]).len(),
            2
        );
    }
}
