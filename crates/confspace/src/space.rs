//! Configuration spaces with support sets (Sections 3 and 4 of the paper).
//!
//! A configuration space `(X, Pi)` consists of objects `X` (identified here
//! by indices `0..n`) and configurations, each with a *defining set*
//! `D(pi) ⊆ X` and a *conflict set* `C(pi) ⊆ X \ D(pi)`. A configuration is
//! *active* w.r.t. `Y ⊆ X` if `D(pi) ⊆ Y` and `C(pi) ∩ Y = ∅`.
//!
//! The paper's new notion is the **support set** (Definition 3.2): `Phi` is
//! a support set for `(pi, x)` if
//!
//! 1. `D(pi) ⊆ D(Phi) ∪ {x}`, and
//! 2. `C(pi) ∪ {x} ⊆ C(Phi)`.
//!
//! A space has *k-support* (Definition 3.3) if every active configuration
//! and defining object has a support set of size at most `k` that is active
//! before `x` is added. The trait below exposes exactly the oracles needed
//! to *check* these definitions on concrete instances and to build the
//! configuration dependence graph of Definition 4.1.

use std::collections::HashSet;
use std::fmt::Debug;
use std::hash::Hash;

/// A configuration space instance over objects `0..num_objects()`.
pub trait ConfigurationSpace {
    /// Configuration identifier (e.g. an oriented facet).
    type Config: Clone + Eq + Hash + Debug;

    /// Total number of objects in `X`.
    fn num_objects(&self) -> usize;

    /// Maximum degree `g`: an upper bound on `|D(pi)|`.
    fn max_degree(&self) -> usize;

    /// Multiplicity `c`: max number of configurations per defining set.
    fn multiplicity(&self) -> usize;

    /// Base size `n_b`: the prefix treated as the seed (no dependencies).
    fn base_size(&self) -> usize;

    /// Claimed support bound `k` (2 for convex hulls, Theorem 5.1).
    fn support_bound(&self) -> usize;

    /// The defining set `D(pi)` as object indices.
    fn defining_set(&self, pi: &Self::Config) -> Vec<usize>;

    /// Whether object `x` is in the conflict set `C(pi)`.
    fn conflicts(&self, pi: &Self::Config, x: usize) -> bool;

    /// The active configurations `T(Y)` for the object subset `Y`.
    fn active_configs(&self, objs: &[usize]) -> Vec<Self::Config>;

    /// The support set for `(pi, x)` within `T(Y \ {x})`, where `objs = Y`
    /// and `pi ∈ T(Y)` with `x ∈ D(pi)`. Must return at most
    /// [`support_bound`](Self::support_bound) configurations.
    fn support_set(&self, objs: &[usize], pi: &Self::Config, x: usize) -> Vec<Self::Config>;
}

/// Outcome of checking Definition 3.2 for one `(pi, x)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupportCheck {
    /// Both containment conditions hold and the size bound is respected.
    Valid,
    /// The support set is larger than the claimed `k`.
    TooLarge(usize),
    /// Condition (1) fails: some defining object of `pi` is neither `x` nor
    /// defined by the support set.
    DefiningNotCovered(usize),
    /// Condition (2) fails: some object of `C(pi) ∪ {x}` does not conflict
    /// with the support set.
    ConflictNotCovered(usize),
    /// The returned support configurations are not all active in
    /// `T(Y \ {x})`.
    NotActive,
}

/// Check Definition 3.2 and the activity requirement of Definition 3.3 for
/// one active configuration `pi ∈ T(Y)` and one `x ∈ D(pi)`.
///
/// `objs` is `Y`. This is the brute-force oracle used by the test suites to
/// validate Theorem 5.1 (2-support for hulls) and Lemma 6.2 (4-support for
/// corners) on concrete inputs.
pub fn check_support<S: ConfigurationSpace>(
    space: &S,
    objs: &[usize],
    pi: &S::Config,
    x: usize,
) -> SupportCheck {
    let support = space.support_set(objs, pi, x);
    if support.len() > space.support_bound() {
        return SupportCheck::TooLarge(support.len());
    }

    // Activity: every support configuration must be active w.r.t. Y \ {x}.
    let rest: Vec<usize> = objs.iter().copied().filter(|&o| o != x).collect();
    let active: HashSet<S::Config> = space.active_configs(&rest).into_iter().collect();
    if !support.iter().all(|phi| active.contains(phi)) {
        return SupportCheck::NotActive;
    }

    // Condition (1): D(pi) ⊆ D(Phi) ∪ {x}.
    let d_phi: HashSet<usize> = support
        .iter()
        .flat_map(|phi| space.defining_set(phi))
        .collect();
    for d in space.defining_set(pi) {
        if d != x && !d_phi.contains(&d) {
            return SupportCheck::DefiningNotCovered(d);
        }
    }

    // Condition (2): C(pi) ∪ {x} ⊆ C(Phi). Checked over all objects.
    let in_c_phi = |o: usize| support.iter().any(|phi| space.conflicts(phi, o));
    if !in_c_phi(x) {
        return SupportCheck::ConflictNotCovered(x);
    }
    for o in 0..space.num_objects() {
        if space.conflicts(pi, o) && !in_c_phi(o) {
            return SupportCheck::ConflictNotCovered(o);
        }
    }
    SupportCheck::Valid
}

/// Check `k`-support (Definition 3.3) for every active configuration of
/// every prefix of `order`, returning the first violation found.
///
/// Exhaustive and therefore quadratic-ish; intended for moderate `n` in
/// tests and the E5/E6 experiments.
pub fn check_k_support_along_order<S: ConfigurationSpace>(
    space: &S,
    order: &[usize],
) -> Option<(usize, S::Config, usize, SupportCheck)> {
    for i in space.base_size()..=order.len() {
        let prefix = &order[..i];
        for pi in space.active_configs(prefix) {
            for x in space.defining_set(&pi) {
                // Only objects beyond the seed prefix participate in
                // dependencies (Definition 4.1 starts at i > n_b).
                if prefix[..space.base_size()].contains(&x) {
                    continue;
                }
                let res = check_support(space, prefix, &pi, x);
                if res != SupportCheck::Valid {
                    return Some((i, pi, x, res));
                }
            }
        }
    }
    None
}
