//! Deterministic seeded stress tests for the bounded ingest queue:
//! no lost or duplicated items under producer/consumer contention, and
//! backpressure (`PushError::Full`) engages at capacity.

use chull_concurrent::{BoundedQueue, PushError};
use chull_geometry::rng::ChaCha8Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `producers` threads push `per_producer` tagged items each through a
/// queue of `capacity`, retrying on `Full`; `consumers` threads drain with
/// `pop_batch`. Returns (per-item receipt counts, observed Full rejections).
fn run_stress(
    seed: u64,
    producers: usize,
    consumers: usize,
    per_producer: usize,
    capacity: usize,
    batch_max: usize,
) -> (Vec<u64>, u64) {
    let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(capacity));
    let total = producers * per_producer;
    let seen: Arc<Vec<AtomicU64>> = Arc::new((0..total).map(|_| AtomicU64::new(0)).collect());
    let rejected = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for c in 0..consumers {
            let q = Arc::clone(&q);
            let seen = Arc::clone(&seen);
            s.spawn(move || {
                let mut out = Vec::new();
                loop {
                    out.clear();
                    if q.pop_batch(batch_max.max(1 + c % 3), &mut out) == 0 {
                        break;
                    }
                    for &item in &out {
                        seen[item as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::scope(|ps| {
            for p in 0..producers {
                let q = Arc::clone(&q);
                let rejected = Arc::clone(&rejected);
                ps.spawn(move || {
                    // Per-producer deterministic jitter: occasionally yield so
                    // interleavings vary across threads but not across runs
                    // of the same seed (modulo scheduling, which the
                    // exactly-once assertion is robust to).
                    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (p as u64) << 32);
                    for i in 0..per_producer {
                        let item = (p * per_producer + i) as u64;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(_)) => {
                                    rejected.fetch_add(1, Ordering::Relaxed);
                                    if rng.next_u32().is_multiple_of(4) {
                                        std::thread::yield_now();
                                    }
                                }
                                Err(PushError::Closed(_)) => {
                                    panic!("queue closed while producing")
                                }
                            }
                        }
                        if rng.next_u32().is_multiple_of(16) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        // All producers done; close so consumers drain and exit.
        q.close();
    });

    let counts = seen.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    (counts, rejected.load(Ordering::Relaxed))
}

#[test]
fn no_lost_or_duplicated_items_under_contention() {
    for seed in [1u64, 7, 42] {
        let (counts, _) = run_stress(seed, 4, 3, 2_000, 64, 17);
        for (item, &c) in counts.iter().enumerate() {
            assert_eq!(c, 1, "seed {seed}: item {item} seen {c} times");
        }
    }
}

#[test]
fn backpressure_engages_at_tiny_capacity() {
    // Capacity 2 with 4 producers hammering: Full rejections must occur,
    // yet every item still arrives exactly once after retries.
    let (counts, rejected) = run_stress(5, 4, 1, 500, 2, 4);
    assert!(counts.iter().all(|&c| c == 1), "exactly-once violated");
    assert!(rejected > 0, "expected Full rejections at capacity 2");
}

#[test]
fn single_producer_single_consumer_is_fifo() {
    let q: BoundedQueue<u64> = BoundedQueue::new(8);
    std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..1_000u64 {
                q.push(i).unwrap();
            }
            q.close();
        });
        let mut next = 0u64;
        let mut out = Vec::new();
        loop {
            out.clear();
            if q.pop_batch(32, &mut out) == 0 {
                break;
            }
            for &v in &out {
                assert_eq!(v, next, "FIFO order violated");
                next += 1;
            }
        }
        assert_eq!(next, 1_000);
    });
}
