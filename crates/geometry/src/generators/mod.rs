//! Reproducible workload generators for every experiment in the suite.
//!
//! All generators are seeded (ChaCha8) so that every table in
//! `EXPERIMENTS.md` can be regenerated bit-for-bit. Points are integer
//! lattice points; distributions cover the regimes that matter for
//! randomized incremental hull analysis:
//!
//! * **small hull** (uniform in a ball/cube — expected hull size
//!   `O(log^{d-1} n)` in a ball): the common case;
//! * **all-extreme** (convex position: parabola/paraboloid, near-sphere):
//!   the adversarial case where the hull has `Theta(n)` facets;
//! * **degenerate** (grids, co-planar faces, collinear runs): exercises the
//!   Section 6 corner-configuration algorithm and the exact predicates.

use crate::point::{Point2i, Point3i, PointSet};
use crate::rng::{ChaCha8Rng, SliceRandom};
use std::collections::HashSet;

/// The deterministic RNG used throughout the suite.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A uniformly random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng(seed));
    perm
}

fn dedup_shuffled<T: Ord + Copy + std::hash::Hash>(pts: Vec<T>, r: &mut ChaCha8Rng) -> Vec<T> {
    let mut seen = HashSet::with_capacity(pts.len());
    let mut out: Vec<T> = pts.into_iter().filter(|p| seen.insert(*p)).collect();
    out.shuffle(r);
    out
}

/// `n` distinct points uniform in the disk of the given radius.
pub fn disk_2d(n: usize, radius: i64, seed: u64) -> Vec<Point2i> {
    assert!(radius >= 4, "radius too small to host distinct points");
    let mut r = rng(seed);
    let r2 = (radius as i128) * (radius as i128);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let x = r.gen_range(-radius..=radius);
        let y = r.gen_range(-radius..=radius);
        if (x as i128) * (x as i128) + (y as i128) * (y as i128) <= r2 {
            pts.push(Point2i::new(x, y));
        }
    }
    let mut out = dedup_shuffled(pts, &mut r);
    top_up_2d(&mut out, n, radius, &mut r);
    out
}

/// `n` distinct points uniform in the ball of the given radius.
pub fn ball_3d(n: usize, radius: i64, seed: u64) -> Vec<Point3i> {
    assert!(radius >= 4, "radius too small to host distinct points");
    let mut r = rng(seed);
    let r2 = (radius as i128) * (radius as i128);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let x = r.gen_range(-radius..=radius);
        let y = r.gen_range(-radius..=radius);
        let z = r.gen_range(-radius..=radius);
        let d2 = (x as i128) * (x as i128) + (y as i128) * (y as i128) + (z as i128) * (z as i128);
        if d2 <= r2 {
            pts.push(Point3i::new(x, y, z));
        }
    }
    let mut out = dedup_shuffled(pts, &mut r);
    while out.len() < n {
        let x = r.gen_range(-radius..=radius);
        let y = r.gen_range(-radius..=radius);
        let z = r.gen_range(-radius..=radius);
        let p = Point3i::new(x, y, z);
        if !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

fn top_up_2d(out: &mut Vec<Point2i>, n: usize, radius: i64, r: &mut ChaCha8Rng) {
    while out.len() < n {
        let p = Point2i::new(r.gen_range(-radius..=radius), r.gen_range(-radius..=radius));
        if !out.contains(&p) {
            out.push(p);
        }
    }
}

/// `n` distinct points uniform in the `dim`-cube `[-radius, radius]^dim`.
pub fn cube_d(dim: usize, n: usize, radius: i64, seed: u64) -> PointSet {
    assert!(dim >= 2);
    let mut r = rng(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(n);
    while rows.len() < n {
        let p: Vec<i64> = (0..dim).map(|_| r.gen_range(-radius..=radius)).collect();
        if seen.insert(p.clone()) {
            rows.push(p);
        }
    }
    rows.shuffle(&mut r);
    PointSet::from_rows(dim, &rows)
}

/// `n` distinct points uniform in the `dim`-ball of the given radius
/// (rejection sampling; fine for `dim <= 8`).
pub fn ball_d(dim: usize, n: usize, radius: i64, seed: u64) -> PointSet {
    assert!(dim >= 2);
    let mut r = rng(seed);
    let r2 = (radius as i128) * (radius as i128);
    let mut seen = HashSet::with_capacity(n);
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(n);
    while rows.len() < n {
        let p: Vec<i64> = (0..dim).map(|_| r.gen_range(-radius..=radius)).collect();
        let d2: i128 = p.iter().map(|&c| (c as i128) * (c as i128)).sum();
        if d2 <= r2 && seen.insert(p.clone()) {
            rows.push(p);
        }
    }
    rows.shuffle(&mut r);
    PointSet::from_rows(dim, &rows)
}

/// `n` distinct points close to the sphere of the given radius (gaussian
/// direction scaled to the radius, rounded to the lattice). Almost every
/// point is a hull vertex: the adversarial "all-extreme" regime.
pub fn near_sphere_d(dim: usize, n: usize, radius: i64, seed: u64) -> PointSet {
    assert!(dim >= 2);
    assert!(
        radius >= 1000,
        "need a large radius for near-sphere lattice points"
    );
    let mut r = rng(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(n);
    while rows.len() < n {
        let dir: Vec<f64> = (0..dim).map(|_| standard_normal(&mut r)).collect();
        let norm: f64 = dir.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-9 {
            continue;
        }
        let p: Vec<i64> = dir
            .iter()
            .map(|v| (v / norm * radius as f64).round() as i64)
            .collect();
        if seen.insert(p.clone()) {
            rows.push(p);
        }
    }
    rows.shuffle(&mut r);
    PointSet::from_rows(dim, &rows)
}

/// 3D variant of [`near_sphere_d`] returning typed points.
pub fn near_sphere_3d(n: usize, radius: i64, seed: u64) -> Vec<Point3i> {
    let ps = near_sphere_d(3, n, radius, seed);
    ps.iter().map(|c| Point3i::new(c[0], c[1], c[2])).collect()
}

/// 2D variant of [`near_sphere_d`] (a near-circle) returning typed points.
pub fn near_circle_2d(n: usize, radius: i64, seed: u64) -> Vec<Point2i> {
    let ps = near_sphere_d(2, n, radius, seed);
    ps.iter().map(|c| Point2i::new(c[0], c[1])).collect()
}

/// `n` points in exact convex position: `(x, x^2)` for distinct `x`.
/// Every point is a hull vertex; the hardest 2D input.
pub fn parabola_2d(n: usize, seed: u64) -> Vec<Point2i> {
    let mut r = rng(seed);
    let span = (n as i64) * 4;
    assert!(span * span <= crate::point::MAX_COORD, "parabola too wide");
    let mut xs: HashSet<i64> = HashSet::with_capacity(n);
    while xs.len() < n {
        xs.insert(r.gen_range(-span..=span));
    }
    let mut pts: Vec<Point2i> = xs.into_iter().map(|x| Point2i::new(x, x * x)).collect();
    pts.shuffle(&mut r);
    pts
}

/// `n` points on the exact paraboloid `(x, y, x^2 + y^2)`: the lifting-map
/// image of a 2D point set, and a 3D input in convex position (its lower
/// hull is the Delaunay triangulation of the `(x, y)` projection).
pub fn paraboloid_3d(n: usize, range: i64, seed: u64) -> Vec<Point3i> {
    assert!(range * range * 2 <= crate::point::MAX_COORD);
    let mut r = rng(seed);
    let mut seen: HashSet<(i64, i64)> = HashSet::with_capacity(n);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let x = r.gen_range(-range..=range);
        let y = r.gen_range(-range..=range);
        if seen.insert((x, y)) {
            pts.push(Point3i::new(x, y, x * x + y * y));
        }
    }
    pts.shuffle(&mut r);
    pts
}

/// Gaussian cloud (rounded), standard deviation `stddev` lattice units.
pub fn gaussian_d(dim: usize, n: usize, stddev: f64, seed: u64) -> PointSet {
    assert!(dim >= 2);
    assert!(
        stddev >= 100.0,
        "stddev too small for distinct lattice points"
    );
    let mut r = rng(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut rows: Vec<Vec<i64>> = Vec::with_capacity(n);
    while rows.len() < n {
        let p: Vec<i64> = (0..dim)
            .map(|_| (standard_normal(&mut r) * stddev).round() as i64)
            .collect();
        if seen.insert(p.clone()) {
            rows.push(p);
        }
    }
    rows.shuffle(&mut r);
    PointSet::from_rows(dim, &rows)
}

/// The full integer grid `side x side x side`: maximally degenerate 3D input
/// (co-planar, collinear, co-spherical subsets everywhere). Exercises the
/// Section 6 corner-configuration algorithm.
pub fn grid_3d(side: i64, seed: u64) -> Vec<Point3i> {
    assert!(side >= 2);
    let mut pts = Vec::with_capacity((side * side * side) as usize);
    for x in 0..side {
        for y in 0..side {
            for z in 0..side {
                pts.push(Point3i::new(x, y, z));
            }
        }
    }
    pts.shuffle(&mut rng(seed));
    pts
}

/// The full integer grid `side x side`: degenerate 2D input.
pub fn grid_2d(side: i64, seed: u64) -> Vec<Point2i> {
    assert!(side >= 2);
    let mut pts = Vec::with_capacity((side * side) as usize);
    for x in 0..side {
        for y in 0..side {
            pts.push(Point2i::new(x, y));
        }
    }
    pts.shuffle(&mut rng(seed));
    pts
}

/// `n` points on the faces of the cube `[-radius, radius]^3`: many co-planar
/// points (degenerate facets), the motivating input of Section 6.
pub fn cube_faces_3d(n: usize, radius: i64, seed: u64) -> Vec<Point3i> {
    assert!(radius >= 4);
    let mut r = rng(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n {
        let face = r.gen_range(0..6);
        let u = r.gen_range(-radius..=radius);
        let v = r.gen_range(-radius..=radius);
        let p = match face {
            0 => Point3i::new(radius, u, v),
            1 => Point3i::new(-radius, u, v),
            2 => Point3i::new(u, radius, v),
            3 => Point3i::new(u, -radius, v),
            4 => Point3i::new(u, v, radius),
            _ => Point3i::new(u, v, -radius),
        };
        if seen.insert(p) {
            pts.push(p);
        }
    }
    pts
}

/// Mostly-collinear 2D input: `n - extremes` points on a line segment plus
/// `extremes` off-line points. Stresses zero-orientation handling.
pub fn collinear_heavy_2d(n: usize, extremes: usize, seed: u64) -> Vec<Point2i> {
    assert!(n > extremes + 1);
    let mut r = rng(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut pts = Vec::with_capacity(n);
    while pts.len() < n - extremes {
        let x = r.gen_range(-(n as i64 * 4)..=(n as i64 * 4));
        let p = Point2i::new(x, 2 * x + 7); // on the line y = 2x + 7
        if seen.insert(p) {
            pts.push(p);
        }
    }
    while pts.len() < n {
        let p = Point2i::new(r.gen_range(-1000..=1000), r.gen_range(100_000..=200_000));
        if seen.insert(p) {
            pts.push(p);
        }
    }
    pts.shuffle(&mut r);
    pts
}

/// Box–Muller standard normal.
fn standard_normal(r: &mut ChaCha8Rng) -> f64 {
    loop {
        let u: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
        let v: f64 = r.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u.ln()).sqrt() * v.cos();
        if z.is_finite() {
            return z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(disk_2d(100, 1 << 20, 42), disk_2d(100, 1 << 20, 42));
        assert_ne!(disk_2d(100, 1 << 20, 42), disk_2d(100, 1 << 20, 43));
        assert_eq!(random_permutation(50, 7), random_permutation(50, 7));
    }

    #[test]
    fn disk_points_distinct_and_inside() {
        let radius = 1 << 16;
        let pts = disk_2d(500, radius, 1);
        assert_eq!(pts.len(), 500);
        let set: HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), 500, "points must be distinct");
        let r2 = (radius as i128) * (radius as i128);
        for p in &pts {
            assert!((p.x as i128).pow(2) + (p.y as i128).pow(2) <= r2);
        }
    }

    #[test]
    fn ball3d_points_distinct_and_inside() {
        let radius = 1 << 16;
        let pts = ball_3d(300, radius, 2);
        assert_eq!(pts.len(), 300);
        let set: HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), 300);
    }

    #[test]
    fn cube_d_dimensions() {
        for dim in 2..=6 {
            let ps = cube_d(dim, 100, 1 << 16, 3);
            assert_eq!(ps.dim(), dim);
            assert_eq!(ps.len(), 100);
        }
    }

    #[test]
    fn parabola_strict_convex_position() {
        use crate::exact::Sign;
        use crate::predicates::orient2d;
        let mut pts = parabola_2d(100, 4);
        pts.sort();
        // Consecutive triples along the parabola always turn left.
        for w in pts.windows(3) {
            assert_eq!(orient2d(w[0], w[1], w[2]), Sign::Positive);
        }
    }

    #[test]
    fn paraboloid_lift_exact() {
        let pts = paraboloid_3d(200, 1 << 10, 5);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            assert_eq!(p.z, p.x * p.x + p.y * p.y);
        }
    }

    #[test]
    fn near_sphere_roughly_on_sphere() {
        let radius = 1 << 20;
        let ps = near_sphere_d(3, 200, radius, 6);
        for c in ps.iter() {
            let d2: i128 = c.iter().map(|&v| (v as i128) * (v as i128)).sum();
            let d = (d2 as f64).sqrt();
            assert!(
                (d - radius as f64).abs() < 4.0,
                "point far from sphere: {d}"
            );
        }
    }

    #[test]
    fn grid_sizes() {
        assert_eq!(grid_3d(4, 0).len(), 64);
        assert_eq!(grid_2d(5, 0).len(), 25);
    }

    #[test]
    fn collinear_heavy_has_off_line_points() {
        let pts = collinear_heavy_2d(100, 3, 9);
        assert_eq!(pts.len(), 100);
        let off = pts.iter().filter(|p| p.y != 2 * p.x + 7).count();
        assert_eq!(off, 3);
    }

    #[test]
    fn cube_faces_on_boundary() {
        let radius = 1000;
        let pts = cube_faces_3d(200, radius, 11);
        for p in &pts {
            let m = p.x.abs().max(p.y.abs()).max(p.z.abs());
            assert_eq!(m, radius, "point not on cube boundary: {p}");
        }
    }
}
