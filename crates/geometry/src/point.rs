//! Point types.
//!
//! The hull algorithms in this suite operate on **integer** coordinates so
//! that every plane-side test is exact and every run is bit-reproducible
//! (the paper's analysis assumes exact predicates). Floating-point points are
//! provided for the robust `f64` predicates and their tests.
//!
//! Coordinates must satisfy `|c| <= MAX_COORD`; the generators stay well
//! inside this bound and the predicates fall back to arbitrary precision in
//! all cases, so the bound is about *differences* fitting in `i64`.

use std::fmt;

/// Largest allowed coordinate magnitude (so differences fit in `i64`).
pub const MAX_COORD: i64 = i64::MAX / 4;

/// A 2D point with integer coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Point2i {
    /// x coordinate.
    pub x: i64,
    /// y coordinate.
    pub y: i64,
}

impl Point2i {
    /// Construct a point.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Point2i {
        Point2i { x, y }
    }

    /// Coordinates as a slice-friendly array.
    #[inline]
    pub fn coords(&self) -> [i64; 2] {
        [self.x, self.y]
    }
}

impl fmt::Display for Point2i {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3D point with integer coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct Point3i {
    /// x coordinate.
    pub x: i64,
    /// y coordinate.
    pub y: i64,
    /// z coordinate.
    pub z: i64,
}

impl Point3i {
    /// Construct a point.
    #[inline]
    pub const fn new(x: i64, y: i64, z: i64) -> Point3i {
        Point3i { x, y, z }
    }

    /// Coordinates as an array.
    #[inline]
    pub fn coords(&self) -> [i64; 3] {
        [self.x, self.y, self.z]
    }
}

impl fmt::Display for Point3i {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// A 2D point with floating-point coordinates (for the robust `f64`
/// predicates and their tests).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point2f {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point2f {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Point2f {
        Point2f { x, y }
    }
}

/// A 3D point with floating-point coordinates.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point3f {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
    /// z coordinate.
    pub z: f64,
}

impl Point3f {
    /// Construct a point.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Point3f {
        Point3f { x, y, z }
    }
}

/// A set of points of uniform runtime dimension, stored as one flat,
/// cache-friendly coordinate array (structure-of-arrays style per point).
///
/// This is the input type for the general-dimension hull algorithms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PointSet {
    dim: usize,
    coords: Vec<i64>,
}

impl PointSet {
    /// An empty set of points of dimension `dim`.
    pub fn new(dim: usize) -> PointSet {
        assert!(dim >= 1, "dimension must be at least 1");
        PointSet {
            dim,
            coords: Vec::new(),
        }
    }

    /// Build from a flat coordinate buffer (`len` must divide evenly).
    pub fn from_flat(dim: usize, coords: Vec<i64>) -> PointSet {
        assert!(dim >= 1, "dimension must be at least 1");
        assert_eq!(
            coords.len() % dim,
            0,
            "coordinate buffer length not a multiple of dim"
        );
        PointSet { dim, coords }
    }

    /// Build from per-point coordinate rows.
    pub fn from_rows(dim: usize, rows: &[Vec<i64>]) -> PointSet {
        let mut ps = PointSet::new(dim);
        for r in rows {
            ps.push(r);
        }
        ps
    }

    /// Build a 2D point set.
    pub fn from_points2(points: &[Point2i]) -> PointSet {
        let mut coords = Vec::with_capacity(points.len() * 2);
        for p in points {
            coords.push(p.x);
            coords.push(p.y);
        }
        PointSet { dim: 2, coords }
    }

    /// Build a 3D point set.
    pub fn from_points3(points: &[Point3i]) -> PointSet {
        let mut coords = Vec::with_capacity(points.len() * 3);
        for p in points {
            coords.push(p.x);
            coords.push(p.y);
            coords.push(p.z);
        }
        PointSet { dim: 3, coords }
    }

    /// Append a point; panics if the dimension does not match.
    pub fn push(&mut self, coords: &[i64]) {
        assert_eq!(coords.len(), self.dim, "point of wrong dimension");
        self.coords.extend_from_slice(coords);
    }

    /// The dimension of every point in the set.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// True iff the set holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinates of point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[i64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Coordinates of point `i` (u32 index convenience for facet ids).
    #[inline]
    pub fn pt(&self, i: u32) -> &[i64] {
        self.point(i as usize)
    }

    /// Iterate over all points as coordinate slices.
    pub fn iter(&self) -> impl Iterator<Item = &[i64]> + '_ {
        self.coords.chunks_exact(self.dim)
    }

    /// The flat coordinate buffer.
    #[inline]
    pub fn flat(&self) -> &[i64] {
        &self.coords
    }

    /// Reorder the points by `perm` (point `i` of the result is point
    /// `perm[i]` of `self`). Used to apply a random insertion order once so
    /// that "insertion order" and "index order" coincide downstream.
    pub fn permuted(&self, perm: &[usize]) -> PointSet {
        assert_eq!(perm.len(), self.len());
        let mut coords = Vec::with_capacity(self.coords.len());
        for &src in perm {
            coords.extend_from_slice(self.point(src));
        }
        PointSet {
            dim: self.dim,
            coords,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointset_basics() {
        let mut ps = PointSet::new(3);
        assert!(ps.is_empty());
        ps.push(&[1, 2, 3]);
        ps.push(&[4, 5, 6]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(0), &[1, 2, 3]);
        assert_eq!(ps.point(1), &[4, 5, 6]);
        assert_eq!(ps.dim(), 3);
        let pts: Vec<&[i64]> = ps.iter().collect();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn pointset_from_points2_and_3() {
        let ps = PointSet::from_points2(&[Point2i::new(1, 2), Point2i::new(3, 4)]);
        assert_eq!(ps.dim(), 2);
        assert_eq!(ps.point(1), &[3, 4]);
        let ps = PointSet::from_points3(&[Point3i::new(1, 2, 3)]);
        assert_eq!(ps.point(0), &[1, 2, 3]);
    }

    #[test]
    fn pointset_permuted() {
        let ps = PointSet::from_rows(2, &[vec![0, 0], vec![1, 1], vec![2, 2]]);
        let q = ps.permuted(&[2, 0, 1]);
        assert_eq!(q.point(0), &[2, 2]);
        assert_eq!(q.point(1), &[0, 0]);
        assert_eq!(q.point(2), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn pointset_dim_mismatch_panics() {
        let mut ps = PointSet::new(2);
        ps.push(&[1, 2, 3]);
    }

    #[test]
    fn display() {
        assert_eq!(Point2i::new(-1, 2).to_string(), "(-1, 2)");
        assert_eq!(Point3i::new(1, 2, 3).to_string(), "(1, 2, 3)");
    }
}
