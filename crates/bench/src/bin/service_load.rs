//! Load generator for the `chull-service` hull server (experiment E17).
//!
//! Starts an in-process server on loopback, streams a workload into one
//! shard from several concurrent client connections, then runs a mixed
//! query phase against the published snapshot. Records throughput and
//! client-observed latency percentiles per workload and writes them to a
//! JSON file (default `BENCH_service.json`).
//!
//! ```text
//! USAGE: service_load [--out FILE] [--clients C] [--quick]
//! ```
//!
//! `--quick` shrinks the workloads for CI smoke runs. Latencies are
//! *round-trip* (request written to reply decoded) over loopback TCP, so
//! they include wire encode/decode and the socket — the serving cost a
//! real client would see, not just the geometry.

use chull_geometry::generators;
use chull_geometry::PointSet;
use chull_service::{serve, HullClient, ServeOptions, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One workload's measured figures.
struct LoadResult {
    workload: String,
    dim: usize,
    n_points: usize,
    clients: usize,
    inserts_per_sec: f64,
    insert_p50_us: f64,
    insert_p99_us: f64,
    overloaded: u64,
    n_queries: usize,
    queries_per_sec: f64,
    query_p50_us: f64,
    query_p99_us: f64,
    hull_facets: usize,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// Run one workload: ingest all of `pts` into shard 0 from `clients`
/// connections, flush, then issue `queries_per_client` mixed queries from
/// each connection.
fn run_workload(
    name: &str,
    pts: &PointSet,
    clients: usize,
    queries_per_client: usize,
) -> LoadResult {
    let dim = pts.dim();
    let mut server = serve(ServeOptions {
        config: ServiceConfig {
            dim,
            shards: 1,
            queue_capacity: 4096,
            max_batch: 256,
        },
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    let n = pts.len();
    let rows: Vec<Vec<i64>> = (0..n).map(|i| pts.point(i).to_vec()).collect();
    let overloaded = Arc::new(AtomicU64::new(0));

    // Ingest phase: each client owns an interleaved slice of the stream.
    let t0 = Instant::now();
    let mut insert_lat_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let rows = &rows;
                let overloaded = Arc::clone(&overloaded);
                s.spawn(move || {
                    let mut client = HullClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(rows.len() / clients + 1);
                    for row in rows.iter().skip(c).step_by(clients) {
                        let q0 = Instant::now();
                        let rej = client.insert_retry(0, row).expect("insert");
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                        overloaded.fetch_add(rej, Ordering::Relaxed);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let ingest_secs = t0.elapsed().as_secs_f64();

    let mut client = HullClient::connect(addr).expect("connect");
    client.flush(0).expect("flush");
    let snap = client.snapshot(0).expect("snapshot");
    assert_eq!(snap.points.len(), n, "ingest lost points");

    // Query phase: 50% contains (half inside, half far outside), 25%
    // visible, 25% extreme — all against the published snapshot.
    let t1 = Instant::now();
    let mut query_lat_us: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let rows = &rows;
                s.spawn(move || {
                    let mut client = HullClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(queries_per_client);
                    for i in 0..queries_per_client {
                        let row = &rows[(i * clients + c) % rows.len()];
                        let q0 = Instant::now();
                        match i % 4 {
                            0 => {
                                client.contains(0, row).expect("contains");
                            }
                            1 => {
                                let far: Vec<i64> = row.iter().map(|&x| 2 * x + 3).collect();
                                client.contains(0, &far).expect("contains");
                            }
                            2 => {
                                client.visible(0, row).expect("visible");
                            }
                            _ => {
                                let mut d = vec![0i64; row.len()];
                                d[i % row.len()] = if i % 8 < 4 { 1 } else { -1 };
                                client.extreme(0, &d).expect("extreme");
                            }
                        }
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let query_secs = t1.elapsed().as_secs_f64();
    server.shutdown();

    insert_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    query_lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n_queries = clients * queries_per_client;
    let res = LoadResult {
        workload: name.to_string(),
        dim,
        n_points: n,
        clients,
        inserts_per_sec: n as f64 / ingest_secs,
        insert_p50_us: percentile(&insert_lat_us, 0.50),
        insert_p99_us: percentile(&insert_lat_us, 0.99),
        overloaded: overloaded.load(Ordering::Relaxed),
        n_queries,
        queries_per_sec: n_queries as f64 / query_secs,
        query_p50_us: percentile(&query_lat_us, 0.50),
        query_p99_us: percentile(&query_lat_us, 0.99),
        hull_facets: snap.facets.len(),
    };
    println!(
        "{:<28} {:>8} pts  {:>10.0} ins/s (p50 {:>6.1}us p99 {:>7.1}us, {} overloaded)  {:>10.0} qry/s (p50 {:>6.1}us p99 {:>7.1}us)  {} facets",
        res.workload,
        res.n_points,
        res.inserts_per_sec,
        res.insert_p50_us,
        res.insert_p99_us,
        res.overloaded,
        res.queries_per_sec,
        res.query_p50_us,
        res.query_p99_us,
        res.hull_facets
    );
    res
}

fn write_json(path: &str, results: &[LoadResult]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"workload\": \"{}\", \"dim\": {}, \"n_points\": {}, \"clients\": {}, \
             \"inserts_per_sec\": {:.0}, \"insert_p50_us\": {:.1}, \"insert_p99_us\": {:.1}, \
             \"overloaded\": {}, \"n_queries\": {}, \"queries_per_sec\": {:.0}, \
             \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \"hull_facets\": {}}}{}\n",
            r.workload,
            r.dim,
            r.n_points,
            r.clients,
            r.inserts_per_sec,
            r.insert_p50_us,
            r.insert_p99_us,
            r.overloaded,
            r.n_queries,
            r.queries_per_sec,
            r.query_p50_us,
            r.query_p99_us,
            r.hull_facets,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_service.json".to_string();
    let mut clients = 4usize;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a value").clone(),
            "--clients" => {
                clients = it
                    .next()
                    .expect("--clients needs a value")
                    .parse()
                    .expect("bad --clients value");
            }
            "--quick" => quick = true,
            other => {
                eprintln!("USAGE: service_load [--out FILE] [--clients C] [--quick]");
                panic!("unknown flag '{other}'");
            }
        }
    }
    let (n2, n3, q) = if quick {
        (2_000, 1_000, 500)
    } else {
        (50_000, 20_000, 5_000)
    };
    let results = vec![
        run_workload(
            "disk_2d/uniform",
            &generators::cube_d(2, n2, 1_000_000, 42),
            clients,
            q,
        ),
        run_workload(
            "near_circle_2d",
            &generators::near_sphere_d(2, n2 / 2, 1_000_000, 42),
            clients,
            q,
        ),
        run_workload(
            "ball_3d/uniform",
            &generators::ball_d(3, n3, 1_000_000, 42),
            clients,
            q,
        ),
    ];
    write_json(&out_path, &results).expect("writing results");
    println!("wrote {out_path}");
}
