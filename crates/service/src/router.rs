//! A thin failover router in front of a replicated hull cluster.
//!
//! `hull route` speaks the same framed wire protocol as the servers it
//! fronts: each client frame is decoded just enough to pick a backend
//! node, forwarded verbatim as a request object, and the backend's
//! reply relayed. Routing policy:
//!
//! * **writes** (`Insert`, `InsertBatch`, `Mutate`, `Flush`,
//!   replication ops, `Shutdown`) go to the first *healthy* node in
//!   configuration order
//!   — node 0 is the write primary; while it is down, writes land on
//!   the next node, which rejects them (`read-only follower replica`)
//!   until it self-promotes, at which point writes resume there;
//! * **reads** are consistent-hashed per shard over a vnode ring across
//!   all healthy nodes, so follower replicas absorb read load and a
//!   node's death only remaps its ring arcs;
//! * a health thread probes every node's `Stats` op on a short period;
//! * when a read lands on a node other than its ring owner (the owner
//!   is down), the reply is wrapped in the existing `Degraded`
//!   status — the same in-band signal the single-node server uses
//!   during journal replay — with the router's failover count as the
//!   generation, unless the reply already carries a status wrapper.
//!
//! The router holds no hull state and needs no consensus: any replica
//! can answer any read (staleness is bounded in-band by the v5 `Stale`
//! wrapper the follower itself applies), and Theorem 4.2's
//! order-independence means a promoted follower converges to the same
//! hull the primary had.

use crate::client::HullClient;
use crate::wire::{read_frame, write_frame, Request, Response};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Vnodes per node on the read ring: enough that losing one node
/// spreads its arcs roughly evenly over the survivors.
const VNODES: u64 = 40;

/// Configuration for [`route`].
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Address to listen on (`host:port`, port 0 for ephemeral).
    pub addr: String,
    /// Backend nodes in priority order; `nodes[0]` is the write primary.
    pub nodes: Vec<String>,
    /// Health-probe period.
    pub probe_interval: Duration,
    /// Connect/request deadline for health probes and backend dials.
    pub deadline: Duration,
}

impl Default for RouterOptions {
    fn default() -> RouterOptions {
        RouterOptions {
            addr: "127.0.0.1:0".to_string(),
            nodes: Vec::new(),
            probe_interval: Duration::from_millis(200),
            deadline: Duration::from_millis(500),
        }
    }
}

struct Backend {
    addr: String,
    healthy: AtomicBool,
}

struct RouterShared {
    nodes: Vec<Backend>,
    /// Sorted vnode ring: (hash point, node index).
    ring: Vec<(u64, usize)>,
    shutdown: AtomicBool,
    failovers: AtomicU32,
    forwarded: AtomicU64,
    deadline: Duration,
}

/// SplitMix64 — the ring only needs a well-mixed deterministic hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RouterShared {
    fn healthy(&self, idx: usize) -> bool {
        self.nodes[idx].healthy.load(Ordering::SeqCst)
    }

    /// The ring owner for `shard`, then fallbacks walking the ring —
    /// first entry that is healthy wins. `None` if every node is down.
    fn read_node(&self, shard: u16) -> Option<(usize, bool)> {
        if self.ring.is_empty() {
            return None;
        }
        let h = mix64(shard as u64 ^ 0xC0DE);
        let start = self.ring.partition_point(|(p, _)| *p < h) % self.ring.len();
        let owner = self.ring[start].1;
        let mut seen = 0usize;
        let mut i = start;
        while seen < self.ring.len() {
            let (_, node) = self.ring[i];
            if self.healthy(node) {
                return Some((node, node != owner));
            }
            i = (i + 1) % self.ring.len();
            seen += 1;
        }
        None
    }

    /// The write target: first healthy node in priority order, primary
    /// first. The bool is "not the primary" (a failover).
    fn write_node(&self) -> Option<(usize, bool)> {
        (0..self.nodes.len())
            .find(|&i| self.healthy(i))
            .map(|i| (i, i != 0))
    }
}

/// A running router; dropping it (or calling
/// [`RouterHandle::shutdown`]) stops the listener.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Reads answered by a node other than their ring owner, plus
    /// writes answered by a non-primary.
    pub fn failovers(&self) -> u32 {
        self.shared.failovers.load(Ordering::SeqCst)
    }

    /// Frames forwarded to a backend so far.
    pub fn forwarded(&self) -> u64 {
        self.shared.forwarded.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the router threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.prober.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the router: bind `opts.addr`, probe `opts.nodes`, forward.
pub fn route(opts: RouterOptions) -> io::Result<RouterHandle> {
    if opts.nodes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one backend node",
        ));
    }
    let listener = TcpListener::bind(&opts.addr)?;
    let local_addr = listener.local_addr()?;
    let mut ring: Vec<(u64, usize)> = Vec::with_capacity(opts.nodes.len() * VNODES as usize);
    for (idx, node) in opts.nodes.iter().enumerate() {
        let base = node.bytes().fold(0u64, |a, b| mix64(a ^ b as u64));
        for v in 0..VNODES {
            ring.push((mix64(base ^ mix64(v)), idx));
        }
    }
    ring.sort_unstable();
    let shared = Arc::new(RouterShared {
        nodes: opts
            .nodes
            .iter()
            .map(|addr| Backend {
                addr: addr.clone(),
                // Optimistic start; the first probe round corrects it.
                healthy: AtomicBool::new(true),
            })
            .collect(),
        ring,
        shutdown: AtomicBool::new(false),
        failovers: AtomicU32::new(0),
        forwarded: AtomicU64::new(0),
        deadline: opts.deadline,
    });
    let prober = {
        let shared = Arc::clone(&shared);
        let interval = opts.probe_interval;
        std::thread::spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                for node in &shared.nodes {
                    let up = HullClient::builder(node.addr.clone())
                        .deadline(shared.deadline)
                        .connect()
                        .and_then(|mut c| c.stats(None))
                        .is_ok();
                    node.healthy.store(up, Ordering::SeqCst);
                }
                std::thread::sleep(interval);
            }
        })
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let _ = serve_connection(&shared, stream);
                });
            }
        })
    };
    Ok(RouterHandle {
        shared,
        local_addr,
        accept: Some(accept),
        prober: Some(prober),
    })
}

/// The shard a request addresses, for ring placement.
fn shard_of(req: &Request) -> u16 {
    match req {
        Request::Insert { shard, .. }
        | Request::Contains { shard, .. }
        | Request::Visible { shard, .. }
        | Request::Extreme { shard, .. }
        | Request::ContainsScan { shard, .. }
        | Request::VisibleScan { shard, .. }
        | Request::ExtremeScan { shard, .. }
        | Request::Stats { shard }
        | Request::Snapshot { shard }
        | Request::Flush { shard }
        | Request::InsertBatch { shard, .. }
        | Request::Mutate { shard, .. }
        | Request::ReplSubscribe { shard, .. }
        | Request::ReplUnitFetch { shard, .. }
        | Request::ReplAck { shard, .. } => *shard,
        Request::Tagged { inner, .. } => shard_of(inner),
        Request::Hello { .. } | Request::Shutdown | Request::Metrics => 0,
    }
}

/// Whether the request mutates hull state (must reach the primary).
fn is_write(req: &Request) -> bool {
    match req {
        Request::Insert { .. }
        | Request::InsertBatch { .. }
        | Request::Mutate { .. }
        | Request::Flush { .. }
        | Request::Shutdown
        | Request::ReplSubscribe { .. }
        | Request::ReplUnitFetch { .. }
        | Request::ReplAck { .. } => true,
        Request::Tagged { inner, .. } => is_write(inner),
        _ => false,
    }
}

/// Whether a failover answering this request should be surfaced with
/// the `Degraded` wrapper. Administrative exchanges — the `Hello`
/// handshake, `Metrics`, `Shutdown` — are about the connection or the
/// process, not shard data; wrapping them would break clients that
/// (correctly) expect their bare reply shapes.
fn wrappable(req: &Request) -> bool {
    match req {
        Request::Hello { .. } | Request::Metrics | Request::Shutdown => false,
        Request::Tagged { inner, .. } => wrappable(inner),
        _ => true,
    }
}

/// Mark a failover reply `Degraded` (the in-band "not the node you
/// asked for" signal), preserving wrapper-order legality: `Degraded` is
/// the innermost status wrapper, so replies already carrying any status
/// (or an error) pass through untouched; `Tagged` is recursed into.
fn wrap_failover(resp: Response, generation: u32) -> Response {
    match resp {
        Response::Tagged { id, inner } => Response::Tagged {
            id,
            inner: Box::new(wrap_failover(*inner, generation)),
        },
        Response::Degraded { .. } | Response::Stale { .. } | Response::Error(_) => resp,
        inner => Response::Degraded {
            generation,
            inner: Box::new(inner),
        },
    }
}

/// One client connection: decode each frame, pick a backend, forward,
/// relay the reply. Backend connections are opened lazily per client
/// connection and cached by node index.
fn serve_connection(shared: &RouterShared, mut client: TcpStream) -> io::Result<()> {
    client.set_nodelay(true)?;
    let mut backends: HashMap<usize, HullClient> = HashMap::new();
    while let Some(payload) = read_frame(&mut client)? {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let reply = match Request::decode(&payload) {
            Ok(req) => forward(shared, &mut backends, &req),
            Err(e) => Response::Error(e.to_string()),
        };
        write_frame(&mut client, &reply.encode())?;
    }
    Ok(())
}

/// Route one decoded request to a backend and return the reply; backend
/// failure mid-request retries once on the next healthy node.
fn forward(
    shared: &RouterShared,
    backends: &mut HashMap<usize, HullClient>,
    req: &Request,
) -> Response {
    let attempt =
        |backends: &mut HashMap<usize, HullClient>, node: usize| -> io::Result<Response> {
            if let std::collections::hash_map::Entry::Vacant(slot) = backends.entry(node) {
                let c = HullClient::builder(shared.nodes[node].addr.clone())
                    .deadline(shared.deadline)
                    .connect()?;
                slot.insert(c);
            }
            let r = backends.get_mut(&node).expect("just inserted").raw(req);
            if r.is_err() {
                // Drop the cached connection; the prober will flip health.
                backends.remove(&node);
            }
            r
        };
    let pick = if is_write(req) {
        shared.write_node()
    } else {
        shared.read_node(shard_of(req))
    };
    let Some((node, mut failed_over)) = pick else {
        return Response::Error("no healthy backend node".to_string());
    };
    shared.forwarded.fetch_add(1, Ordering::SeqCst);
    let resp = match attempt(backends, node) {
        Ok(resp) => resp,
        Err(_) => {
            // The picked node just died under us: mark it down and try
            // the next healthy one immediately (don't wait for the
            // prober round).
            shared.nodes[node].healthy.store(false, Ordering::SeqCst);
            let next = if is_write(req) {
                shared.write_node()
            } else {
                shared.read_node(shard_of(req))
            };
            match next {
                Some((retry, _)) if retry != node => {
                    failed_over = true;
                    match attempt(backends, retry) {
                        Ok(resp) => resp,
                        Err(e) => Response::Error(format!("backend unreachable: {e}")),
                    }
                }
                _ => Response::Error("no healthy backend node".to_string()),
            }
        }
    };
    if failed_over {
        let generation = shared.failovers.fetch_add(1, Ordering::SeqCst) + 1;
        crate::metrics::service_metrics().repl_failovers.incr();
        if wrappable(req) {
            wrap_failover(resp, generation)
        } else {
            resp
        }
    } else {
        resp
    }
}
