//! A blocking client for the hull wire protocol — used by the `hull
//! query` CLI, the loopback tests, the chaos harness, and the load
//! generator.
//!
//! Hardening (matching the server's failure model):
//!
//! * [`HullClient::insert_retry`] absorbs `Overloaded` backpressure with
//!   **capped exponential backoff plus seeded jitter** under an overall
//!   deadline ([`RetryPolicy`]) — replayable from a single seed, and the
//!   jitter decorrelates a fleet of load-generator threads;
//! * a broken connection (server restart, failpoint-truncated frame)
//!   triggers one **reconnect-and-resume** per request: the client
//!   remembers the resolved address and transparently redials. A resend
//!   after a lost *response* can duplicate an insert; the hull is
//!   insensitive to duplicate coordinates, so the chaos harness asserts
//!   acked-⊆-served rather than exact multiset equality;
//! * `Degraded` replies are unwrapped to their inner answer and surfaced
//!   via [`HullClient::last_degraded`], so callers can observe recovery
//!   windows without every call site matching on the wrapper.

use crate::wire::{read_frame, write_frame, Request, Response, ALL_SHARDS};
use chull_geometry::rng::ChaCha8Rng;
use std::io::{self};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A decoded `Snapshot` reply.
#[derive(Debug, Clone)]
pub struct SnapshotReply {
    /// Publication epoch.
    pub epoch: u64,
    /// Dimension.
    pub dim: usize,
    /// Points, one `Vec` per point, in the shard's vertex-id order.
    pub points: Vec<Vec<i64>>,
    /// Facets as vertex-id tuples into `points`.
    pub facets: Vec<Vec<u32>>,
}

/// Backoff shape for [`HullClient::insert_retry`]: delay doubles from
/// `base` up to `cap`, each sleep jittered uniformly into its upper
/// half, until `deadline` elapses overall.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First backoff delay.
    pub base: Duration,
    /// Largest single delay.
    pub cap: Duration,
    /// Overall budget; past it the retry loop fails with `TimedOut`.
    pub deadline: Duration,
    /// Jitter seed — same seed, same jitter sequence (replayability).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_micros(100),
            cap: Duration::from_millis(50),
            deadline: Duration::from_secs(30),
            seed: 0x07E5_7BAC_C0FF,
        }
    }
}

/// One connection to a hull server; methods are synchronous
/// request/response calls. Not thread-safe — use one client per thread
/// (connections are cheap).
pub struct HullClient {
    stream: TcpStream,
    /// Resolved peer address, kept for reconnect-and-resume.
    addr: Option<SocketAddr>,
    /// Generation from the most recent reply iff it was `Degraded`.
    last_degraded: Option<u32>,
    /// Reconnects performed so far (observability for the chaos tests).
    reconnects: u64,
    /// Calls made, mixed into the per-call jitter stream.
    calls: u64,
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}

fn server_error(msg: String) -> io::Error {
    io::Error::other(format!("server error: {msg}"))
}

/// Connection failures worth one transparent redial (the server — or a
/// failpoint — dropped the connection, not the request semantics).
fn reconnectable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
    )
}

impl HullClient {
    /// Connect (with `TCP_NODELAY`, request/response is latency-bound).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<HullClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr().ok();
        Ok(HullClient {
            stream,
            addr,
            last_degraded: None,
            reconnects: 0,
            calls: 0,
        })
    }

    /// Generation of the most recent reply if it was `Degraded` (the
    /// shard's worker was being recovered and the answer came from the
    /// last good snapshot); `None` if the last reply was healthy.
    pub fn last_degraded(&self) -> Option<u32> {
        self.last_degraded
    }

    /// Reconnect-and-resume redials performed so far.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn exchange(&mut self, req: &Request) -> io::Result<Response> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")
        })?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// Send one request and read its reply (any variant, `Degraded`
    /// included). A dropped connection is redialed once and the request
    /// resent — note a resend after a lost response can double-apply an
    /// `Insert` (harmless to the hull; see module docs).
    pub fn raw(&mut self, req: &Request) -> io::Result<Response> {
        self.calls += 1;
        match self.exchange(req) {
            Ok(resp) => Ok(resp),
            Err(e) if reconnectable(e.kind()) => {
                let addr = match self.addr {
                    Some(a) => a,
                    None => return Err(e),
                };
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                self.stream = stream;
                self.reconnects += 1;
                crate::metrics::service_metrics().client_reconnects.incr();
                self.exchange(req)
            }
            Err(e) => Err(e),
        }
    }

    /// [`raw`](HullClient::raw), then unwrap a `Degraded` wrapper into
    /// its inner answer, recording the generation.
    fn ask(&mut self, req: &Request) -> io::Result<Response> {
        match self.raw(req)? {
            Response::Degraded { generation, inner } => {
                self.last_degraded = Some(generation);
                Ok(*inner)
            }
            resp => {
                self.last_degraded = None;
                Ok(resp)
            }
        }
    }

    /// Queue one point; `false` means the shard is overloaded (retry).
    pub fn insert(&mut self, shard: u16, point: &[i64]) -> io::Result<bool> {
        match self.ask(&Request::Insert {
            shard,
            point: point.to_vec(),
        })? {
            Response::Inserted => Ok(true),
            Response::Overloaded => Ok(false),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Insert, absorbing `Overloaded` pushback with capped exponential
    /// backoff and seeded jitter until `policy.deadline` elapses
    /// (`TimedOut` past it). Returns the number of rejections absorbed.
    pub fn insert_retry(
        &mut self,
        shard: u16,
        point: &[i64],
        policy: &RetryPolicy,
    ) -> io::Result<u64> {
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed ^ self.calls);
        let mut delay = policy.base.max(Duration::from_micros(1));
        let mut rejections = 0u64;
        while !self.insert(shard, point)? {
            rejections += 1;
            if start.elapsed() >= policy.deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("insert still overloaded after {rejections} retries"),
                ));
            }
            // Jitter into the upper half of the window: full delays stay
            // bounded, but concurrent clients desynchronize instead of
            // stampeding the freshly drained queue together.
            let us = delay.as_micros() as u64;
            let jittered = rng.gen_range(us / 2 + 1..us + 1);
            std::thread::sleep(Duration::from_micros(jittered));
            delay = (delay * 2).min(policy.cap);
        }
        if rejections > 0 {
            crate::metrics::service_metrics()
                .client_rejections
                .add(rejections);
        }
        Ok(rejections)
    }

    /// Membership query; `None` while the shard is bootstrapping.
    pub fn contains(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<bool>> {
        match self.ask(&Request::Contains {
            shard,
            point: point.to_vec(),
        })? {
            Response::Bool(b) => Ok(Some(b)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Number of facets visible from the point; `None` while bootstrapping.
    pub fn visible(&mut self, shard: u16, point: &[i64]) -> io::Result<Option<u32>> {
        match self.ask(&Request::Visible {
            shard,
            point: point.to_vec(),
        })? {
            Response::VisibleCount(n) => Ok(Some(n)),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Extreme vertex in a direction; `None` while bootstrapping.
    pub fn extreme(&mut self, shard: u16, dir: &[i64]) -> io::Result<Option<(u32, Vec<i64>)>> {
        match self.ask(&Request::Extreme {
            shard,
            direction: dir.to_vec(),
        })? {
            Response::Extreme { vertex, coords } => Ok(Some((vertex, coords))),
            Response::NotReady => Ok(None),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Service counters as JSON (`None` aggregates all shards).
    pub fn stats(&mut self, shard: Option<u16>) -> io::Result<String> {
        match self.ask(&Request::Stats {
            shard: shard.unwrap_or(ALL_SHARDS),
        })? {
            Response::Stats(json) => Ok(json),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// The shard's current points and hull facets.
    pub fn snapshot(&mut self, shard: u16) -> io::Result<SnapshotReply> {
        match self.ask(&Request::Snapshot { shard })? {
            Response::Snapshot {
                epoch,
                dim,
                points,
                facets,
            } => Ok(SnapshotReply {
                epoch,
                dim,
                points: points.chunks(dim).map(|c| c.to_vec()).collect(),
                facets: facets.chunks(dim).map(|c| c.to_vec()).collect(),
            }),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Barrier: every insert this client enqueued before the call is
    /// applied once this returns. Returns the publication epoch.
    pub fn flush(&mut self, shard: u16) -> io::Result<u64> {
        match self.ask(&Request::Flush { shard })? {
            Response::Flushed { epoch } => Ok(epoch),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// The server's telemetry registry as Prometheus text exposition —
    /// the same text its HTTP `/metrics` listener serves, fetched in-band
    /// over the wire protocol.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.ask(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.ask(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error(m) => Err(server_error(m)),
            other => Err(unexpected(other)),
        }
    }
}
