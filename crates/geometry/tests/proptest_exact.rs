//! Property tests for the exact-arithmetic substrate: the big integer, the
//! fraction-free determinants, the expansion arithmetic, and the agreement
//! of all predicate implementations.
//!
//! Each property is exercised over many deterministic pseudo-random cases
//! drawn from the in-repo [`chull_geometry::rng::ChaCha8Rng`] (the external
//! `proptest` crate is unavailable in this build environment).

use chull_geometry::exact::expansion::{det_expansion, Expansion};
use chull_geometry::exact::{det_i64, det_sign_i64, rank_i64, BigInt, Sign};
use chull_geometry::predicates::{self, float};
use chull_geometry::rng::ChaCha8Rng;
use chull_geometry::{Point2f, Point2i, Point3f, Point3i};

const CASES: u64 = 256;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

fn rng(salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0xbead_cafe ^ salt)
}

#[test]
fn bigint_add_matches_i128() {
    let mut r = rng(1);
    for _ in 0..CASES {
        let a = r.next_u64() as i64;
        let b = r.next_u64() as i64;
        let exact = a as i128 + b as i128;
        assert_eq!(bi(a as i128).add(&bi(b as i128)), bi(exact));
    }
}

#[test]
fn bigint_mul_matches_i128() {
    let mut r = rng(2);
    for _ in 0..CASES {
        let a = r.next_u64() as i64;
        let b = r.next_u64() as i64;
        let exact = a as i128 * b as i128;
        assert_eq!(bi(a as i128).mul(&bi(b as i128)), bi(exact));
    }
}

fn any_i128(r: &mut ChaCha8Rng) -> i128 {
    // Mix widths so small and multi-limb magnitudes both occur.
    let v = ((r.next_u64() as i128) << 64) | r.next_u64() as i128;
    match r.next_u32() % 4 {
        0 => v,
        1 => v >> 64,
        2 => v >> 96,
        _ => v >> 120,
    }
}

#[test]
fn bigint_divmod_matches_i128() {
    let mut r = rng(3);
    for _ in 0..CASES {
        let a = any_i128(&mut r);
        let b = any_i128(&mut r);
        if b == 0 {
            continue;
        }
        let (q, rem) = bi(a).divmod(&bi(b));
        assert_eq!(q, bi(a / b));
        assert_eq!(rem, bi(a % b));
    }
}

#[test]
fn bigint_mul_div_roundtrip() {
    let mut r = rng(4);
    for _ in 0..CASES {
        let a = any_i128(&mut r);
        let b = any_i128(&mut r);
        if b == 0 {
            continue;
        }
        // (a * b) / b == a even when a*b needs multiple limbs.
        let prod = bi(a).mul(&bi(b));
        assert_eq!(prod.div_exact(&bi(b)), bi(a));
    }
}

#[test]
fn bigint_ordering_matches_i128() {
    let mut r = rng(5);
    for _ in 0..CASES {
        let a = any_i128(&mut r);
        let b = any_i128(&mut r);
        assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
    }
}

#[test]
fn bigint_display_matches_i128() {
    let mut r = rng(6);
    for _ in 0..CASES {
        let a = any_i128(&mut r);
        assert_eq!(bi(a).to_string(), a.to_string());
    }
}

#[test]
fn det3_sign_matches_cofactor() {
    let mut r = rng(7);
    for _ in 0..CASES {
        let m: Vec<Vec<i64>> = (0..3)
            .map(|_| {
                (0..3)
                    .map(|_| r.gen_range(-1_000_000i64..1_000_000))
                    .collect()
            })
            .collect();
        let a = &m;
        let cof: i128 = (a[0][0] as i128)
            * ((a[1][1] as i128) * (a[2][2] as i128) - (a[1][2] as i128) * (a[2][1] as i128))
            - (a[0][1] as i128)
                * ((a[1][0] as i128) * (a[2][2] as i128) - (a[1][2] as i128) * (a[2][0] as i128))
            + (a[0][2] as i128)
                * ((a[1][0] as i128) * (a[2][1] as i128) - (a[1][1] as i128) * (a[2][0] as i128));
        assert_eq!(det_sign_i64(&m).as_i32(), cof.signum() as i32);
        assert_eq!(det_i64(&m), BigInt::from(cof));
    }
}

#[test]
fn det_antisymmetry_and_transpose() {
    let mut r = rng(8);
    for _ in 0..CASES {
        let m: Vec<Vec<i64>> = (0..4)
            .map(|_| (0..4).map(|_| r.gen_range(-10_000i64..10_000)).collect())
            .collect();
        // Swapping two rows flips the sign.
        let mut swapped = m.clone();
        swapped.swap(0, 2);
        assert_eq!(det_sign_i64(&swapped), det_sign_i64(&m).negate());
        // Transpose preserves the determinant.
        let t: Vec<Vec<i64>> = (0..4).map(|j| (0..4).map(|i| m[i][j]).collect()).collect();
        assert_eq!(det_sign_i64(&t), det_sign_i64(&m));
    }
}

#[test]
fn det_duplicate_row_is_zero() {
    let mut r = rng(9);
    for _ in 0..CASES {
        let m: Vec<Vec<i64>> = (0..3)
            .map(|_| (0..4).map(|_| r.gen_range(-10_000i64..10_000)).collect())
            .collect();
        let m4: Vec<Vec<i64>> = vec![m[0].clone(), m[1].clone(), m[2].clone(), m[1].clone()];
        assert_eq!(det_sign_i64(&m4), Sign::Zero);
    }
}

#[test]
fn rank_bounds() {
    let mut r = rng(10);
    for _ in 0..CASES {
        let m: Vec<Vec<i64>> = (0..3)
            .map(|_| (0..4).map(|_| r.gen_range(-100i64..100)).collect())
            .collect();
        let rank = rank_i64(&m);
        assert!(rank <= 3);
        // Appending a copy of an existing row never raises the rank.
        let mut m2 = m.clone();
        m2.push(m[0].clone());
        assert_eq!(rank_i64(&m2), rank);
        // Appending a scaled sum of rows never raises the rank.
        let combo: Vec<i64> = (0..4)
            .map(|j| 2 * m[0][j] - 3 * m[1][j] + m[2][j])
            .collect();
        let mut m3 = m.clone();
        m3.push(combo);
        assert_eq!(rank_i64(&m3), rank);
    }
}

#[test]
fn expansion_det_matches_integer_det() {
    let mut r = rng(11);
    for _ in 0..CASES {
        // Integer-valued f64 matrices: expansion arithmetic must agree with
        // the exact integer kernel.
        let mi: Vec<Vec<i64>> = (0..3)
            .map(|_| {
                (0..3)
                    .map(|_| r.gen_range(-1_000_000i64..1_000_000))
                    .collect()
            })
            .collect();
        let mf: Vec<Vec<f64>> = mi
            .iter()
            .map(|row| row.iter().map(|&v| v as f64).collect())
            .collect();
        assert_eq!(det_expansion(&mf).sign(), det_sign_i64(&mi).as_i32());
    }
}

#[test]
fn expansion_sum_identity() {
    let mut r = rng(12);
    for _ in 0..CASES {
        // Sum all values through expansions in two different orders: the
        // exact results must agree (associativity holds exactly).
        let len = r.gen_range(1usize..12);
        let vals: Vec<f64> = (0..len).map(|_| r.gen_range(-1e12f64..1e12)).collect();
        let fwd = vals.iter().fold(Expansion::zero(), |acc, &v| {
            acc.add(&Expansion::from_f64(v))
        });
        let rev = vals.iter().rev().fold(Expansion::zero(), |acc, &v| {
            acc.add(&Expansion::from_f64(v))
        });
        assert_eq!(fwd.sub(&rev).sign(), 0);
    }
}

#[test]
fn orient2d_int_float_agree() {
    let mut r = rng(13);
    for _ in 0..CASES {
        let mut c = || r.gen_range(-1_000_000i64..1_000_000);
        let (ax, ay, bx, by, cx, cy) = (c(), c(), c(), c(), c(), c());
        let int = predicates::orient2d(
            Point2i::new(ax, ay),
            Point2i::new(bx, by),
            Point2i::new(cx, cy),
        );
        let flt = float::orient2d(
            Point2f::new(ax as f64, ay as f64),
            Point2f::new(bx as f64, by as f64),
            Point2f::new(cx as f64, cy as f64),
        );
        assert_eq!(int.as_i32(), flt);
    }
}

#[test]
fn orient3d_int_float_agree() {
    let mut r = rng(14);
    for _ in 0..CASES {
        let coords: Vec<i64> = (0..12).map(|_| r.gen_range(-100_000i64..100_000)).collect();
        let p = |i: usize| Point3i::new(coords[3 * i], coords[3 * i + 1], coords[3 * i + 2]);
        let f = |i: usize| {
            Point3f::new(
                coords[3 * i] as f64,
                coords[3 * i + 1] as f64,
                coords[3 * i + 2] as f64,
            )
        };
        let int = predicates::orient3d(p(0), p(1), p(2), p(3));
        let flt = float::orient3d(f(0), f(1), f(2), f(3));
        assert_eq!(int.as_i32(), flt);
    }
}

#[test]
fn incircle_int_float_agree() {
    let mut r = rng(15);
    for _ in 0..CASES {
        let coords: Vec<i64> = (0..8).map(|_| r.gen_range(-30_000i64..30_000)).collect();
        let p = |i: usize| Point2i::new(coords[2 * i], coords[2 * i + 1]);
        let f = |i: usize| Point2f::new(coords[2 * i] as f64, coords[2 * i + 1] as f64);
        let int = predicates::incircle(p(0), p(1), p(2), p(3));
        let flt = float::incircle(f(0), f(1), f(2), f(3));
        assert_eq!(int.as_i32(), flt);
    }
}

#[test]
fn orient2d_permutation_parity() {
    let mut r = rng(16);
    for _ in 0..CASES {
        let mut c = || r.gen_range(-1_000i64..1_000);
        let (a, b, cc) = (
            Point2i::new(c(), c()),
            Point2i::new(c(), c()),
            Point2i::new(c(), c()),
        );
        let s = predicates::orient2d(a, b, cc);
        assert_eq!(predicates::orient2d(b, cc, a), s);
        assert_eq!(predicates::orient2d(cc, a, b), s);
        assert_eq!(predicates::orient2d(b, a, cc), s.negate());
        assert_eq!(predicates::orient2d(a, cc, b), s.negate());
    }
}

#[test]
fn orient2d_translation_invariant() {
    let mut r = rng(17);
    for _ in 0..CASES {
        let mut c = || r.gen_range(-100_000i64..100_000);
        let (ax, ay, bx, by, cx, cy, tx, ty) = (c(), c(), c(), c(), c(), c(), c(), c());
        let t = |x: i64, y: i64| Point2i::new(x + tx, y + ty);
        assert_eq!(
            predicates::orient2d(
                Point2i::new(ax, ay),
                Point2i::new(bx, by),
                Point2i::new(cx, cy)
            ),
            predicates::orient2d(t(ax, ay), t(bx, by), t(cx, cy))
        );
    }
}

#[test]
fn orientd_agrees_with_specialized() {
    let mut r = rng(18);
    for _ in 0..CASES {
        // The generic homogeneous path must match the 3D fast path.
        let rows: Vec<Vec<i64>> = (0..4)
            .map(|_| (0..3).map(|_| r.gen_range(-50_000i64..50_000)).collect())
            .collect();
        let refs: Vec<&[i64]> = rows.iter().map(|row| row.as_slice()).collect();
        let generic = {
            // Bypass the dispatch by building the homogeneous matrix.
            let m: Vec<Vec<i64>> = rows
                .iter()
                .map(|row| {
                    let mut h = row.clone();
                    h.push(1);
                    h
                })
                .collect();
            det_sign_i64(&m)
        };
        assert_eq!(predicates::orientd(3, &refs), generic);
    }
}

#[test]
fn bigint_huge_products_cross_checked() {
    // (a*b)*(c*d) computed two ways over multi-limb values.
    let a = bi(i128::MAX - 12345);
    let b = bi(i128::MIN + 999);
    let c = bi(987654321987654321);
    let d = bi(-123456789123456789);
    let left = a.mul(&b).mul(&c.mul(&d));
    let right = a.mul(&c).mul(&b.mul(&d));
    assert_eq!(left, right);
    assert_eq!(left.sign(), Sign::Positive); // neg * neg among the four
}
