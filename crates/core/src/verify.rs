//! Exact hull validation.
//!
//! Used by every integration test and by the experiment harness after each
//! run: checks the structural invariants of a closed convex polytope
//! boundary and the geometric invariant that no input point lies strictly
//! outside any facet.

use crate::facet::NO_VERT;
use crate::output::HullOutput;
use chull_geometry::predicates::orientd;
use chull_geometry::{PointSet, Sign};
use std::collections::HashMap;

/// Validate `hull` against the full input `pts`.
///
/// Checks:
/// 1. every facet has `d` distinct vertex ids in range;
/// 2. every ridge is shared by exactly two facets (closed pseudo-manifold);
/// 3. for every facet, all input points lie in one closed halfspace of its
///    hyperplane (exact arithmetic);
/// 4. in 2D, facet count equals vertex count; in 3D, Euler's relation
///    `V - E + F = 2` holds for the triangulated boundary.
pub fn verify_hull(pts: &PointSet, hull: &HullOutput) -> Result<(), String> {
    let dim = hull.dim;
    if dim != pts.dim() {
        return Err(format!(
            "dimension mismatch: hull {dim}, points {}",
            pts.dim()
        ));
    }
    if hull.facets.is_empty() {
        return Err("hull has no facets".to_string());
    }

    // (1) well-formed facets.
    for f in &hull.facets {
        for i in 0..dim {
            if f[i] == NO_VERT || (f[i] as usize) >= pts.len() {
                return Err(format!("facet {f:?} has out-of-range vertex"));
            }
            if i > 0 && f[i - 1] >= f[i] {
                return Err(format!("facet {f:?} vertices not sorted/distinct"));
            }
        }
    }

    // (2) ridge incidence.
    let mut ridge_count: HashMap<Vec<u32>, usize> = HashMap::new();
    for f in &hull.facets {
        for omit in 0..dim {
            let r: Vec<u32> = (0..dim).filter(|&i| i != omit).map(|i| f[i]).collect();
            *ridge_count.entry(r).or_insert(0) += 1;
        }
    }
    for (r, c) in &ridge_count {
        if *c != 2 {
            return Err(format!("ridge {r:?} incident to {c} facets, expected 2"));
        }
    }

    // (3) one-sidedness of every facet, exactly.
    for f in &hull.facets {
        let rows: Vec<&[i64]> = (0..dim).map(|i| pts.pt(f[i])).collect();
        let mut seen: Option<Sign> = None;
        for q in 0..pts.len() {
            let qi = q as u32;
            if f[..dim].contains(&qi) {
                continue;
            }
            let mut all_rows = rows.clone();
            all_rows.push(pts.point(q));
            let s = orientd(dim, &all_rows);
            match (seen, s) {
                (_, Sign::Zero) => {}
                (None, s) => seen = Some(s),
                (Some(prev), s) if prev != s => {
                    return Err(format!(
                        "facet {:?} has points on both sides (point {q})",
                        &f[..dim]
                    ));
                }
                _ => {}
            }
        }
    }

    // (4) combinatorial counts.
    let v = hull.vertices().len();
    let fcount = hull.facets.len();
    let e = ridge_count.len();
    match dim {
        2 if fcount != v => {
            return Err(format!("2D hull: {fcount} edges but {v} vertices"));
        }
        3 => {
            let euler = v as i64 - e as i64 + fcount as i64;
            if euler != 2 {
                return Err(format!("3D Euler check failed: V-E+F = {euler} != 2"));
            }
        }
        _ => {}
    }
    Ok(())
}

/// Check that every non-vertex input point is inside or on the hull
/// boundary: for each point, no facet sees it strictly. Quadratic; used on
/// moderate sizes. Facet orientation is inferred from one-sidedness, so
/// this is implied by [`verify_hull`] (3); kept as an independent
/// double-check with a different code path.
pub fn verify_containment(pts: &PointSet, hull: &HullOutput) -> Result<(), String> {
    let dim = hull.dim;
    for f in &hull.facets {
        let rows: Vec<&[i64]> = (0..dim).map(|i| pts.pt(f[i])).collect();
        // Determine the inside sign from the majority of points.
        let mut pos = 0usize;
        let mut neg = 0usize;
        for q in 0..pts.len() {
            if f[..dim].contains(&(q as u32)) {
                continue;
            }
            let mut all_rows = rows.clone();
            all_rows.push(pts.point(q));
            match orientd(dim, &all_rows) {
                Sign::Positive => pos += 1,
                Sign::Negative => neg += 1,
                Sign::Zero => {}
            }
        }
        if pos > 0 && neg > 0 {
            return Err(format!("facet {:?} separates the input", &f[..dim]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facet::facet_verts;
    use crate::seq::incremental_hull_run;

    #[test]
    fn accepts_valid_square() {
        let pts = PointSet::from_rows(
            2,
            &[
                vec![0, 0],
                vec![10, 0],
                vec![0, 10],
                vec![10, 10],
                vec![5, 5],
            ],
        );
        let run = incremental_hull_run(&pts);
        verify_hull(&pts, &run.output).unwrap();
        verify_containment(&pts, &run.output).unwrap();
    }

    #[test]
    fn rejects_missing_facet() {
        let pts = PointSet::from_rows(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        let bad = HullOutput {
            dim: 2,
            facets: vec![facet_verts(&[0, 1]), facet_verts(&[1, 2])],
        };
        assert!(verify_hull(&pts, &bad).is_err());
    }

    #[test]
    fn rejects_malformed_facets() {
        let pts = PointSet::from_rows(2, &[vec![0, 0], vec![10, 0], vec![0, 10]]);
        // Out-of-range vertex id.
        let bad = HullOutput {
            dim: 2,
            facets: vec![
                facet_verts(&[0, 1]),
                facet_verts(&[1, 2]),
                [
                    0,
                    7,
                    u32::MAX,
                    u32::MAX,
                    u32::MAX,
                    u32::MAX,
                    u32::MAX,
                    u32::MAX,
                ],
            ],
        };
        let err = verify_hull(&pts, &bad).unwrap_err();
        assert!(err.contains("out-of-range"), "{err}");
        // Unsorted/duplicate vertices.
        let bad = HullOutput {
            dim: 2,
            facets: vec![[
                1,
                1,
                u32::MAX,
                u32::MAX,
                u32::MAX,
                u32::MAX,
                u32::MAX,
                u32::MAX,
            ]],
        };
        let err = verify_hull(&pts, &bad).unwrap_err();
        assert!(err.contains("not sorted"), "{err}");
        // Empty facet list.
        let bad = HullOutput {
            dim: 2,
            facets: vec![],
        };
        assert!(verify_hull(&pts, &bad).is_err());
    }

    #[test]
    fn rejects_non_hull_edge() {
        let pts = PointSet::from_rows(2, &[vec![0, 0], vec![10, 0], vec![0, 10], vec![10, 10]]);
        // The diagonal (0, 3) is not a hull edge: points on both sides.
        let bad = HullOutput {
            dim: 2,
            facets: vec![
                facet_verts(&[0, 1]),
                facet_verts(&[1, 3]),
                facet_verts(&[0, 2]),
                facet_verts(&[2, 3]),
                facet_verts(&[0, 3]),
            ],
        };
        assert!(verify_hull(&pts, &bad).is_err());
    }
}
