//! The sequential randomized incremental convex hull — Algorithm 2 of the
//! paper — in any dimension `2 <= d <= MAX_DIM`, with instrumentation.
//!
//! Points are inserted in index order (callers randomize via
//! [`crate::context::prepare_points`]). The run additionally computes the
//! **configuration dependence graph depth** `D(G(S))` on the fly: every
//! created facet `t = r ∪ {v_i}` is supported by the two facets `t1, t2`
//! sharing the boundary ridge `r` (Theorem 5.1 / Fact 5.2), so
//! `depth(t) = 1 + max(depth(t1), depth(t2))` and the maximum over all
//! facets is exactly the Definition 4.1 depth. This is the scalable
//! measurement path behind experiment E1 (validated against the brute-force
//! oracle in `chull-confspace` on small inputs).

use crate::context::{initial_simplex, HullContext};
use crate::facet::{facet_verts, join_ridge, ridge_omitting, Facet, FacetVerts, RidgeKey, NO_VERT};
use crate::output::HullOutput;
use crate::stats::HullStats;
use chull_concurrent::fast_hash::FastHashMap;
use chull_geometry::PointSet;

/// Sentinel facet id.
const NO_FACET: u32 = u32::MAX;

/// Sentinel parent id for seed facets (no support set).
pub const NO_PARENT: u32 = u32::MAX;

/// Full record of a sequential run.
#[derive(Debug, Clone)]
pub struct SeqRun {
    /// The final hull.
    pub output: HullOutput,
    /// Instrumentation counters.
    pub stats: HullStats,
    /// Every facet ever created, in creation order (for the "exactly the
    /// same facets as the parallel algorithm" comparison, E3).
    pub created: Vec<FacetVerts>,
    /// Dependence-graph depth of each created facet (parallel to
    /// `created`).
    pub depths: Vec<u32>,
    /// The full facet records (vertices, orientation, conflict lists), in
    /// creation order — the raw material of the history graph.
    pub facets: Vec<Facet>,
    /// Liveness at the end of the run (alive = on the final hull).
    pub alive: Vec<bool>,
    /// Support set of each facet as `[t1, t2]` facet ids (the two facets
    /// sharing the boundary ridge, Fact 5.2); `[NO_PARENT; 2]` for the seed
    /// simplex facets. These edges *are* the configuration dependence graph.
    pub parents: Vec<[u32; 2]>,
}

/// Compute the hull of `pts`, inserting points in index order.
/// Convenience wrapper around [`incremental_hull_run`].
pub fn incremental_hull(pts: &PointSet) -> (HullOutput, HullStats) {
    let run = incremental_hull_run(pts);
    (run.output, run.stats)
}

/// Merge two ascending conflict lists, dropping duplicates.
#[cfg(test)]
pub(crate) fn merge_conflicts(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    merge_conflicts_into(a, b, &mut out);
    out
}

/// [`merge_conflicts`] into a caller-owned scratch buffer (cleared first),
/// so the hot path reuses one allocation across all created facets.
pub(crate) fn merge_conflicts_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Adjacency bookkeeping: each current-hull ridge maps to its (up to) two
/// incident alive facets. Keyed with the deterministic fast hasher — ridge
/// keys are tiny inline arrays, and this map is touched `d` times per
/// facet ever created.
struct Adjacency {
    map: FastHashMap<RidgeKey, [u32; 2]>,
}

impl Adjacency {
    fn new() -> Adjacency {
        Adjacency {
            map: FastHashMap::default(),
        }
    }

    fn add(&mut self, r: RidgeKey, facet: u32) {
        let entry = self.map.entry(r).or_insert([NO_FACET, NO_FACET]);
        if entry[0] == NO_FACET {
            entry[0] = facet;
        } else {
            debug_assert_eq!(entry[1], NO_FACET, "ridge with three incident facets");
            entry[1] = facet;
        }
    }

    fn remove(&mut self, r: &RidgeKey, facet: u32) {
        let entry = self.map.get_mut(r).expect("removing from unknown ridge");
        if entry[0] == facet {
            entry[0] = entry[1];
        } else {
            debug_assert_eq!(entry[1], facet);
        }
        entry[1] = NO_FACET;
        if entry[0] == NO_FACET {
            self.map.remove(r);
        }
    }

    fn neighbor(&self, r: &RidgeKey, facet: u32) -> u32 {
        match self.map.get(r) {
            None => NO_FACET,
            Some(&[a, b]) => {
                if a == facet {
                    b
                } else {
                    a
                }
            }
        }
    }
}

/// Run Algorithm 2 with full instrumentation.
///
/// Requires the first `d + 1` points to be affinely independent (use
/// [`prepare_points`](crate::context::prepare_points)); the remaining input
/// may contain interior degeneracies, but hull-boundary degeneracies
/// (points exactly on a facet hyperplane from outside) are not supported —
/// see Section 6 of the paper and `crate::degenerate`.
pub fn incremental_hull_run(pts: &PointSet) -> SeqRun {
    let dim = pts.dim();
    let n = pts.len();
    let simplex = initial_simplex(pts);
    assert_eq!(
        simplex,
        (0..=(dim as u32)).collect::<Vec<u32>>(),
        "first d + 1 points must be affinely independent (call prepare_points)"
    );
    let ctx = HullContext::new(pts, &simplex);

    let mut stats = HullStats {
        n,
        dim,
        ..Default::default()
    };
    let mut facets: Vec<Facet> = Vec::new();
    let mut alive: Vec<bool> = Vec::new();
    let mut depth: Vec<u32> = Vec::new();
    // Naive (support-free) dependence depth per facet: a new facet depends
    // on every facet its pivot touches (removed set R plus the invisible
    // neighbors) — the scheduling the paper improves upon (E12a).
    let mut naive_depth: Vec<u32> = Vec::new();
    // Support pair of each facet (the dependence-graph parents).
    let mut parents: Vec<[u32; 2]> = Vec::new();
    let mut created: Vec<FacetVerts> = Vec::new();
    let mut adj = Adjacency::new();
    // C^{-1}: for each point, the facets created with that point in their
    // conflict list (entries may point at dead facets; filtered on use).
    let mut point_conflicts: Vec<Vec<u32>> = vec![Vec::new(); n];

    let all_later: Vec<u32> = ((dim as u32 + 1)..n as u32).collect();
    let register = |facet: Facet,
                    d: u32,
                    facets: &mut Vec<Facet>,
                    alive: &mut Vec<bool>,
                    depth: &mut Vec<u32>,
                    created: &mut Vec<FacetVerts>,
                    adj: &mut Adjacency,
                    point_conflicts: &mut Vec<Vec<u32>>,
                    stats: &mut HullStats| {
        let id = facets.len() as u32;
        for omit in 0..dim {
            adj.add(ridge_omitting(&facet.verts, dim, omit), id);
        }
        for &q in &facet.conflicts {
            point_conflicts[q as usize].push(id);
        }
        created.push(facet.verts);
        facets.push(facet);
        alive.push(true);
        depth.push(d);
        stats.facets_created += 1;
        if d as u64 > stats.dep_depth {
            stats.dep_depth = d as u64;
        }
        id
    };

    // Initial hull: all d+1 facets of the seed simplex.
    for omit in 0..=dim {
        let verts: Vec<u32> = simplex
            .iter()
            .copied()
            .filter(|&v| v != omit as u32)
            .collect();
        let (facet, counts) = ctx.make_facet(facet_verts(&verts), &all_later, NO_VERT);
        stats.absorb_kernel(&counts);
        register(
            facet,
            0,
            &mut facets,
            &mut alive,
            &mut depth,
            &mut created,
            &mut adj,
            &mut point_conflicts,
            &mut stats,
        );
        naive_depth.push(0);
        parents.push([NO_PARENT, NO_PARENT]);
    }

    // Insert the remaining points in index order. Membership of a facet in
    // the visible set R is tracked with a stamp array (amortized O(1) per
    // insertion, vs. clearing a bitmap of all facets every round).
    let mut in_r_stamp: Vec<u32> = Vec::new();
    let mut stamp: u32 = 0;
    // Scratch buffer reused by every conflict-list merge (allocation
    // hygiene: no fresh Vec per created facet).
    let mut candidates: Vec<u32> = Vec::new();
    for v in (dim as u32 + 1)..n as u32 {
        // R = alive facets visible from v (Line 5 of Algorithm 2).
        let r_set: Vec<u32> = point_conflicts[v as usize]
            .iter()
            .copied()
            .filter(|&f| alive[f as usize])
            .collect();
        if r_set.is_empty() {
            continue; // v is inside the current hull
        }
        stamp += 1;
        if in_r_stamp.len() < facets.len() {
            in_r_stamp.resize(facets.len(), 0);
        }
        for &f in &r_set {
            in_r_stamp[f as usize] = stamp;
        }

        // Boundary ridges of R: incident to one visible and one invisible
        // facet (Line 6); the pair (t1 visible, t2 invisible) is the
        // support set of the new facet (Fact 5.2).
        let mut boundary: Vec<(RidgeKey, u32, u32)> = Vec::new();
        for &t1 in &r_set {
            let verts = facets[t1 as usize].verts;
            for omit in 0..dim {
                let r = ridge_omitting(&verts, dim, omit);
                let t2 = adj.neighbor(&r, t1);
                debug_assert_ne!(t2, NO_FACET, "hull not closed at ridge");
                if in_r_stamp[t2 as usize] != stamp {
                    boundary.push((r, t1, t2));
                }
            }
        }

        // Naive dependence level of this insertion: one past every facet
        // the pivot touches (removed or adjacent), as a synchronous
        // point-at-a-time scheduler would have to wait for.
        let naive_level = 1 + r_set
            .iter()
            .map(|&t| naive_depth[t as usize])
            .chain(boundary.iter().map(|&(_, _, t2)| naive_depth[t2 as usize]))
            .max()
            .unwrap_or(0);
        if naive_level as u64 > stats.naive_dep_depth {
            stats.naive_dep_depth = naive_level as u64;
        }

        // Delete R (Line 11, done first so adjacency stays <= 2 per ridge).
        for &t in &r_set {
            alive[t as usize] = false;
            let verts = facets[t as usize].verts;
            for omit in 0..dim {
                adj.remove(&ridge_omitting(&verts, dim, omit), t);
            }
        }

        // Create one new facet per boundary ridge (Lines 7-10).
        let mut insert_depth = 0u32;
        for (r, t1, t2) in boundary {
            let verts = join_ridge(&r, dim, v);
            merge_conflicts_into(
                &facets[t1 as usize].conflicts,
                &facets[t2 as usize].conflicts,
                &mut candidates,
            );
            let (facet, counts) = ctx.make_facet(verts, &candidates, v);
            stats.absorb_kernel(&counts);
            let d = 1 + depth[t1 as usize].max(depth[t2 as usize]);
            insert_depth = insert_depth.max(d);
            register(
                facet,
                d,
                &mut facets,
                &mut alive,
                &mut depth,
                &mut created,
                &mut adj,
                &mut point_conflicts,
                &mut stats,
            );
            naive_depth.push(naive_level);
            parents.push([t1, t2]);
        }
        if chull_obs::armed() {
            crate::telemetry::engine_metrics()
                .seq_insert_depth
                .record(insert_depth as u64);
        }
    }

    let hull_facets: Vec<FacetVerts> = facets
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(f, _)| f.verts)
        .collect();
    stats.hull_facets = hull_facets.len() as u64;
    SeqRun {
        output: HullOutput {
            dim,
            facets: hull_facets,
        },
        stats,
        depths: depth,
        created,
        facets,
        alive,
        parents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::prepare_points;
    use chull_geometry::generators;
    use chull_geometry::Point2i;

    fn hull_2d(points: &[Point2i]) -> SeqRun {
        let pts = PointSet::from_points2(points);
        incremental_hull_run(&pts)
    }

    #[test]
    fn merge_conflicts_dedups() {
        assert_eq!(merge_conflicts(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(merge_conflicts(&[], &[1]), vec![1]);
        assert_eq!(merge_conflicts(&[4], &[]), vec![4]);
        assert_eq!(merge_conflicts(&[7, 8], &[7, 8]), vec![7, 8]);
    }

    #[test]
    fn square_with_interior_point() {
        let run = hull_2d(&[
            Point2i::new(0, 0),
            Point2i::new(10, 0),
            Point2i::new(0, 10),
            Point2i::new(10, 10),
            Point2i::new(5, 5),
        ]);
        assert_eq!(run.output.num_facets(), 4);
        let verts = run.output.vertices();
        assert!(
            !verts.contains(&4),
            "interior point must not be a hull vertex"
        );
        assert_eq!(verts.len(), 4);
    }

    #[test]
    fn triangle_only() {
        let run = hull_2d(&[Point2i::new(0, 0), Point2i::new(5, 0), Point2i::new(0, 5)]);
        assert_eq!(run.output.num_facets(), 3);
        assert_eq!(run.stats.facets_created, 3);
        assert_eq!(run.stats.dep_depth, 0);
    }

    #[test]
    fn simplex_3d_plus_inside() {
        let pts = PointSet::from_rows(
            3,
            &[
                vec![0, 0, 0],
                vec![10, 0, 0],
                vec![0, 10, 0],
                vec![0, 0, 10],
                vec![1, 1, 1],
                vec![2, 1, 1],
            ],
        );
        let run = incremental_hull_run(&pts);
        assert_eq!(run.output.num_facets(), 4);
        assert_eq!(run.output.vertices().len(), 4);
    }

    #[test]
    fn octahedron_3d() {
        let pts = PointSet::from_rows(
            3,
            &[
                vec![10, 0, 0],
                vec![0, 10, 0],
                vec![0, 0, 10],
                vec![-10, 1, 2], // perturbed to keep the seed simplex honest
                vec![1, -10, 1],
                vec![2, 1, -10],
            ],
        );
        let run = incremental_hull_run(&pts);
        // All 6 points extreme; triangulated hull of 6 vertices in convex
        // position: Euler gives F = 2V - 4 = 8.
        assert_eq!(run.output.vertices().len(), 6);
        assert_eq!(run.output.num_facets(), 8);
    }

    #[test]
    fn hull_2d_matches_convex_position_count() {
        // All parabola points are hull vertices; 2D hull has V facets.
        let pts = PointSet::from_points2(&generators::parabola_2d(50, 3));
        let pts = prepare_points(&pts, 1);
        let run = incremental_hull_run(&pts);
        assert_eq!(run.output.vertices().len(), 50);
        assert_eq!(run.output.num_facets(), 50);
    }

    #[test]
    fn depth_grows_logarithmically_2d() {
        for (n, seed) in [(500usize, 2u64), (2000, 3)] {
            let pts = PointSet::from_points2(&generators::disk_2d(n, 1 << 20, seed));
            let pts = prepare_points(&pts, seed);
            let run = incremental_hull_run(&pts);
            let hn = run.stats.harmonic();
            // Theorem 4.2 bound with sigma = g k e^2 ~ 29.6.
            assert!(
                (run.stats.dep_depth as f64) < 30.0 * hn,
                "depth {} too large for n = {n}",
                run.stats.dep_depth
            );
            assert!(run.stats.dep_depth >= 3);
        }
    }

    #[test]
    fn created_and_depths_parallel_arrays() {
        let pts = PointSet::from_points2(&generators::disk_2d(200, 1 << 20, 9));
        let pts = prepare_points(&pts, 4);
        let run = incremental_hull_run(&pts);
        assert_eq!(run.created.len(), run.depths.len());
        assert_eq!(run.created.len() as u64, run.stats.facets_created);
        assert_eq!(
            run.depths.iter().copied().max().unwrap() as u64,
            run.stats.dep_depth
        );
    }

    #[test]
    fn naive_depth_dominates_support_depth() {
        // E12a: the support-free ("wait for everything the pivot touches")
        // dependence depth is always >= the paper's support-based depth,
        // and typically much larger at scale.
        for seed in 0..3u64 {
            let pts = PointSet::from_points2(&generators::disk_2d(2000, 1 << 20, seed));
            let pts = prepare_points(&pts, seed + 30);
            let run = incremental_hull_run(&pts);
            assert!(run.stats.naive_dep_depth >= run.stats.dep_depth);
        }
    }

    #[test]
    fn kernel_counters_partition_visibility_tests() {
        let pts = PointSet::from_points2(&generators::disk_2d(500, 1 << 20, 12));
        let pts = prepare_points(&pts, 5);
        let run = incremental_hull_run(&pts);
        let s = &run.stats;
        assert_eq!(
            s.visibility_tests,
            s.filter_hits + s.i128_fallbacks + s.bigint_fallbacks,
            "kernel stages must partition the tests"
        );
        #[cfg(not(feature = "naive-kernel"))]
        assert!(
            s.filter_hits > 0,
            "generic input should mostly resolve in the filter"
        );
    }

    #[test]
    fn collinear_interior_points_tolerated() {
        // Collinear points strictly inside the hull are fine.
        let run = hull_2d(&[
            Point2i::new(0, 0),
            Point2i::new(100, 0),
            Point2i::new(0, 100),
            Point2i::new(100, 100),
            Point2i::new(10, 10),
            Point2i::new(20, 20),
            Point2i::new(30, 30),
        ]);
        assert_eq!(run.output.vertices().len(), 4);
    }
}
