//! Striped monotone counters and last-value gauges.
//!
//! [`Counter`] follows the `concurrent::counters::StripedCounter`
//! recipe — cache-line-padded cells indexed by a per-thread stripe so
//! hot sites never contend on one line — but every record path is
//! additionally gated on [`crate::armed`], keeping the disarmed cost of
//! a site to one relaxed load.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of stripes (power of two).
const STRIPES: usize = 16;

/// A cache-line padded atomic cell.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

#[inline]
fn stripe() -> usize {
    // Hash the thread id onto a stripe; stable within a thread.
    use std::hash::BuildHasher;
    thread_local! {
        static STRIPE: usize = {
            let bh = std::collections::hash_map::RandomState::new();
            (bh.hash_one(std::thread::current().id()) as usize) % STRIPES
        };
    }
    STRIPE.with(|s| *s)
}

/// A sharded monotone counter: `add` is contention-free across threads
/// and a no-op while disarmed; `get` folds all stripes and is exact
/// once concurrent writers have quiesced.
pub struct Counter {
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter {
            cells: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    /// Add `v` (no-op while disarmed).
    #[inline]
    pub fn add(&self, v: u64) {
        if !crate::armed() {
            return;
        }
        self.cells[stripe()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Increment by one (no-op while disarmed).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Fold all stripes.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A signed last-value gauge (queue depth, journal length, epoch, …).
/// Levels are written by one owner at a time (a shard worker or the
/// scrape path), so a single cell suffices — no striping.
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Set the level (no-op while disarmed).
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::armed() {
            return;
        }
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (no-op while disarmed).
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::armed() {
            return;
        }
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_exact_after_join() {
        crate::arm();
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_set_and_add() {
        crate::arm();
        let g = Gauge::new();
        g.set(42);
        g.add(-2);
        assert_eq!(g.get(), 40);
    }
}
