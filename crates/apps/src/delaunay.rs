//! 2D Delaunay triangulation via the lifting map.
//!
//! Lift each point `(x, y)` to the paraboloid `(x, y, x^2 + y^2)`; the
//! *lower* facets of the 3D convex hull of the lifted points project to the
//! Delaunay triangles. This exercises the 3D hull end to end (including the
//! parallel algorithm) on an input in convex position — the regime where
//! every point is extreme — and yields a second certified application: the
//! empty-circumcircle property is validated with the exact `incircle`
//! predicate.

use chull_core::context::prepare_points;
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;
use chull_geometry::predicates::{incircle, orient2d, orientd_hom};
use chull_geometry::{Point2i, PointSet, Sign};

/// Maximum coordinate magnitude so the lift `x^2 + y^2` and its small sums
/// stay comfortably within `i64`.
pub const MAX_LIFT_COORD: i64 = 1 << 25;

/// A Delaunay triangulation: triangles as sorted triples of input indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delaunay {
    /// Triangles (each a sorted triple of point indices).
    pub triangles: Vec<[u32; 3]>,
}

/// Lift 2D points onto the paraboloid.
pub fn lift(points: &[Point2i]) -> PointSet {
    let mut ps = PointSet::new(3);
    for p in points {
        assert!(
            p.x.abs() <= MAX_LIFT_COORD && p.y.abs() <= MAX_LIFT_COORD,
            "coordinate exceeds MAX_LIFT_COORD"
        );
        ps.push(&[p.x, p.y, p.x * p.x + p.y * p.y]);
    }
    ps
}

/// Which algorithm computes the lifted hull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Sequential Algorithm 2.
    Sequential,
    /// Parallel Algorithm 3.
    Parallel,
}

/// Compute the Delaunay triangulation of `points` (distinct, in general
/// position: no four cocircular) through the lifted hull.
///
/// ```
/// use chull_apps::delaunay::{delaunay, verify_delaunay, Engine};
/// use chull_geometry::Point2i;
/// let pts = vec![
///     Point2i::new(0, 0), Point2i::new(10, 0),
///     Point2i::new(0, 10), Point2i::new(11, 12),
/// ];
/// let tri = delaunay(&pts, Engine::Sequential, 1);
/// assert_eq!(tri.triangles.len(), 2);
/// verify_delaunay(&pts, &tri).unwrap();
/// ```
pub fn delaunay(points: &[Point2i], engine: Engine, seed: u64) -> Delaunay {
    assert!(points.len() >= 3, "need at least 3 points");
    let lifted = lift(points);
    // The hull algorithms permute; recover original ids through the
    // permutation by tagging coordinates — instead, permute ourselves and
    // keep the inverse map.
    let prepared = prepare_points(&lifted, seed);
    // Inverse id map: prepared index -> original index (points are distinct
    // so coordinate lookup is unambiguous).
    let mut coord_to_orig = std::collections::HashMap::new();
    for (i, p) in points.iter().enumerate() {
        coord_to_orig.insert((p.x, p.y), i as u32);
    }
    let facets = match engine {
        Engine::Sequential => incremental_hull_run(&prepared).output,
        Engine::Parallel => parallel_hull(&prepared, ParOptions::default()).output,
    };

    // Interior reference: centroid of the first 4 (affinely independent)
    // prepared points, as a homogeneous row.
    let mut interior = [0i64; 3];
    for i in 0..4 {
        for (acc, &c) in interior.iter_mut().zip(prepared.point(i)) {
            *acc += c;
        }
    }

    let mut triangles = Vec::new();
    for f in &facets.facets {
        // Lower facet iff a point far below the facet's centroid is
        // *outside* the hull: compare the orientation sign of "down" with
        // the interior sign.
        let rows: Vec<&[i64]> = (0..3).map(|i| prepared.pt(f[i])).collect();
        let mut below = [0i64; 3];
        for r in &rows {
            below[0] += r[0];
            below[1] += r[1];
            below[2] += r[2];
        }
        // One unit below the plane (in the homogeneous-3 scale); only the
        // side of the plane matters, not the distance.
        below[2] -= 3;
        let s_below = orientd_hom(3, &[(rows[0], 1), (rows[1], 1), (rows[2], 1), (&below, 3)]);
        let s_interior = orientd_hom(
            3,
            &[(rows[0], 1), (rows[1], 1), (rows[2], 1), (&interior, 4)],
        );
        assert_ne!(s_interior, Sign::Zero);
        if s_below != Sign::Zero && s_below != s_interior {
            // Below is outside: lower facet -> Delaunay triangle.
            let mut tri = [0u32; 3];
            for (k, r) in rows.iter().enumerate() {
                tri[k] = *coord_to_orig
                    .get(&(r[0], r[1]))
                    .expect("lifted point lost its identity");
            }
            tri.sort_unstable();
            triangles.push(tri);
        }
    }
    triangles.sort_unstable();
    Delaunay { triangles }
}

/// Validate the empty-circumcircle property exactly: no input point lies
/// strictly inside any triangle's circumcircle. `O(T n)`.
pub fn verify_delaunay(points: &[Point2i], del: &Delaunay) -> Result<(), String> {
    for tri in &del.triangles {
        let (a, b, c) = (
            points[tri[0] as usize],
            points[tri[1] as usize],
            points[tri[2] as usize],
        );
        // Normalize to ccw for the incircle sign convention.
        let (a, b) = match orient2d(a, b, c) {
            Sign::Positive => (a, b),
            Sign::Negative => (b, a),
            Sign::Zero => return Err(format!("degenerate triangle {tri:?}")),
        };
        for (qi, &q) in points.iter().enumerate() {
            if tri.contains(&(qi as u32)) {
                continue;
            }
            if incircle(a, b, c, q) == Sign::Positive {
                return Err(format!("point {qi} inside circumcircle of {tri:?}"));
            }
        }
    }
    Ok(())
}

/// Euler-based size check for a triangulation of a point set whose hull has
/// `h` vertices and `n` total vertices (no interior degeneracies):
/// `T = 2n - h - 2`.
pub fn expected_triangle_count(n: usize, hull_vertices: usize) -> usize {
    2 * n - hull_vertices - 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use chull_core::baseline::monotone_chain;
    use chull_geometry::generators;

    #[test]
    fn small_square_two_triangles() {
        // Four points, no 4 cocircular: perturb one corner.
        let pts = vec![
            Point2i::new(0, 0),
            Point2i::new(10, 0),
            Point2i::new(0, 10),
            Point2i::new(11, 12),
        ];
        let del = delaunay(&pts, Engine::Sequential, 1);
        assert_eq!(del.triangles.len(), 2);
        verify_delaunay(&pts, &del).unwrap();
    }

    #[test]
    fn random_points_verify_and_count() {
        for seed in 0..3u64 {
            let pts = generators::disk_2d(80, 1 << 12, seed);
            let del = delaunay(&pts, Engine::Sequential, seed);
            verify_delaunay(&pts, &del).unwrap();
            let h = monotone_chain::hull_indices(&pts).len();
            assert_eq!(
                del.triangles.len(),
                expected_triangle_count(pts.len(), h),
                "triangle count off (seed {seed})"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let pts = generators::disk_2d(150, 1 << 12, 9);
        let a = delaunay(&pts, Engine::Sequential, 5);
        let b = delaunay(&pts, Engine::Parallel, 5);
        assert_eq!(a, b);
        verify_delaunay(&pts, &a).unwrap();
    }

    #[test]
    fn gaussian_cloud() {
        let ps = generators::gaussian_d(2, 60, 500.0, 4);
        let pts: Vec<Point2i> = ps.iter().map(|c| Point2i::new(c[0], c[1])).collect();
        let del = delaunay(&pts, Engine::Sequential, 2);
        verify_delaunay(&pts, &del).unwrap();
    }
}
