//! 3D hull benchmarks: ball (small hull) vs near-sphere (Theta(n) hull).

use chull_bench::harness::Bench;
use chull_bench::{prepared_ball_3d, prepared_sphere_3d};
use chull_core::par::{parallel_hull, ParOptions};
use chull_core::seq::incremental_hull_run;

fn main() {
    let mut b = Bench::new().samples(5).target_sample_time(0.2);
    for (dist, n) in [("ball", 50_000usize), ("near_sphere", 20_000)] {
        let pts = if dist == "ball" {
            prepared_ball_3d(n, 9)
        } else {
            prepared_sphere_3d(n, 9)
        };
        b.bench(&format!("hull3d/{dist}_seq/{n}"), || {
            incremental_hull_run(&pts)
        });
        b.bench(&format!("hull3d/{dist}_par/{n}"), || {
            parallel_hull(&pts, ParOptions::default())
        });
    }
    b.report();
}
