//! Floating-point expansion arithmetic (Shewchuk).
//!
//! An *expansion* is a sum of floating-point numbers `e = e_0 + ... + e_{m-1}`
//! whose components are nonoverlapping and sorted by increasing magnitude.
//! Expansions represent real numbers exactly; the error-free transforms
//! `two_sum` and `two_product` are the building blocks.
//!
//! We implement the operations needed for exact signs of small geometric
//! determinants: growing an expansion by a scalar, summing two expansions,
//! scaling an expansion by a scalar, and full expansion products. The
//! predicates in [`crate::predicates`] use a cheap floating-point filter and
//! fall back to these exact routines only when the filter cannot certify the
//! sign (Shewchuk's "static filter + exact" scheme).

/// Error-free transform: `a + b = x + y` exactly, with `x = fl(a + b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bv = x - a;
    let av = x - bv;
    let br = b - bv;
    let ar = a - av;
    (x, ar + br)
}

/// Error-free transform for the case `|a| >= |b|` (slightly cheaper).
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    debug_assert!(a == 0.0 || b == 0.0 || a.abs() >= b.abs() || a.is_nan() || b.is_nan());
    let x = a + b;
    let bv = x - a;
    (x, b - bv)
}

/// Error-free transform: `a - b = x + y` exactly, with `x = fl(a - b)`.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bv = a - x;
    let av = x + bv;
    let br = bv - b;
    let ar = a - av;
    (x, ar + br)
}

/// Error-free transform: `a * b = x + y` exactly, with `x = fl(a * b)`.
///
/// Uses a fused multiply-add for the exact tail: Rust guarantees `mul_add`
/// rounds once, so `fma(a, b, -a*b)` is the exact product tail.
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let y = a.mul_add(b, -x);
    (x, y)
}

/// An exact real number as a nonoverlapping floating-point expansion.
///
/// Components are stored in increasing magnitude order. The empty expansion
/// and the all-zero expansion both represent zero.
#[derive(Clone, Debug, Default)]
pub struct Expansion {
    comps: Vec<f64>,
}

impl Expansion {
    /// The zero expansion.
    #[inline]
    pub fn zero() -> Expansion {
        Expansion { comps: Vec::new() }
    }

    /// An expansion holding a single floating-point value.
    #[inline]
    pub fn from_f64(v: f64) -> Expansion {
        if v == 0.0 {
            Expansion::zero()
        } else {
            Expansion { comps: vec![v] }
        }
    }

    /// The exact product of two doubles as a (≤2)-component expansion.
    #[inline]
    pub fn from_product(a: f64, b: f64) -> Expansion {
        let (x, y) = two_product(a, b);
        let mut comps = Vec::with_capacity(2);
        if y != 0.0 {
            comps.push(y);
        }
        if x != 0.0 {
            comps.push(x);
        }
        Expansion { comps }
    }

    /// The exact difference `a - b` as a (≤2)-component expansion.
    #[inline]
    pub fn from_diff(a: f64, b: f64) -> Expansion {
        let (x, y) = two_diff(a, b);
        let mut comps = Vec::with_capacity(2);
        if y != 0.0 {
            comps.push(y);
        }
        if x != 0.0 {
            comps.push(x);
        }
        Expansion { comps }
    }

    /// Number of (nonzero) stored components.
    #[inline]
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True iff no components are stored (the canonical zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// True iff the represented value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.comps.iter().all(|&c| c == 0.0)
    }

    /// Raw component access (increasing magnitude).
    #[inline]
    pub fn components(&self) -> &[f64] {
        &self.comps
    }

    /// The best single floating-point approximation: the sum of components.
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.comps.iter().sum()
    }

    /// The exact sign: the sign of the largest-magnitude (last) nonzero
    /// component, by the nonoverlapping property.
    pub fn sign(&self) -> i32 {
        for &c in self.comps.iter().rev() {
            if c > 0.0 {
                return 1;
            }
            if c < 0.0 {
                return -1;
            }
        }
        0
    }

    /// Exact sum of two expansions (`fast_expansion_sum_zeroelim`).
    pub fn add(&self, other: &Expansion) -> Expansion {
        if self.comps.is_empty() {
            return other.clone();
        }
        if other.comps.is_empty() {
            return self.clone();
        }
        let e = &self.comps;
        let f = &other.comps;
        // Merge by magnitude.
        let mut g = Vec::with_capacity(e.len() + f.len());
        let (mut i, mut j) = (0, 0);
        while i < e.len() && j < f.len() {
            if e[i].abs() <= f[j].abs() {
                g.push(e[i]);
                i += 1;
            } else {
                g.push(f[j]);
                j += 1;
            }
        }
        g.extend_from_slice(&e[i..]);
        g.extend_from_slice(&f[j..]);

        // Sum with carry propagation, eliminating zeros.
        let mut h = Vec::with_capacity(g.len());
        let (mut q, hh) = fast_two_sum(g[1], g[0]);
        if hh != 0.0 {
            h.push(hh);
        }
        for &gk in &g[2..] {
            let (qn, hn) = two_sum(q, gk);
            q = qn;
            if hn != 0.0 {
                h.push(hn);
            }
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion { comps: h }
    }

    /// Exact difference of two expansions.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.neg())
    }

    /// Negated copy.
    pub fn neg(&self) -> Expansion {
        Expansion {
            comps: self.comps.iter().map(|&c| -c).collect(),
        }
    }

    /// Exact product by a scalar (`scale_expansion_zeroelim`).
    pub fn scale(&self, b: f64) -> Expansion {
        if self.comps.is_empty() || b == 0.0 {
            return Expansion::zero();
        }
        let e = &self.comps;
        let mut h = Vec::with_capacity(2 * e.len());
        let (mut q, hh) = two_product(e[0], b);
        if hh != 0.0 {
            h.push(hh);
        }
        for &ei in &e[1..] {
            let (p1, p0) = two_product(ei, b);
            let (sum, hh) = two_sum(q, p0);
            if hh != 0.0 {
                h.push(hh);
            }
            let (qn, hh) = fast_two_sum(p1, sum);
            q = qn;
            if hh != 0.0 {
                h.push(hh);
            }
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion { comps: h }
    }

    /// Exact product of two expansions (distribute-and-sum).
    ///
    /// Quadratic in component count; used only on tiny expansions inside the
    /// exact fallback of predicates, where inputs have O(1) components.
    pub fn mul(&self, other: &Expansion) -> Expansion {
        let mut acc = Expansion::zero();
        for &c in &other.comps {
            acc = acc.add(&self.scale(c));
        }
        acc
    }
}

/// Exact sign of the determinant of a small matrix of `f64` entries, via
/// cofactor expansion carried out entirely in expansion arithmetic.
///
/// Exponential in `n`; intended for n ≤ 5 (the fallback path of the
/// predicates). Panics if the matrix is not square.
pub fn det_sign_exact(matrix: &[Vec<f64>]) -> i32 {
    det_expansion(matrix).sign()
}

/// The exact determinant of a small `f64` matrix as an expansion.
pub fn det_expansion(matrix: &[Vec<f64>]) -> Expansion {
    let n = matrix.len();
    for row in matrix {
        assert_eq!(row.len(), n, "determinant of non-square matrix");
    }
    let exp_rows: Vec<Vec<Expansion>> = matrix
        .iter()
        .map(|row| row.iter().map(|&v| Expansion::from_f64(v)).collect())
        .collect();
    det_expansion_rows(&exp_rows)
}

/// The exact determinant of a small matrix whose entries are already
/// expansions (used for lifted/incircle-style matrices whose entries are
/// exact sums of products).
pub fn det_expansion_rows(rows: &[Vec<Expansion>]) -> Expansion {
    let n = rows.len();
    match n {
        0 => Expansion::from_f64(1.0),
        1 => rows[0][0].clone(),
        2 => rows[0][0]
            .mul(&rows[1][1])
            .sub(&rows[0][1].mul(&rows[1][0])),
        _ => {
            let mut acc = Expansion::zero();
            for j in 0..n {
                if rows[0][j].is_zero() {
                    continue;
                }
                let minor: Vec<Vec<Expansion>> = rows[1..]
                    .iter()
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .filter(|&(k, _)| k != j)
                            .map(|(_, e)| e.clone())
                            .collect()
                    })
                    .collect();
                let term = rows[0][j].mul(&det_expansion_rows(&minor));
                acc = if j % 2 == 0 {
                    acc.add(&term)
                } else {
                    acc.sub(&term)
                };
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_exact() {
        let (x, y) = two_sum(1.0, 1e-30);
        assert_eq!(x, 1.0);
        assert_eq!(y, 1e-30);
        let (x, y) = two_sum(0.1, 0.2);
        // x + y reconstructs the exact real sum of the two doubles.
        assert_eq!(x, 0.1 + 0.2);
        assert!(y != 0.0); // 0.1 + 0.2 is inexact in binary
    }

    #[test]
    fn two_product_exact() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 - f64::EPSILON;
        let (x, y) = two_product(a, b);
        // a*b = 1 - eps^2 exactly; x rounds to 1.0, tail recovers -eps^2.
        assert_eq!(x, 1.0);
        assert_eq!(y, -f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn expansion_add_estimate() {
        let a = Expansion::from_f64(1e30);
        let b = Expansion::from_f64(1.0);
        let c = Expansion::from_f64(-1e30);
        let s = a.add(&b).add(&c);
        assert_eq!(s.estimate(), 1.0);
        assert_eq!(s.sign(), 1);
    }

    #[test]
    fn expansion_cancellation_sign() {
        // (1e30 + 1) - 1e30 - 2 = -1 despite catastrophic f64 cancellation.
        let s = Expansion::from_f64(1e30)
            .add(&Expansion::from_f64(1.0))
            .sub(&Expansion::from_f64(1e30))
            .sub(&Expansion::from_f64(2.0));
        assert_eq!(s.sign(), -1);
        assert_eq!(s.estimate(), -1.0);
    }

    #[test]
    fn expansion_scale() {
        let e = Expansion::from_f64(0.1).add(&Expansion::from_f64(0.2));
        let s = e.scale(3.0);
        let direct = Expansion::from_f64(0.1)
            .scale(3.0)
            .add(&Expansion::from_f64(0.2).scale(3.0));
        assert_eq!(s.sub(&direct).sign(), 0);
    }

    #[test]
    fn expansion_mul_matches_integer_arithmetic() {
        // Exact small-integer checks: expansions over integers stay exact.
        let a = Expansion::from_f64(12345.0);
        let b = Expansion::from_f64(-6789.0);
        let p = a.mul(&b);
        assert_eq!(p.estimate(), -83810205.0);
        assert_eq!(p.sign(), -1);
    }

    #[test]
    fn det_2x2_exact_sign() {
        // Nearly singular matrix where naive f64 gets the sign wrong.
        let base = 94906265.62425156f64; // ~sqrt(2^53)
        let m = vec![vec![base, base + 1.0], vec![base - 1.0, base]];
        // det = base^2 - (base^2 - 1) = 1 exactly... but with non-integer
        // base the products are inexact; expansion arithmetic gets it right.
        let sign = det_sign_exact(&m);
        let exact = Expansion::from_product(base, base)
            .sub(&Expansion::from_product(base + 1.0, base - 1.0));
        assert_eq!(sign, exact.sign());
        assert_eq!(sign, 1);
    }

    #[test]
    fn det_3x3_vs_naive_on_safe_input() {
        let m = vec![
            vec![2.0, -3.0, 1.0],
            vec![0.5, 4.0, -2.0],
            vec![1.0, 0.0, 5.0],
        ];
        let naive = 2.0 * (4.0 * 5.0 - (-2.0) * 0.0) - (-3.0) * (0.5 * 5.0 - (-2.0) * 1.0)
            + 1.0 * (0.5 * 0.0 - 4.0 * 1.0);
        let e = det_expansion(&m);
        assert_eq!(e.estimate(), naive);
    }

    #[test]
    fn det_4x4_identity_and_swap() {
        let mut m = vec![vec![0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        assert_eq!(det_sign_exact(&m), 1);
        m.swap(0, 1);
        assert_eq!(det_sign_exact(&m), -1);
    }

    #[test]
    fn det_singular_is_zero() {
        let m = vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![5.0, 7.0, 9.0], // row0 + row1
        ];
        assert_eq!(det_sign_exact(&m), 0);
    }

    #[test]
    fn zero_handling() {
        assert_eq!(Expansion::zero().sign(), 0);
        assert!(Expansion::from_f64(0.0).is_zero());
        assert!(Expansion::from_f64(5.0)
            .sub(&Expansion::from_f64(5.0))
            .is_zero());
        assert_eq!(Expansion::from_f64(5.0).scale(0.0).sign(), 0);
    }
}
