//! The live multiset behind windowed/deletable serving: which inserted
//! rows are still alive, in arrival order.
//!
//! The online hull itself is insert-only (Algorithm 2's structure has no
//! cheap delete), so deletion is served by **tombstone-then-rebuild**:
//! the serving layer tracks this multiset next to the hull, tombstones
//! departing rows, and — when enough tombstones could matter — rebuilds
//! the hull from [`LiveSet::survivors`] through the parallel bulk path.
//! Theorem 4.2's order-independence makes that rebuild canonically
//! equivalent to any insertion order of the survivors, which is what
//! lets the whole design skip fine-grained dynamic-hull locking.
//!
//! Duplicate coordinates are counted (a multiset), and a delete kills
//! the **oldest** live copy: survivors are always a suffix of each
//! coordinate's arrival list, so window expiry (oldest-first) and
//! explicit deletes compose without tracking per-copy identity.

use std::collections::{HashMap, VecDeque};

/// Per-shard retention policy for windowed serving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Keep everything; only explicit deletes remove rows.
    #[default]
    None,
    /// Keep at most this many live rows; inserting past the bound
    /// expires the oldest live rows (count-bounded sliding window).
    Count(usize),
    /// Keep rows for this many publication epochs: a row inserted at
    /// epoch `e` expires once the shard publishes epoch `e + n`
    /// (logical-time-bounded window).
    Epochs(u64),
}

/// What [`LiveSet::remove`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// No live copy of the row existed — nothing to tombstone.
    Miss,
    /// A duplicate copy died but at least one live copy remains; the
    /// hull cannot have changed.
    Dec,
    /// The last live copy died; the row is gone from the live set.
    Gone,
}

/// The live multiset: per-coordinate live counts plus the arrival-order
/// FIFO that windows expire from and rebuilds enumerate survivors from.
#[derive(Debug, Default)]
pub struct LiveSet {
    /// Live copies per coordinate row.
    counts: HashMap<Vec<i64>, usize>,
    /// Every arrival still in the FIFO (live or dead), oldest first,
    /// with the publication epoch it arrived under.
    fifo: VecDeque<(Vec<i64>, u64)>,
    /// FIFO entries per coordinate that are already dead (deleted or
    /// expired, with younger arrivals possibly still live). A delete
    /// kills the oldest copy, so the first `dead[row]` FIFO occurrences
    /// of `row` are the dead ones.
    dead: HashMap<Vec<i64>, usize>,
    /// Total live rows (sum of `counts`).
    live: usize,
}

impl LiveSet {
    /// An empty live set.
    pub fn new() -> LiveSet {
        LiveSet::default()
    }

    /// Record one inserted row arriving at publication epoch `epoch`.
    pub fn insert(&mut self, row: Vec<i64>, epoch: u64) {
        *self.counts.entry(row.clone()).or_insert(0) += 1;
        self.fifo.push_back((row, epoch));
        self.live += 1;
    }

    /// Kill the oldest live copy of `row`, if any.
    pub fn remove(&mut self, row: &[i64]) -> RemoveOutcome {
        let Some(n) = self.counts.get_mut(row) else {
            return RemoveOutcome::Miss;
        };
        *n -= 1;
        let gone = *n == 0;
        if gone {
            self.counts.remove(row);
        }
        *self.dead.entry(row.to_vec()).or_insert(0) += 1;
        self.live -= 1;
        if gone {
            RemoveOutcome::Gone
        } else {
            RemoveOutcome::Dec
        }
    }

    /// Live copies of `row` (0 when absent).
    pub fn count(&self, row: &[i64]) -> usize {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Total live rows.
    pub fn live(&self) -> usize {
        self.live
    }

    /// FIFO entries that are dead but not yet compacted away — the
    /// memory the next rebuild reclaims.
    pub fn dead_entries(&self) -> usize {
        self.fifo.len() - self.live
    }

    /// Expire the `n` oldest **live** rows, returning their coordinates
    /// in expiry order. Rows whose last live copy dies here are exactly
    /// the returned rows with no remaining [`LiveSet::count`].
    pub fn expire_oldest(&mut self, n: usize) -> Vec<Vec<i64>> {
        let mut out = Vec::with_capacity(n.min(self.live));
        while out.len() < n && self.live > 0 {
            let (row, _) = self.fifo.pop_front().expect("live > 0 implies entries");
            if let Some(d) = self.dead.get_mut(&row) {
                // Oldest copies die first, so a dead-marked front entry
                // is one of the already-deleted copies: drop it and the
                // mark together.
                *d -= 1;
                if *d == 0 {
                    self.dead.remove(&row);
                }
                continue;
            }
            let c = self.counts.get_mut(&row).expect("live entry has a count");
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&row);
            }
            self.live -= 1;
            out.push(row);
        }
        out
    }

    /// Apply `policy` after the shard published epoch `now`: expire
    /// whatever the window no longer retains, oldest first.
    pub fn expire_window(&mut self, policy: &WindowPolicy, now: u64) -> Vec<Vec<i64>> {
        match *policy {
            WindowPolicy::None => Vec::new(),
            WindowPolicy::Count(cap) => {
                let excess = self.live.saturating_sub(cap);
                self.expire_oldest(excess)
            }
            WindowPolicy::Epochs(n) => {
                let mut out = Vec::new();
                loop {
                    // Pop dead prefix entries for free while hunting the
                    // oldest live arrival.
                    match self.fifo.front() {
                        Some((row, at)) if now.saturating_sub(*at) >= n => {
                            if self.dead.contains_key(row) {
                                let (row, _) = self.fifo.pop_front().expect("front exists");
                                let d = self.dead.get_mut(&row).expect("checked above");
                                *d -= 1;
                                if *d == 0 {
                                    self.dead.remove(&row);
                                }
                            } else {
                                out.extend(self.expire_oldest(1));
                            }
                        }
                        _ => break,
                    }
                }
                out
            }
        }
    }

    /// The live rows in arrival order — the input a rebuild feeds to the
    /// bulk constructor. For a coordinate with dead older copies, only
    /// the youngest `count` arrivals are emitted.
    pub fn survivors(&self) -> Vec<Vec<i64>> {
        let mut skip = self.dead.clone();
        let mut out = Vec::with_capacity(self.live);
        for (row, _) in &self.fifo {
            if let Some(d) = skip.get_mut(row) {
                *d -= 1;
                if *d == 0 {
                    skip.remove(row);
                }
                continue;
            }
            out.push(row.clone());
        }
        debug_assert_eq!(out.len(), self.live);
        out
    }

    /// Drop every dead FIFO entry (after a rebuild journaled the
    /// survivors as the new checkpoint): the FIFO shrinks to exactly the
    /// live rows, re-stamped as arriving at epoch `epoch`.
    pub fn compact(&mut self, epoch: u64) {
        let rows = self.survivors();
        self.fifo.clear();
        self.dead.clear();
        for row in rows {
            self.fifo.push_back((row, epoch));
        }
        debug_assert_eq!(self.fifo.len(), self.live);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(s: &LiveSet) -> Vec<Vec<i64>> {
        s.survivors()
    }

    #[test]
    fn multiset_delete_semantics() {
        let mut s = LiveSet::new();
        s.insert(vec![1, 1], 1);
        s.insert(vec![2, 2], 1);
        s.insert(vec![1, 1], 2);
        assert_eq!(s.live(), 3);
        assert_eq!(s.remove(&[3, 3]), RemoveOutcome::Miss);
        assert_eq!(s.remove(&[1, 1]), RemoveOutcome::Dec);
        assert_eq!(s.count(&[1, 1]), 1);
        // The oldest copy died: the survivor list keeps the epoch-2 one.
        assert_eq!(rows(&s), vec![vec![2, 2], vec![1, 1]]);
        assert_eq!(s.remove(&[1, 1]), RemoveOutcome::Gone);
        assert_eq!(s.remove(&[1, 1]), RemoveOutcome::Miss);
        assert_eq!(rows(&s), vec![vec![2, 2]]);
        assert_eq!(s.live(), 1);
        assert_eq!(s.dead_entries(), 2);
    }

    #[test]
    fn count_window_expires_oldest_live() {
        let mut s = LiveSet::new();
        for i in 0..5 {
            s.insert(vec![i, i], i as u64);
        }
        assert_eq!(s.remove(&[0, 0]), RemoveOutcome::Gone);
        let expired = s.expire_window(&WindowPolicy::Count(2), 5);
        // live was 4, cap 2: the two oldest live rows go, skipping the
        // already-dead [0,0] entry.
        assert_eq!(expired, vec![vec![1, 1], vec![2, 2]]);
        assert_eq!(rows(&s), vec![vec![3, 3], vec![4, 4]]);
    }

    #[test]
    fn epoch_window_expires_by_age() {
        let mut s = LiveSet::new();
        s.insert(vec![0, 0], 1);
        s.insert(vec![1, 1], 2);
        s.insert(vec![2, 2], 5);
        let expired = s.expire_window(&WindowPolicy::Epochs(3), 5);
        assert_eq!(expired, vec![vec![0, 0], vec![1, 1]]);
        assert_eq!(rows(&s), vec![vec![2, 2]]);
        assert!(s.expire_window(&WindowPolicy::Epochs(3), 5).is_empty());
        assert_eq!(
            s.expire_window(&WindowPolicy::Epochs(3), 8),
            vec![vec![2, 2]]
        );
    }

    #[test]
    fn compact_drops_dead_entries_and_preserves_survivors() {
        let mut s = LiveSet::new();
        for i in 0..6 {
            s.insert(vec![i], i as u64);
        }
        s.remove(&[1]);
        s.remove(&[4]);
        let before = rows(&s);
        assert_eq!(s.dead_entries(), 2);
        s.compact(9);
        assert_eq!(s.dead_entries(), 0);
        assert_eq!(rows(&s), before);
        assert_eq!(s.live(), 4);
        // Everything now dates from epoch 9.
        assert!(s.expire_window(&WindowPolicy::Epochs(1), 9).is_empty());
        assert_eq!(s.expire_window(&WindowPolicy::Epochs(1), 10).len(), 4);
    }
}
