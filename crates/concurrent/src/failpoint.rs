//! Deterministic fault injection: a std-only failpoint registry.
//!
//! Production code is instrumented with **named sites** — one
//! [`eval`] call per site, e.g. `shard.drain.before_publish` in the
//! shard worker's drain loop or `wire.write_frame` in the wire layer.
//! A site costs a single relaxed atomic load while the registry is
//! disarmed (the branch predicts perfectly and the slow path is
//! `#[cold]`), so instrumented binaries serve production traffic at
//! full speed.
//!
//! Chaos runs [`arm`] the registry with a [`FaultPlan`]: per-site
//! specs of *what* to inject (panics, artificial latency, spurious
//! queue-full backpressure, truncated frame writes) and *when*
//! (deterministically on every k-th hit, or randomly with a seeded
//! per-site ChaCha8 stream). Every random draw derives from one `u64`
//! seed and the site's name — never from global state or wall-clock —
//! so a chaos schedule replays exactly from its seed alone, per site,
//! regardless of how other sites interleave.
//!
//! [`eval`] performs `Panic` (a `panic!` carrying the site name, for
//! `catch_unwind` supervisors) and `Delay` (a `sleep`) itself; actions
//! the caller must interpret in context (`SpuriousFull`,
//! `TruncateWrite`) are returned. Counters ([`hits`], [`fires`]) let
//! harnesses assert that a schedule actually exercised a site.

use crate::fast_hash::FxLikeHasher;
use chull_geometry::rng::ChaCha8Rng;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Canonical site names, so call sites and plans cannot drift apart.
pub mod sites {
    /// [`crate::BoundedQueue::try_push`]: inject spurious `Full`.
    pub const QUEUE_PUSH: &str = "queue.push";
    /// Shard drain loop, between journaling and applying one insert.
    pub const SHARD_APPLY: &str = "shard.apply.insert";
    /// Shard drain loop, after applying a batch, before publishing.
    pub const SHARD_BEFORE_PUBLISH: &str = "shard.drain.before_publish";
    /// Shard rebuild-from-survivors, before the bulk reconstruction:
    /// panics kill the worker mid-rebuild (the triggering unit is
    /// already journaled, so replay re-runs the rebuild decision).
    pub const SHARD_REBUILD: &str = "shard.rebuild";
    /// Wire frame writer: truncate the frame and abort the connection.
    pub const WIRE_WRITE_FRAME: &str = "wire.write_frame";
    /// Server accept loop (latency injection only in canned plans).
    pub const SERVER_ACCEPT: &str = "server.accept";
    /// Primary replication dispatch, before shipping one batch unit:
    /// `SpuriousFull` drops the shipment (the subscriber sees "caught
    /// up" and must re-fetch), panics kill the serving thread.
    pub const REPL_SHIP: &str = "replica.ship";
    /// Follower puller, before applying one fetched batch unit:
    /// `SpuriousFull` drops the fetched batch (forcing a duplicate
    /// re-fetch), panics kill the puller mid-apply (resubscribe path).
    pub const REPL_APPLY: &str = "replica.apply";
}

/// What a site evaluation decided. `Panic` and `Delay` never reach the
/// caller — [`eval`] performs them internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: run the real code.
    Proceed,
    /// Queue sites: report `Full` without consulting the real queue.
    SpuriousFull,
    /// Write sites: emit only this many payload bytes, then fail the
    /// write as if the peer (or the process) died mid-frame.
    TruncateWrite(usize),
}

/// When and what to inject at one site. All probabilities are parts
/// per million of each evaluation; `every` fires deterministically on
/// hit counts divisible by it. A site fires at most [`SiteSpec::max_fires`]
/// times when that is non-zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteSpec {
    /// Fire a panic on every `panic_every`-th hit (0 = never).
    pub panic_every: u32,
    /// Additionally panic with this probability (ppm per hit).
    pub panic_ppm: u32,
    /// Truncate a frame write with this probability (ppm per hit).
    pub truncate_ppm: u32,
    /// Report spurious `Full` with this probability (ppm per hit).
    pub full_ppm: u32,
    /// Sleep `delay_us` with this probability (ppm per hit).
    pub delay_ppm: u32,
    /// Injected latency for `delay_ppm` hits, in microseconds.
    pub delay_us: u64,
    /// Cap on total injected faults at this site (0 = unlimited).
    pub max_fires: u32,
}

/// A seeded chaos schedule: per-site [`SiteSpec`]s plus the master
/// seed every per-site random stream derives from.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<(&'static str, SiteSpec)>,
}

impl FaultPlan {
    /// An empty plan (no site injects anything) over `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: Vec::new(),
        }
    }

    /// Add (or replace) one site's spec.
    pub fn site(mut self, name: &'static str, spec: SiteSpec) -> FaultPlan {
        self.sites.retain(|(n, _)| *n != name);
        self.sites.push((name, spec));
        self
    }

    /// The canned chaos schedule `hull serve --chaos-seed` arms: worker
    /// panics mid-batch and before publish, truncated frame writes,
    /// spurious backpressure, and a little accept/apply latency.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .site(
                sites::SHARD_APPLY,
                SiteSpec {
                    panic_ppm: 2_000,
                    delay_ppm: 1_000,
                    delay_us: 200,
                    ..SiteSpec::default()
                },
            )
            .site(
                sites::SHARD_BEFORE_PUBLISH,
                SiteSpec {
                    panic_ppm: 10_000,
                    ..SiteSpec::default()
                },
            )
            .site(
                sites::WIRE_WRITE_FRAME,
                SiteSpec {
                    truncate_ppm: 1_000,
                    ..SiteSpec::default()
                },
            )
            .site(
                sites::QUEUE_PUSH,
                SiteSpec {
                    full_ppm: 5_000,
                    ..SiteSpec::default()
                },
            )
            .site(
                sites::SERVER_ACCEPT,
                SiteSpec {
                    delay_ppm: 20_000,
                    delay_us: 500,
                    ..SiteSpec::default()
                },
            )
            // Replication-link faults (inert unless a replica is
            // running): dropped shipments, dropped applies, puller
            // deaths mid-apply, and a little shipping latency.
            .site(
                sites::REPL_SHIP,
                SiteSpec {
                    full_ppm: 20_000,
                    delay_ppm: 5_000,
                    delay_us: 300,
                    ..SiteSpec::default()
                },
            )
            .site(
                sites::REPL_APPLY,
                SiteSpec {
                    full_ppm: 20_000,
                    panic_ppm: 2_000,
                    ..SiteSpec::default()
                },
            )
    }
}

/// Mutable per-site state while armed.
struct SiteState {
    spec: SiteSpec,
    rng: ChaCha8Rng,
    hits: u64,
    fires: u64,
}

#[derive(Default)]
struct Registry {
    sites: HashMap<&'static str, SiteState>,
    /// Hit counters survive for sites evaluated while armed but absent
    /// from the plan, so harnesses can see coverage.
    other_hits: HashMap<&'static str, u64>,
}

/// Fast-path gate: one relaxed load per site evaluation when disarmed.
static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
    // A panicking holder cannot corrupt the map (all mutations are
    // counter bumps and rng draws); recover from poisoning.
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Derive one site's deterministic stream from the master seed and the
/// site's name (stable Fx-style hash), so per-site draw sequences do
/// not depend on cross-site interleaving.
fn site_rng(seed: u64, name: &str) -> ChaCha8Rng {
    let mut h = FxLikeHasher::default();
    h.write(name.as_bytes());
    ChaCha8Rng::seed_from_u64(seed ^ h.finish())
}

/// Arm the registry with a plan. Replaces any previous plan and resets
/// all counters. Sites begin injecting immediately, process-wide.
pub fn arm(plan: FaultPlan) {
    let mut reg = Registry::default();
    for (name, spec) in &plan.sites {
        reg.sites.insert(
            name,
            SiteState {
                spec: *spec,
                rng: site_rng(plan.seed, name),
                hits: 0,
                fires: 0,
            },
        );
    }
    *registry() = Some(reg);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm: every site reverts to the zero-cost fast path. Counters are
/// kept until the next [`arm`] so harnesses can read them afterwards.
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Times `site` was evaluated while armed (plan member or not).
pub fn hits(site: &str) -> u64 {
    match registry().as_ref() {
        Some(r) => r
            .sites
            .get(site)
            .map(|s| s.hits)
            .or_else(|| r.other_hits.get(site).copied())
            .unwrap_or(0),
        None => 0,
    }
}

/// Faults actually injected at `site` under the current/last plan.
pub fn fires(site: &str) -> u64 {
    match registry().as_ref() {
        Some(r) => r.sites.get(site).map(|s| s.fires).unwrap_or(0),
        None => 0,
    }
}

/// Evaluate a failpoint site. Disarmed: a single relaxed atomic load.
/// Armed: consult the plan; `Panic` panics (with the site name in the
/// message) and `Delay` sleeps right here, other actions are returned
/// for the caller to interpret.
#[inline]
pub fn eval(site: &'static str) -> FaultAction {
    if !ARMED.load(Ordering::Relaxed) {
        return FaultAction::Proceed;
    }
    eval_armed(site)
}

#[cold]
fn eval_armed(site: &'static str) -> FaultAction {
    let decision = {
        let mut guard = registry();
        let Some(reg) = guard.as_mut() else {
            return FaultAction::Proceed;
        };
        let Some(st) = reg.sites.get_mut(site) else {
            *reg.other_hits.entry(site).or_insert(0) += 1;
            return FaultAction::Proceed;
        };
        st.hits += 1;
        if st.spec.max_fires != 0 && st.fires >= st.spec.max_fires as u64 {
            return FaultAction::Proceed;
        }
        let roll =
            |rng: &mut ChaCha8Rng, ppm: u32| ppm != 0 && rng.gen_range(0u32..1_000_000) < ppm;
        let spec = st.spec;
        let deterministic_panic = spec.panic_every != 0 && st.hits % spec.panic_every as u64 == 0;
        // Draw every configured probability each hit, so a site's draw
        // sequence is a pure function of (seed, site, hit index).
        let p = roll(&mut st.rng, spec.panic_ppm);
        let t = roll(&mut st.rng, spec.truncate_ppm);
        let f = roll(&mut st.rng, spec.full_ppm);
        let d = roll(&mut st.rng, spec.delay_ppm);
        let truncate_at = if spec.truncate_ppm != 0 {
            st.rng.gen_range(0usize..64)
        } else {
            0
        };
        let decision = if deterministic_panic || p {
            Some(Decision::Panic)
        } else if t {
            Some(Decision::Truncate(truncate_at))
        } else if f {
            Some(Decision::Full)
        } else if d {
            Some(Decision::Delay(Duration::from_micros(spec.delay_us)))
        } else {
            None
        };
        if decision.is_some() {
            st.fires += 1;
        }
        decision
        // Lock released here: the panic/sleep below happens outside it.
    };
    match decision {
        None => FaultAction::Proceed,
        Some(Decision::Full) => FaultAction::SpuriousFull,
        Some(Decision::Truncate(n)) => FaultAction::TruncateWrite(n),
        Some(Decision::Delay(d)) => {
            std::thread::sleep(d);
            FaultAction::Proceed
        }
        Some(Decision::Panic) => {
            panic!("failpoint '{site}' injected panic (chaos schedule)");
        }
    }
}

enum Decision {
    Panic,
    Truncate(usize),
    Full,
    Delay(Duration),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global: serialize tests that arm it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        match GUARD.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disarmed_is_proceed() {
        let _g = lock();
        disarm();
        assert_eq!(eval(sites::QUEUE_PUSH), FaultAction::Proceed);
        assert!(!is_armed());
    }

    #[test]
    fn deterministic_panic_every() {
        let _g = lock();
        arm(FaultPlan::new(1).site(
            sites::SHARD_APPLY,
            SiteSpec {
                panic_every: 3,
                ..SiteSpec::default()
            },
        ));
        let mut panics = 0;
        for _ in 0..9 {
            if std::panic::catch_unwind(|| eval(sites::SHARD_APPLY)).is_err() {
                panics += 1;
            }
        }
        disarm();
        assert_eq!(panics, 3, "hits 3, 6, 9 panic");
        assert_eq!(hits(sites::SHARD_APPLY), 9);
        assert_eq!(fires(sites::SHARD_APPLY), 3);
    }

    #[test]
    fn max_fires_caps_injection() {
        let _g = lock();
        arm(FaultPlan::new(2).site(
            sites::QUEUE_PUSH,
            SiteSpec {
                full_ppm: 1_000_000,
                max_fires: 2,
                ..SiteSpec::default()
            },
        ));
        let fulls = (0..10)
            .filter(|_| eval(sites::QUEUE_PUSH) == FaultAction::SpuriousFull)
            .count();
        disarm();
        assert_eq!(fulls, 2);
    }

    #[test]
    fn same_seed_same_schedule() {
        let _g = lock();
        let spec = SiteSpec {
            truncate_ppm: 300_000,
            ..SiteSpec::default()
        };
        let run = |seed: u64| -> Vec<FaultAction> {
            arm(FaultPlan::new(seed).site(sites::WIRE_WRITE_FRAME, spec));
            let v = (0..64).map(|_| eval(sites::WIRE_WRITE_FRAME)).collect();
            disarm();
            v
        };
        assert_eq!(run(77), run(77), "replayable from the seed alone");
        assert_ne!(run(77), run(78), "different seeds diverge");
    }

    #[test]
    fn unplanned_sites_proceed_but_count() {
        let _g = lock();
        arm(FaultPlan::new(9));
        assert_eq!(eval(sites::SERVER_ACCEPT), FaultAction::Proceed);
        assert_eq!(hits(sites::SERVER_ACCEPT), 1);
        assert_eq!(fires(sites::SERVER_ACCEPT), 0);
        disarm();
    }
}
