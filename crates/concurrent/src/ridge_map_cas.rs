//! `InsertAndSet` / `GetValue` via `CompareAndSwap` — Algorithm 4 of the
//! paper.
//!
//! A fixed-capacity, open-addressing (linear probing) hash table mapping
//! each ridge key to the **two** facets incident on it. For every key,
//! exactly two `insert_and_set` calls ever happen, and exactly one of them
//! returns `false` (the "loser", which then owns processing the ridge —
//! Theorem A.1). `get_value(k, t)` returns the partner value `t' != t`
//! associated with `k`, and is only called by the loser, at which point the
//! winner's value is guaranteed to be present (Theorem A.2).
//!
//! Slots are claimed with a CAS on a per-slot state word; the key/value pair
//! is written before the slot is published (`Release`), so readers that
//! observe `FULL` (`Acquire`) see initialized data — the Rust-safe rendering
//! of the paper's "CAS in the pointer of the key-value pair".
//!
//! ## Growable mode
//!
//! [`RidgeMapCas::growable_with_capacity`] attaches a sharded locked map
//! ([`RidgeMapLocked`]) as an **overflow tier**: when the ring fills, both
//! inserters of a key route to the overflow consistently, so the
//! exactly-one-loser guarantee survives exhaustion instead of panicking.
//! The serving path (`OnlineHull::insert_batch_par`) depends on this — a
//! panic-on-full map inside recovery replay would crash-loop the shard
//! supervisor. Consistent routing holds because a probed slot is only
//! passed over when it was non-`EMPTY`, and slots never empty out: a full
//! ring is permanently full, so either inserter of a key finds its partner
//! in-ring (via `wait_full` + key check) or both exhaust the same ring.

use crate::ridge_map_locked::RidgeMapLocked;
use std::cell::UnsafeCell;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

const EMPTY: u8 = 0;
const BUSY: u8 = 1;
const FULL: u8 = 2;

/// Sentinel meaning "no second value recorded yet".
const NO_VALUE: u32 = u32::MAX;

struct Slot<K> {
    state: AtomicU8,
    /// Value recorded by the losing (second) inserter.
    second: AtomicU32,
    /// Key and first value; written while `state == BUSY`, read after
    /// observing `state == FULL`.
    data: UnsafeCell<MaybeUninit<(K, u32)>>,
}

pub use crate::fast_hash::FxLikeHasher;

/// The CAS-based concurrent ridge multimap (Algorithm 4).
///
/// ```
/// use chull_concurrent::RidgeMapCas;
/// let m: RidgeMapCas<u64> = RidgeMapCas::with_capacity(16);
/// assert!(m.insert_and_set(7, 100));   // first facet on ridge 7: winner
/// assert!(!m.insert_and_set(7, 200));  // second facet: unique loser
/// assert_eq!(m.get_value(7, 200), 100); // the loser finds its partner
/// ```
pub struct RidgeMapCas<K> {
    slots: Box<[Slot<K>]>,
    mask: usize,
    hasher: BuildHasherDefault<FxLikeHasher>,
    /// Overflow tier for growable mode; `None` keeps the paper's
    /// fixed-capacity behavior (panic when full).
    overflow: Option<RidgeMapLocked<K>>,
}

// SAFETY: all access to `data` is synchronized through `state`
// (write while BUSY by the unique claimant, read only after FULL).
unsafe impl<K: Send> Send for RidgeMapCas<K> {}
unsafe impl<K: Send + Sync> Sync for RidgeMapCas<K> {}

impl<K: Hash + Eq + Copy> RidgeMapCas<K> {
    /// Create a map able to hold at least `capacity` distinct keys.
    ///
    /// The table is sized to the next power of two at least `2 * capacity`
    /// so that linear-probe chains stay short.
    pub fn with_capacity(capacity: usize) -> RidgeMapCas<K> {
        Self::build(capacity, false)
    }

    /// Like [`with_capacity`](RidgeMapCas::with_capacity), but ring
    /// exhaustion routes to a locked overflow tier instead of panicking.
    /// `capacity` is the fast-path size hint; correctness no longer depends
    /// on it. This is the shared-growth API the batch-insert serving path
    /// requires (a sizing misestimate must degrade to slower inserts, never
    /// to a panic inside the shard supervisor's replay).
    pub fn growable_with_capacity(capacity: usize) -> RidgeMapCas<K> {
        Self::build(capacity, true)
    }

    fn build(capacity: usize, growable: bool) -> RidgeMapCas<K> {
        let size = (capacity.max(4) * 2).next_power_of_two();
        let slots: Vec<Slot<K>> = (0..size)
            .map(|_| Slot {
                state: AtomicU8::new(EMPTY),
                second: AtomicU32::new(NO_VALUE),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RidgeMapCas {
            slots: slots.into_boxed_slice(),
            mask: size - 1,
            hasher: BuildHasherDefault::default(),
            overflow: if growable {
                Some(RidgeMapLocked::with_capacity(64))
            } else {
                None
            },
        }
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn start_index(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) & self.mask
    }

    /// Spin until the slot's state is `FULL`, then return.
    #[inline]
    fn wait_full(&self, i: usize) {
        let mut spins = 0u32;
        while self.slots[i].state.load(Ordering::Acquire) != FULL {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Single-core friendliness: let the writer run.
                std::thread::yield_now();
            }
        }
    }

    /// `InsertAndSet(r, t)` (Algorithm 4): if `key` has not been inserted,
    /// associate it with `value` and return `true`. If it has, record
    /// `value` as the second value and return `false`.
    ///
    /// Panics if the table is full (the caller sized it too small).
    pub fn insert_and_set(&self, key: K, value: u32) -> bool {
        debug_assert_ne!(value, NO_VALUE, "u32::MAX is reserved");
        let mut i = self.start_index(&key);
        for _probe in 0..=self.mask {
            let slot = &self.slots[i];
            match slot
                .state
                .compare_exchange(EMPTY, BUSY, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => {
                    // We own the slot: write the pair, then publish.
                    unsafe { (*slot.data.get()).write((key, value)) };
                    slot.state.store(FULL, Ordering::Release);
                    return true;
                }
                Err(_) => {
                    // Occupied (or mid-write). Wait for the data, then check
                    // whether this is our key (duplicate) or a collision.
                    self.wait_full(i);
                    let (k, _) = unsafe { (*slot.data.get()).assume_init_ref() };
                    if *k == key {
                        let prev = slot.second.swap(value, Ordering::AcqRel);
                        debug_assert_eq!(prev, NO_VALUE, "third insert_and_set for the same key");
                        return false;
                    }
                    i = (i + 1) & self.mask;
                }
            }
        }
        // Ring exhausted: every slot was non-EMPTY when probed and none held
        // our key. Slots never empty out, so the partner insert either also
        // exhausts (and meets us in the overflow) or already found / will
        // find our overflow-routed entry absent from the ring and exhaust
        // too — routing is consistent per key.
        match &self.overflow {
            Some(of) => of.insert_and_set(key, value),
            None => panic!("RidgeMapCas is full; size it with the expected ridge count"),
        }
    }

    /// `GetValue(r, t)` (Algorithm 4): the value associated with `key` that
    /// is not `not`. Must only be called after some `insert_and_set(key, _)`
    /// returned `false`; the partner value is then guaranteed visible.
    pub fn get_value(&self, key: K, not: u32) -> u32 {
        // Bounded ring walk: both inserts for `key` happened-before this
        // call, and a key slot's probe prefix is non-EMPTY forever after
        // its insert — so hitting EMPTY (or exhausting the ring) proves the
        // key lives in the overflow tier, if anywhere.
        let mut i = self.start_index(&key);
        for _probe in 0..=self.mask {
            let slot = &self.slots[i];
            if slot.state.load(Ordering::Acquire) == EMPTY {
                break;
            }
            self.wait_full(i);
            let (k, first) = unsafe { *(*slot.data.get()).assume_init_ref() };
            if k == key {
                if first != not {
                    return first;
                }
                let second = slot.second.load(Ordering::Acquire);
                assert_ne!(second, NO_VALUE, "partner value missing");
                return second;
            }
            i = (i + 1) & self.mask;
        }
        match &self.overflow {
            Some(of) => of.get_value(key, not),
            None => panic!("get_value on a key that was never inserted"),
        }
    }

    /// Look up the first value stored for `key`, if any (test helper; not
    /// part of the paper's interface).
    pub fn first_value(&self, key: K) -> Option<u32> {
        let mut i = self.start_index(&key);
        for _probe in 0..=self.mask {
            let slot = &self.slots[i];
            match slot.state.load(Ordering::Acquire) {
                EMPTY => break,
                _ => {
                    self.wait_full(i);
                    let (k, v) = unsafe { *(*slot.data.get()).assume_init_ref() };
                    if k == key {
                        return Some(v);
                    }
                    i = (i + 1) & self.mask;
                }
            }
        }
        self.overflow.as_ref().and_then(|of| of.first_value(&key))
    }
}

impl<K> Drop for RidgeMapCas<K> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<K>() {
            for slot in self.slots.iter_mut() {
                if *slot.state.get_mut() == FULL {
                    unsafe { (*slot.data.get()).assume_init_drop() };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_winner_loser() {
        let m: RidgeMapCas<u64> = RidgeMapCas::with_capacity(16);
        assert!(m.insert_and_set(7, 100));
        assert!(!m.insert_and_set(7, 200));
        assert_eq!(m.get_value(7, 200), 100);
        assert_eq!(m.get_value(7, 100), 200);
        assert_eq!(m.first_value(7), Some(100));
        assert_eq!(m.first_value(8), None);
    }

    #[test]
    fn collisions_probe_linearly() {
        // Fill a tiny table with many keys to force probe chains.
        let m: RidgeMapCas<u64> = RidgeMapCas::with_capacity(32);
        for k in 0..32u64 {
            assert!(m.insert_and_set(k, k as u32 + 1));
        }
        for k in 0..32u64 {
            assert!(!m.insert_and_set(k, 1000 + k as u32));
            assert_eq!(m.get_value(k, 1000 + k as u32), k as u32 + 1);
        }
    }

    #[test]
    fn array_keys() {
        let m: RidgeMapCas<[u32; 4]> = RidgeMapCas::with_capacity(8);
        let k1 = [1, 2, 3, u32::MAX];
        let k2 = [1, 2, 4, u32::MAX];
        assert!(m.insert_and_set(k1, 10));
        assert!(m.insert_and_set(k2, 20));
        assert!(!m.insert_and_set(k1, 11));
        assert_eq!(m.get_value(k1, 11), 10);
        assert_eq!(m.first_value(k2), Some(20));
    }

    #[test]
    fn concurrent_exactly_one_loser_per_key() {
        // Theorem A.1: for each key inserted twice concurrently, exactly one
        // insert_and_set returns false, and get_value finds the partner.
        let keys: usize = 1 << 12;
        let m: Arc<RidgeMapCas<u64>> = Arc::new(RidgeMapCas::with_capacity(keys));
        let threads = 8;
        let losses: Vec<std::thread::JoinHandle<Vec<(u64, u32, u32)>>> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut lost = Vec::new();
                    // Each key k is inserted by threads (k % threads) and
                    // ((k + threads/2) % threads) with distinct values.
                    for k in 0..keys as u64 {
                        let first_owner = (k as usize) % threads;
                        let second_owner = (first_owner + threads / 2) % threads;
                        let my_value = if t == first_owner {
                            Some((t as u32 + 1) * 1_000_000 + k as u32)
                        } else if t == second_owner {
                            Some((t as u32 + 1) * 1_000_000 + 500_000 + k as u32)
                        } else {
                            None
                        };
                        if let Some(v) = my_value {
                            if !m.insert_and_set(k, v) {
                                let partner = m.get_value(k, v);
                                lost.push((k, v, partner));
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let mut losses_per_key = vec![0usize; keys];
        for h in losses {
            for (k, mine, partner) in h.join().unwrap() {
                losses_per_key[k as usize] += 1;
                assert_ne!(mine, partner, "get_value returned the caller's own value");
            }
        }
        for (k, &c) in losses_per_key.iter().enumerate() {
            assert_eq!(c, 1, "key {k} had {c} losers; expected exactly 1");
        }
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overflow_panics() {
        let m: RidgeMapCas<u64> = RidgeMapCas::with_capacity(4);
        for k in 0..m.capacity() as u64 + 1 {
            m.insert_and_set(k, 1);
        }
    }

    #[test]
    fn growable_absorbs_ring_exhaustion() {
        let m: RidgeMapCas<u64> = RidgeMapCas::growable_with_capacity(4);
        let keys = m.capacity() as u64 * 8;
        for k in 0..keys {
            assert!(m.insert_and_set(k, k as u32 + 1));
        }
        for k in 0..keys {
            assert!(!m.insert_and_set(k, 100_000 + k as u32));
            assert_eq!(m.get_value(k, 100_000 + k as u32), k as u32 + 1);
            assert_eq!(m.get_value(k, k as u32 + 1), 100_000 + k as u32);
            assert_eq!(m.first_value(k), Some(k as u32 + 1));
        }
        assert_eq!(m.first_value(keys + 7), None);
    }

    #[test]
    fn growable_concurrent_one_loser_under_pressure() {
        // Tiny base ring so most keys land in the overflow tier; the
        // exactly-one-loser invariant must survive the mixed placement.
        let keys: usize = 1 << 10;
        let m: Arc<RidgeMapCas<u64>> = Arc::new(RidgeMapCas::growable_with_capacity(8));
        let threads = 8;
        let handles: Vec<std::thread::JoinHandle<Vec<(u64, u32, u32)>>> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut lost = Vec::new();
                    for k in 0..keys as u64 {
                        let first_owner = (k as usize) % threads;
                        let second_owner = (first_owner + threads / 2) % threads;
                        let my_value = if t == first_owner {
                            Some((t as u32 + 1) * 1_000_000 + k as u32)
                        } else if t == second_owner {
                            Some((t as u32 + 1) * 1_000_000 + 500_000 + k as u32)
                        } else {
                            None
                        };
                        if let Some(v) = my_value {
                            if !m.insert_and_set(k, v) {
                                let partner = m.get_value(k, v);
                                lost.push((k, v, partner));
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let mut losses_per_key = vec![0usize; keys];
        for h in handles {
            for (k, mine, partner) in h.join().unwrap() {
                losses_per_key[k as usize] += 1;
                assert_ne!(mine, partner);
            }
        }
        for (k, &c) in losses_per_key.iter().enumerate() {
            assert_eq!(c, 1, "key {k} had {c} losers; expected exactly 1");
        }
    }
}
