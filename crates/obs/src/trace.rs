//! A bounded ring-buffer event tracer with seeded sampling.
//!
//! Traces answer "what happened around the anomaly" where metrics only
//! say "how often". Sites call [`trace`] with a static site name and a
//! value (a latency, a depth, a batch size); while disarmed that is
//! one relaxed load. When armed via [`trace_arm`], each event passes a
//! sampling draw from a ChaCha8 stream seeded by a single `u64` — the
//! same seed over the same event sequence keeps the same subsequence,
//! so a trace from a failed run is replayable, exactly like
//! `concurrent::failpoint` schedules. Kept events land in a bounded
//! ring (oldest evicted first).

use chull_geometry::rng::ChaCha8Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// One sampled event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the tracer's first arm.
    pub at_us: u64,
    /// Static site name (e.g. `"shard.drain.batch"`).
    pub site: &'static str,
    /// Site-defined payload (latency, size, depth, …).
    pub value: u64,
}

struct Inner {
    ring: VecDeque<TraceEvent>,
    rng: ChaCha8Rng,
    capacity: usize,
    sample_ppm: u32,
    recorded: u64,
    sampled_out: u64,
    evicted: u64,
}

static TRACE_ARMED: AtomicBool = AtomicBool::new(false);
static INNER: Mutex<Option<Inner>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<Inner>> {
    match INNER.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(Instant::now)
}

/// Arm the tracer: keep each event with probability
/// `sample_ppm / 1_000_000` (decided by a ChaCha8 stream from `seed`),
/// in a ring of at most `capacity` events. Re-arming resets the ring
/// and the stream.
pub fn trace_arm(seed: u64, capacity: usize, sample_ppm: u32) {
    let _ = epoch();
    *lock() = Some(Inner {
        ring: VecDeque::with_capacity(capacity.clamp(1, 1 << 20)),
        rng: ChaCha8Rng::seed_from_u64(seed),
        capacity: capacity.clamp(1, 1 << 20),
        sample_ppm: sample_ppm.min(1_000_000),
        recorded: 0,
        sampled_out: 0,
        evicted: 0,
    });
    TRACE_ARMED.store(true, Ordering::SeqCst);
}

/// Stop recording; the ring is kept for [`trace_events`] draining.
pub fn trace_disarm() {
    TRACE_ARMED.store(false, Ordering::SeqCst);
}

/// Record one event. One relaxed load while disarmed.
#[inline]
pub fn trace(site: &'static str, value: u64) {
    if cfg!(feature = "noop") || !TRACE_ARMED.load(Ordering::Relaxed) {
        return;
    }
    trace_slow(site, value);
}

#[cold]
fn trace_slow(site: &'static str, value: u64) {
    let mut guard = lock();
    let Some(inner) = guard.as_mut() else { return };
    // One draw per offered event: keep/drop is a pure function of the
    // seed and the event's ordinal, independent of capacity.
    let keep = inner.rng.gen_range(0u32..1_000_000) < inner.sample_ppm;
    if !keep {
        inner.sampled_out += 1;
        return;
    }
    inner.recorded += 1;
    if inner.ring.len() == inner.capacity {
        inner.ring.pop_front();
        inner.evicted += 1;
    }
    inner.ring.push_back(TraceEvent {
        at_us: epoch().elapsed().as_micros() as u64,
        site,
        value,
    });
}

/// The ring's current contents, oldest first.
pub fn trace_events() -> Vec<TraceEvent> {
    lock()
        .as_ref()
        .map(|i| i.ring.iter().cloned().collect())
        .unwrap_or_default()
}

/// `(recorded, sampled_out, evicted)` totals since the last arm.
pub fn trace_stats() -> (u64, u64, u64) {
    lock()
        .as_ref()
        .map(|i| (i.recorded, i.sampled_out, i.evicted))
        .unwrap_or((0, 0, 0))
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    // One test function: the tracer is process-global and the harness
    // runs tests concurrently.
    #[test]
    fn seeded_sampling_is_replayable_and_ring_is_bounded() {
        // Same seed + same event sequence → identical kept subsequence.
        let run = |seed: u64, ppm: u32| {
            trace_arm(seed, 1024, ppm);
            for i in 0..500u64 {
                trace("test.site", i);
            }
            trace_disarm();
            trace_events()
                .into_iter()
                .map(|e| e.value)
                .collect::<Vec<_>>()
        };
        let a = run(42, 250_000);
        let b = run(42, 250_000);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 500, "sampled {} of 500", a.len());
        let c = run(43, 250_000);
        assert_ne!(a, c, "different seed should sample differently");

        // ppm = 1_000_000 keeps everything; capacity bounds the ring.
        trace_arm(7, 16, 1_000_000);
        for i in 0..100u64 {
            trace("test.site", i);
        }
        trace_disarm();
        let events = trace_events();
        assert_eq!(events.len(), 16);
        assert_eq!(events[0].value, 84, "oldest evicted first");
        assert_eq!(events[15].value, 99);
        let (recorded, sampled_out, evicted) = trace_stats();
        assert_eq!((recorded, sampled_out, evicted), (100, 0, 84));

        // ppm = 0 keeps nothing.
        trace_arm(7, 16, 0);
        trace("test.site", 1);
        trace_disarm();
        assert!(trace_events().is_empty());
    }
}
