//! `InsertAndSet` / `GetValue` using only `TestAndSet` — Algorithm 5
//! (Appendix A) of the paper.
//!
//! The binary-forking model assumes only a `TestAndSet` consensus primitive;
//! this table follows the paper's two-pass protocol faithfully:
//!
//! 1. **First pass**: claim a slot by `TestAndSet(R[i].taken)` with linear
//!    probing, then write the key/value pair into the claimed slot. Every
//!    insertion succeeds (duplicates occupy distinct slots).
//! 2. **Second pass**: rescan from the key's hash index; at every slot
//!    holding our key, `TestAndSet(R[i].check)`. If the TAS fails (the other
//!    facet of the ridge already set `check`), return `false` — this caller
//!    is the unique loser for the key (Theorem A.1).
//!
//! The paper notes a reader may encounter a slot that is `taken` but whose
//! data is not yet written; it resolves this by having both parties continue
//! to a later slot. To express that in safe-Rust terms each slot carries a
//! `written` flag published with `Release` after the data write: a reader
//! finding `taken && !written` treats the slot exactly as the paper's
//! "key not yet visible" case and keeps probing.
//!
//! ## Growable mode
//!
//! [`RidgeMapTas::growable_with_capacity`] attaches a locked overflow tier
//! so ring exhaustion degrades to slower inserts instead of a panic (the
//! serving path's requirement; see `ridge_map_cas` module docs). The
//! tie-break when one inserter claims a base slot and its partner exhausts
//! the ring: the **exhausted (overflow-routed) inserter is the loser**. An
//! exhausted inserter first records its value in the overflow (losing there
//! if its partner already did), then scans the — permanently — full ring
//! waiting out unwritten slots; finding its key means the partner holds a
//! base slot and wins. A base claimant whose bounded second pass ends with
//! no failed `check`-TAS is the winner: any exhausted partner self-declares
//! loser without touching `check`, and its value is reachable through the
//! overflow by `get_value`'s bounded-scan-then-overflow fallthrough.

use std::cell::UnsafeCell;
use std::hash::{BuildHasher, BuildHasherDefault, Hash};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::ridge_map_cas::FxLikeHasher;
use crate::ridge_map_locked::RidgeMapLocked;

struct TasSlot<K> {
    taken: AtomicBool,
    written: AtomicBool,
    check: AtomicBool,
    data: UnsafeCell<MaybeUninit<(K, u32)>>,
}

/// The TestAndSet-only concurrent ridge multimap (Algorithm 5).
pub struct RidgeMapTas<K> {
    slots: Box<[TasSlot<K>]>,
    mask: usize,
    hasher: BuildHasherDefault<FxLikeHasher>,
    /// Overflow tier for growable mode; `None` keeps the paper's
    /// fixed-capacity behavior (panic when full).
    overflow: Option<RidgeMapLocked<K>>,
}

// SAFETY: `data` is written only by the unique claimant of `taken`, before
// `written` is released; it is read only after observing `written` (Acquire).
unsafe impl<K: Send> Send for RidgeMapTas<K> {}
unsafe impl<K: Send + Sync> Sync for RidgeMapTas<K> {}

impl<K: Hash + Eq + Copy> RidgeMapTas<K> {
    /// Create a map able to hold at least `capacity` distinct keys
    /// (each key occupies **two** slots, one per incident facet).
    pub fn with_capacity(capacity: usize) -> RidgeMapTas<K> {
        Self::build(capacity, false)
    }

    /// Like [`with_capacity`](RidgeMapTas::with_capacity), but ring
    /// exhaustion routes to a locked overflow tier instead of panicking
    /// (see module docs for the loser tie-break protocol).
    pub fn growable_with_capacity(capacity: usize) -> RidgeMapTas<K> {
        Self::build(capacity, true)
    }

    fn build(capacity: usize, growable: bool) -> RidgeMapTas<K> {
        // Two slots per key plus headroom for probe chains.
        let size = (capacity.max(4) * 4).next_power_of_two();
        let slots: Vec<TasSlot<K>> = (0..size)
            .map(|_| TasSlot {
                taken: AtomicBool::new(false),
                written: AtomicBool::new(false),
                check: AtomicBool::new(false),
                data: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RidgeMapTas {
            slots: slots.into_boxed_slice(),
            mask: size - 1,
            hasher: BuildHasherDefault::default(),
            overflow: if growable {
                Some(RidgeMapLocked::with_capacity(64))
            } else {
                None
            },
        }
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn start_index(&self, key: &K) -> usize {
        (self.hasher.hash_one(key) as usize) & self.mask
    }

    /// `TestAndSet`: returns `true` if this call flipped the flag from
    /// `false` to `true` (i.e. the TAS "succeeded" in the paper's sense).
    #[inline]
    fn test_and_set(flag: &AtomicBool) -> bool {
        !flag.swap(true, Ordering::AcqRel)
    }

    /// Spin until the claimed slot's data is published (claimants write
    /// promptly after winning `taken`, so this is short).
    #[inline]
    fn wait_written(&self, i: usize) {
        let mut spins = 0u32;
        while !self.slots[i].written.load(Ordering::Acquire) {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// `InsertAndSet(r, t)` (Algorithm 5). Returns `true` if this call was
    /// the first for `key`, `false` if it was the second (the loser).
    pub fn insert_and_set(&self, key: K, value: u32) -> bool {
        // First pass: claim a slot and write the entry.
        let mut i = self.start_index(&key);
        let mut probes = 0usize;
        while !Self::test_and_set(&self.slots[i].taken) {
            i = (i + 1) & self.mask;
            probes += 1;
            if probes > self.mask {
                return match &self.overflow {
                    Some(_) => self.insert_overflow(key, value),
                    None => panic!("RidgeMapTas is full"),
                };
            }
        }
        let slot = &self.slots[i];
        unsafe { (*slot.data.get()).write((key, value)) };
        slot.written.store(true, Ordering::Release);

        // Second pass: scan from the hash index; TAS `check` at every slot
        // holding our key. Failing the TAS means the partner got there
        // first: we are the unique loser.
        let mut i = self.start_index(&key);
        let mut probes = 0usize;
        loop {
            let slot = &self.slots[i];
            if !slot.taken.load(Ordering::Acquire) {
                // Reached an empty slot: we saw no checked duplicate.
                return true;
            }
            if slot.written.load(Ordering::Acquire) {
                let (k, _) = unsafe { (*slot.data.get()).assume_init_ref() };
                if *k == key && !Self::test_and_set(&slot.check) {
                    return false;
                }
            }
            // `taken && !written`: the paper's "data not yet visible" case —
            // skip; both parties will meet at a later slot of this key.
            i = (i + 1) & self.mask;
            probes += 1;
            if probes > self.mask && self.overflow.is_some() {
                // Full ring scanned without losing a check-TAS: winner. An
                // exhausted partner self-declares loser via the overflow
                // path and never touches `check`, so finishing the scan
                // unbeaten is decisive. (The fixed-capacity map keeps the
                // paper's unbounded scan; it panics on first-pass overflow
                // long before a full ring is reachable here.)
                return true;
            }
        }
    }

    /// Slow path for an inserter that found the ring permanently full: the
    /// overflow tier decides between two exhausted inserters, and an
    /// exhausted inserter always loses to a base-slot partner.
    fn insert_overflow(&self, key: K, value: u32) -> bool {
        let of = self
            .overflow
            .as_ref()
            .expect("insert_overflow in fixed mode");
        // Record our value first so that, if we end up the winner, the
        // loser's get_value fallthrough can find it in the overflow.
        if !of.insert_and_set(key, value) {
            // Partner exhausted too and beat us there: unique loser.
            return false;
        }
        // The ring is full and stays full; wait out any in-flight writes and
        // look for a base-slot partner, who wins by tie-break.
        let mut i = self.start_index(&key);
        for _probe in 0..=self.mask {
            self.wait_written(i);
            let (k, _) = unsafe { (*self.slots[i].data.get()).assume_init_ref() };
            if *k == key {
                return false;
            }
            i = (i + 1) & self.mask;
        }
        // No base partner: either none arrives, or it will also exhaust and
        // lose in the overflow. We are the winner.
        true
    }

    /// `GetValue(r, t)` (Algorithm 5): scan for a value associated with
    /// `key` that differs from `not`. Must only be called by the loser of
    /// `insert_and_set(key, ..)`; both entries are then written
    /// (Theorem A.2).
    pub fn get_value(&self, key: K, not: u32) -> u32 {
        let mut i = self.start_index(&key);
        let mut probes = 0usize;
        loop {
            let slot = &self.slots[i];
            if !slot.taken.load(Ordering::Acquire) {
                // Untaken terminator: the partner's entry, if it exists in
                // the ring, would sit on an unbroken taken chain from the
                // start index — so it can only be in the overflow.
                match &self.overflow {
                    Some(of) => return of.get_value(key, not),
                    None => panic!("get_value: key absent from RidgeMapTas"),
                }
            }
            if self.overflow.is_some() {
                // Growable mode can afford to wait the write out; a skipped
                // in-flight slot would otherwise force a ring restart.
                self.wait_written(i);
            }
            if slot.written.load(Ordering::Acquire) {
                let (k, v) = unsafe { *(*slot.data.get()).assume_init_ref() };
                if k == key && v != not {
                    return v;
                }
            }
            i = (i + 1) & self.mask;
            probes += 1;
            if probes > self.mask {
                if let Some(of) = &self.overflow {
                    return of.get_value(key, not);
                }
            }
        }
    }
}

impl<K> Drop for RidgeMapTas<K> {
    fn drop(&mut self) {
        if std::mem::needs_drop::<K>() {
            for slot in self.slots.iter_mut() {
                if *slot.written.get_mut() {
                    unsafe { (*slot.data.get()).assume_init_drop() };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_winner_loser() {
        let m: RidgeMapTas<u64> = RidgeMapTas::with_capacity(16);
        assert!(m.insert_and_set(7, 100));
        assert!(!m.insert_and_set(7, 200));
        assert_eq!(m.get_value(7, 200), 100);
        assert_eq!(m.get_value(7, 100), 200);
    }

    #[test]
    fn duplicates_occupy_two_slots() {
        let m: RidgeMapTas<u64> = RidgeMapTas::with_capacity(8);
        assert!(m.insert_and_set(1, 10));
        assert!(!m.insert_and_set(1, 20));
        assert!(m.insert_and_set(2, 30));
        assert!(!m.insert_and_set(2, 40));
        assert_eq!(m.get_value(1, 10), 20);
        assert_eq!(m.get_value(2, 40), 30);
    }

    #[test]
    fn heavy_collisions() {
        let m: RidgeMapTas<u64> = RidgeMapTas::with_capacity(64);
        for k in 0..64u64 {
            assert!(m.insert_and_set(k, k as u32 * 2));
        }
        for k in 0..64u64 {
            assert!(!m.insert_and_set(k, k as u32 * 2 + 1));
        }
        for k in 0..64u64 {
            assert_eq!(m.get_value(k, k as u32 * 2 + 1), k as u32 * 2);
        }
    }

    #[test]
    fn growable_absorbs_ring_exhaustion() {
        let m: RidgeMapTas<u64> = RidgeMapTas::growable_with_capacity(4);
        // Each key takes two slots; overfill well past the ring.
        let keys = m.capacity() as u64 * 4;
        for k in 0..keys {
            assert!(m.insert_and_set(k, k as u32 + 1));
        }
        for k in 0..keys {
            assert!(!m.insert_and_set(k, 100_000 + k as u32));
            assert_eq!(m.get_value(k, 100_000 + k as u32), k as u32 + 1);
            assert_eq!(m.get_value(k, k as u32 + 1), 100_000 + k as u32);
        }
    }

    #[test]
    fn growable_concurrent_one_loser_under_pressure() {
        let keys: usize = 1 << 10;
        let m: Arc<RidgeMapTas<u64>> = Arc::new(RidgeMapTas::growable_with_capacity(8));
        let threads = 8;
        let handles: Vec<std::thread::JoinHandle<Vec<(u64, u32, u32)>>> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut lost = Vec::new();
                    for k in 0..keys as u64 {
                        let first_owner = (k as usize) % threads;
                        let second_owner = (first_owner + threads / 2) % threads;
                        let my_value = if t == first_owner {
                            Some((t as u32 + 1) * 1_000_000 + k as u32)
                        } else if t == second_owner {
                            Some((t as u32 + 1) * 1_000_000 + 500_000 + k as u32)
                        } else {
                            None
                        };
                        if let Some(v) = my_value {
                            if !m.insert_and_set(k, v) {
                                let partner = m.get_value(k, v);
                                lost.push((k, v, partner));
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let mut losses_per_key = vec![0usize; keys];
        for h in handles {
            for (k, mine, partner) in h.join().unwrap() {
                losses_per_key[k as usize] += 1;
                assert_ne!(mine, partner);
            }
        }
        for (k, &c) in losses_per_key.iter().enumerate() {
            assert_eq!(c, 1, "key {k} had {c} losers; expected exactly 1");
        }
    }

    #[test]
    fn concurrent_exactly_one_loser_per_key() {
        let keys: usize = 1 << 12;
        let m: Arc<RidgeMapTas<u64>> = Arc::new(RidgeMapTas::with_capacity(keys));
        let threads = 8;
        let handles: Vec<std::thread::JoinHandle<Vec<(u64, u32, u32)>>> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut lost = Vec::new();
                    for k in 0..keys as u64 {
                        let first_owner = (k as usize) % threads;
                        let second_owner = (first_owner + threads / 2) % threads;
                        let my_value = if t == first_owner {
                            Some((t as u32 + 1) * 1_000_000 + k as u32)
                        } else if t == second_owner {
                            Some((t as u32 + 1) * 1_000_000 + 500_000 + k as u32)
                        } else {
                            None
                        };
                        if let Some(v) = my_value {
                            if !m.insert_and_set(k, v) {
                                let partner = m.get_value(k, v);
                                lost.push((k, v, partner));
                            }
                        }
                    }
                    lost
                })
            })
            .collect();
        let mut losses_per_key = vec![0usize; keys];
        for h in handles {
            for (k, mine, partner) in h.join().unwrap() {
                losses_per_key[k as usize] += 1;
                assert_ne!(mine, partner);
            }
        }
        for (k, &c) in losses_per_key.iter().enumerate() {
            assert_eq!(c, 1, "key {k} had {c} losers; expected exactly 1");
        }
    }
}
