//! Deterministic, dependency-free random number generation.
//!
//! The crate used to pull in `rand`/`rand_chacha` for its point
//! generators; this module replaces both with a small, fully in-repo
//! ChaCha8 stream generator plus the handful of sampling helpers the
//! workspace actually uses (`gen_range` over integer/float ranges and
//! Fisher–Yates shuffling). Everything is seedable and deterministic so
//! tests and experiments stay reproducible across machines.

use std::ops::{Range, RangeInclusive};

const CHACHA_ROUNDS: usize = 8;

/// A seedable ChaCha8 pseudo-random generator.
///
/// Not cryptographically vetted in this form — it is used purely as a
/// fast, high-quality deterministic stream for test data and workload
/// generation.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, nonce).
    state: [u32; 16],
    /// Current output block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used only to expand a 64-bit seed into key material.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Build a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // words 12..13: block counter, 14..15: nonce (zero).
        ChaCha8Rng {
            state,
            buf: [0u32; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, (&a, &b)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *o = a.wrapping_add(b);
        }
        let (ctr, carry) = self.state[12].overflowing_add(1);
        self.state[12] = ctr;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    /// Next 32 uniform random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Unbiased uniform integer in `0..n` (Lemire's rejection method).
    #[inline]
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from an integer or float range, e.g.
    /// `rng.gen_range(-100..100)` or `rng.gen_range(0.0..1.0)`.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Element types [`ChaCha8Rng::gen_range`] can sample uniformly.
///
/// Mirrors `rand`'s `SampleUniform` split so that integer-literal type
/// inference works through `gen_range(0..6)` and friends: there is a
/// single `UniformRange` impl per range shape, generic over the element.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the half-open range `[start, end)`.
    fn sample_half_open(rng: &mut ChaCha8Rng, start: Self, end: Self) -> Self;
    /// Uniform sample from the closed range `[start, end]`.
    fn sample_inclusive(rng: &mut ChaCha8Rng, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut ChaCha8Rng, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut ChaCha8Rng, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i32, i64, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut ChaCha8Rng, start: f64, end: f64) -> f64 {
        assert!(start < end, "gen_range: empty range");
        let v = start + (end - start) * rng.unit_f64();
        if v < end {
            v
        } else {
            start
        }
    }
    #[inline]
    fn sample_inclusive(rng: &mut ChaCha8Rng, start: f64, end: f64) -> f64 {
        assert!(start <= end, "gen_range: empty range");
        start + (end - start) * rng.unit_f64()
    }
}

/// Ranges that [`ChaCha8Rng::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut ChaCha8Rng) -> Self::Output;
}

impl<T: SampleUniform> UniformRange for Range<T> {
    type Output = T;
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> UniformRange for RangeInclusive<T> {
    type Output = T;
    #[inline]
    fn sample(self, rng: &mut ChaCha8Rng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// In-place Fisher–Yates shuffling, mirroring the subset of
/// `rand::seq::SliceRandom` the workspace uses.
pub trait SliceRandom {
    /// Shuffle the slice uniformly in place.
    fn shuffle(&mut self, rng: &mut ChaCha8Rng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut ChaCha8Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0, "different seeds should diverge immediately");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let v = r.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&v));
            let v = r.gen_range(0u64..3);
            assert!(v < 3);
            let v = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let v = r.gen_range(0usize..10);
            assert!(v < 10);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 6 values should appear: {seen:?}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn unit_f64_mean_is_reasonable() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.unit_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }
}
